"""Unit and property tests for the functional interpreter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import IRBuilder
from repro.ir.instructions import Opcode
from repro.ir.interp import (
    ExecutionLimitExceeded,
    Interpreter,
    run_program,
    _int_div,
    _int_rem,
)


def run_snippet(emit, max_instructions=10_000):
    """Build main = emit(); HALT and return the finished interpreter."""
    b = IRBuilder()
    with b.function("main"):
        emit(b)
        b.halt()
    interp = Interpreter(b.build(), max_instructions=max_instructions)
    trace = interp.run()
    return interp, trace


class TestAluSemantics:
    @pytest.mark.parametrize(
        "op,a,c,expected",
        [
            ("add", 7, 5, 12),
            ("sub", 7, 5, 2),
            ("mul", 7, 5, 35),
            ("and_", 12, 10, 8),
            ("or_", 12, 10, 14),
            ("xor", 12, 10, 6),
        ],
    )
    def test_binary_ops(self, op, a, c, expected):
        def emit(b):
            b.li("r1", a)
            b.li("r2", c)
            getattr(b, op)("r3", "r1", "r2")
            b.store("r3", "r0", 50)

        interp, _ = run_snippet(emit)
        assert interp.memory[50] == expected

    @pytest.mark.parametrize(
        "a,c,q,r",
        [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (0, 5, 0, 0)],
    )
    def test_div_rem_truncate_toward_zero(self, a, c, q, r):
        def emit(b):
            b.li("r1", a)
            b.li("r2", c)
            b.div("r3", "r1", "r2")
            b.rem("r4", "r1", "r2")
            b.store("r3", "r0", 50)
            b.store("r4", "r0", 51)

        interp, _ = run_snippet(emit)
        assert interp.memory[50] == q
        assert interp.memory[51] == r

    def test_division_by_zero_yields_zero(self):
        def emit(b):
            b.li("r1", 9)
            b.div("r3", "r1", "r0")
            b.rem("r4", "r1", "r0")
            b.store("r3", "r0", 50)
            b.store("r4", "r0", 51)

        interp, _ = run_snippet(emit)
        assert interp.memory[50] == 0
        assert interp.memory[51] == 0

    @given(st.integers(-10**6, 10**6), st.integers(-10**3, 10**3))
    def test_div_rem_identity(self, a, b):
        if b != 0:
            assert _int_div(a, b) * b + _int_rem(a, b) == a

    def test_compare_ops(self):
        def emit(b):
            b.li("r1", 3)
            b.li("r2", 5)
            b.slt("r3", "r1", "r2")
            b.sle("r4", "r2", "r2")
            b.seq("r5", "r1", "r2")
            b.sne("r6", "r1", "r2")
            for i, reg in enumerate(("r3", "r4", "r5", "r6")):
                b.store(reg, "r0", 50 + i)

        interp, _ = run_snippet(emit)
        assert [interp.memory[50 + i] for i in range(4)] == [1, 1, 0, 1]

    def test_shifts(self):
        def emit(b):
            b.li("r1", 5)
            b.shl("r2", "r1", 3)
            b.shr("r3", "r2", 2)
            b.store("r2", "r0", 50)
            b.store("r3", "r0", 51)

        interp, _ = run_snippet(emit)
        assert interp.memory[50] == 40
        assert interp.memory[51] == 10

    def test_fp_ops_and_conversions(self):
        def emit(b):
            b.fli("f1", 1.5)
            b.fli("f2", 2.0)
            b.fmul("f3", "f1", "f2")
            b.fdiv("f4", "f3", "f2")
            b.cvtfi("r1", "f3")
            b.cvtif("f5", "r1")
            b.store("f3", "r0", 50)
            b.store("r1", "r0", 51)
            b.store("f5", "r0", 52)

        interp, _ = run_snippet(emit)
        assert interp.memory[50] == 3.0
        assert interp.memory[51] == 3
        assert interp.memory[52] == 3.0

    def test_zero_register_is_immutable(self):
        def emit(b):
            b.li("r0", 42)
            b.store("r0", "r0", 50)

        interp, _ = run_snippet(emit)
        assert interp.memory[50] == 0


class TestMemoryAndControl:
    def test_uninitialised_memory_reads_zero(self):
        def emit(b):
            b.load("r1", "r0", 777)
            b.store("r1", "r0", 50)

        interp, _ = run_snippet(emit)
        assert interp.memory[50] == 0

    def test_memory_image_is_copied_not_shared(self, diamond_loop):
        interp = Interpreter(diamond_loop)
        interp.run()
        assert 100 in interp.memory
        assert 100 not in diamond_loop.memory_image

    def test_call_and_return(self, call_program):
        interp = Interpreter(call_program)
        interp.run()
        # helper returns r4 + 7 for r4 = 0..19.
        assert interp.memory[100] == sum(i + 7 for i in range(20))

    def test_trace_records_callee_and_blocks(self, call_program):
        trace = run_program(call_program)
        calls = [d for d in trace if d.op is Opcode.CALL]
        assert len(calls) == 20
        assert all(d.callee == "helper" for d in calls)
        rets = [d for d in trace if d.op is Opcode.RET]
        assert len(rets) == 20

    def test_branch_outcomes_recorded(self, diamond_loop):
        trace = run_program(diamond_loop)
        branches = [d for d in trace if d.op.is_branch]
        assert branches
        assert all(d.taken in (True, False) for d in branches)

    def test_block_entries_partition_the_trace(self, diamond_loop):
        trace = run_program(diamond_loop)
        starts = [idx for idx, _ in trace.block_entries]
        assert starts[0] == 0
        assert starts == sorted(starts)
        # Every instruction between consecutive entries shares a block.
        for k, (start, block) in enumerate(trace.block_entries):
            end = (
                trace.block_entries[k + 1][0]
                if k + 1 < len(trace.block_entries)
                else len(trace)
            )
            assert all(trace[i].block == block for i in range(start, end))

    def test_execution_limit(self, diamond_loop):
        with pytest.raises(ExecutionLimitExceeded):
            Interpreter(diamond_loop, max_instructions=10).run()

    def test_determinism(self, diamond_loop):
        t1 = run_program(diamond_loop)
        from tests.conftest import build_diamond_loop

        t2 = run_program(build_diamond_loop())
        assert len(t1) == len(t2)
        assert [d.pc for d in t1] == [d.pc for d in t2]

    def test_diamond_loop_result(self, diamond_loop):
        interp = Interpreter(diamond_loop)
        interp.run()
        expected = sum(5 if i % 3 == 0 else 1 for i in range(50))
        assert interp.memory[100] == expected
