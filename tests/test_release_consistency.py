"""Cross-validation: static release analysis vs dynamic truth.

A write flagged as a *release point* (the compiler proved no later
in-task redefinition is possible on any path) must never be followed,
in the actual dynamic trace, by another write to the same register
within the same dynamic task instance.  This pins the static analysis
against ground truth across real benchmarks and all heuristic levels.
"""

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.ir.interp import run_program
from repro.sim import SimConfig, build_task_stream
from repro.sim.config import ForwardPolicy
from repro.sim.runstate import RunState
from repro.workloads import get_benchmark

BENCHES = ["compress", "li", "m88ksim", "tomcatv", "fpppp"]
LEVELS = [
    HeuristicLevel.CONTROL_FLOW,
    HeuristicLevel.DATA_DEPENDENCE,
    HeuristicLevel.TASK_SIZE,
]


@pytest.mark.parametrize("name", BENCHES)
@pytest.mark.parametrize("level", LEVELS)
def test_release_points_never_contradicted_dynamically(name, level):
    part = select_tasks(
        get_benchmark(name).build(0.15), SelectionConfig(level=level)
    )
    trace = run_program(part.program)
    stream = build_task_stream(trace, part)
    state = RunState(
        stream, SimConfig(forward_policy=ForwardPolicy.SCHEDULE)
    )
    violations = []
    for dyn_task in stream:
        last_writer = {}
        for i in range(dyn_task.start, dyn_task.end):
            write = trace[i].write
            if write is None:
                continue
            prev = last_writer.get(write)
            if prev is not None and state.release_now[prev]:
                violations.append((dyn_task.seq, prev, i, write))
            last_writer[write] = i
    assert not violations, (
        f"{len(violations)} release-point writes were dynamically "
        f"overwritten in-task, e.g. {violations[:3]}"
    )


@pytest.mark.parametrize("name", ["compress", "tomcatv"])
def test_schedule_policy_releases_most_last_writers(name):
    """The analysis should not be uselessly conservative either: most
    dynamic last-writes of inter-task consumed values forward at
    completion rather than waiting for the release lag."""
    part = select_tasks(
        get_benchmark(name).build(0.15),
        SelectionConfig(level=HeuristicLevel.CONTROL_FLOW),
    )
    trace = run_program(part.program)
    stream = build_task_stream(trace, part)
    state = RunState(stream, SimConfig())
    remote_producers = [
        i for i in range(len(trace))
        if state.has_remote_consumer[i] and not stream.absorbed_flags[i]
    ]
    if not remote_producers:
        pytest.skip("no inter-task register traffic")
    released = sum(1 for i in remote_producers if state.release_now[i])
    assert released / len(remote_producers) > 0.5
