"""IR well-formedness lint and partition single-entry checks."""

from __future__ import annotations

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig
from repro.compiler.partition import select_tasks
from repro.ir import (
    BasicBlock,
    Function,
    Instruction,
    IRBuilder,
    Opcode,
    Program,
    WellFormednessError,
    assert_well_formed,
    partition_issues,
    well_formed,
)
from repro.workloads import all_benchmarks, get_benchmark

ALL_LEVELS = tuple(HeuristicLevel)


# ------------------------------------------------------- registry sweeps


@pytest.mark.parametrize(
    "name", [bm.name for bm in all_benchmarks()]
)
def test_registry_workloads_are_well_formed(name):
    """Every registered workload passes the whole-program lint.

    This is the satellite guarantee: targets resolve, all blocks are
    reachable, and no register is read on a path that never defined
    it (the swim z-field accumulator was exactly such a latent bug).
    """
    bm = get_benchmark(name)
    for input_set in ("ref", "train", "alt"):
        program = bm.build(1.0, input_set=input_set)
        assert well_formed(program) == [], (name, input_set)


@pytest.mark.parametrize("level", ALL_LEVELS)
@pytest.mark.parametrize("name", ["compress", "m88ksim"])
def test_partitions_have_single_entry_regions(name, level):
    program = get_benchmark(name).build(0.2)
    partition = select_tasks(program, SelectionConfig(level=level))
    assert partition_issues(partition.program, partition) == []


@pytest.mark.parametrize("level", ALL_LEVELS)
def test_synth_partitions_have_single_entry_regions(level):
    from repro.synth import generate_program

    program = generate_program(11)
    partition = select_tasks(program, SelectionConfig(level=level))
    assert partition_issues(partition.program, partition) == []


# ---------------------------------------------------------- lint negatives


def _program_with_blocks(*blocks: BasicBlock) -> Program:
    program = Program()
    func = Function("main")
    for blk in blocks:
        func.add_block(blk)
    program.add_function(func)
    return program


def test_clean_program_is_clean(diamond_loop):
    assert well_formed(diamond_loop) == []
    assert_well_formed(diamond_loop)


def test_missing_entry_function():
    program = Program()
    issues = well_formed(program)
    assert issues and "missing entry function" in issues[0]


def test_empty_entry_block_reported():
    """An empty entry block is invisible to trace-based task
    construction (no instruction is ever recorded for it), so a CALL
    into the function cannot be matched to its entry task — found by
    fuzzing, now a lint rule."""
    program = _program_with_blocks(
        BasicBlock("entry", [], fallthrough="body"),
        BasicBlock("body", [Instruction(Opcode.HALT)]),
    )
    issues = well_formed(program)
    assert any("entry block is empty" in i for i in issues)


def test_unknown_branch_target_reported():
    program = _program_with_blocks(
        BasicBlock("entry", [Instruction(Opcode.JUMP, target="nowhere")]),
    )
    issues = well_formed(program)
    assert any("unknown block 'nowhere'" in i for i in issues)


def test_unreachable_block_reported():
    program = _program_with_blocks(
        BasicBlock("entry", [Instruction(Opcode.HALT)]),
        BasicBlock("island", [Instruction(Opcode.HALT)]),
    )
    issues = well_formed(program)
    assert any("'island' unreachable" in i for i in issues)


def test_branch_without_fallthrough_reported():
    program = _program_with_blocks(
        BasicBlock("entry", [
            Instruction(Opcode.LI, dst="r1", imm=0),
            Instruction(Opcode.BEQZ, srcs=("r1",), target="entry"),
        ]),
    )
    issues = well_formed(program)
    assert any("without fallthrough" in i for i in issues)


def test_call_to_unknown_function_reported():
    program = _program_with_blocks(
        BasicBlock("entry", [Instruction(Opcode.CALL, target="ghost")],
                   fallthrough="done"),
        BasicBlock("done", [Instruction(Opcode.HALT)]),
    )
    issues = well_formed(program)
    assert any("CALL to unknown function 'ghost'" in i for i in issues)


def test_undefined_read_reported():
    program = _program_with_blocks(
        BasicBlock("entry", [
            Instruction(Opcode.ADD, dst="r2", srcs=("r5", "r5")),
            Instruction(Opcode.HALT),
        ]),
    )
    issues = well_formed(program)
    assert any("reads r5" in i and "not defined on every path" in i
               for i in issues)


def test_partially_defined_read_reported():
    """A register defined on only one arm of a diamond is flagged."""
    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 1)
        then = b.new_label("then")
        join = b.new_label("join")
        b.beqz("r1", then, fallthrough=join)
        with b.block(then):
            b.li("r7", 5)
        with b.block(join):
            b.addi("r2", "r7", 1)  # r7 undefined when branch not taken
            b.halt()
    program = b.build()
    issues = well_formed(program)
    assert any("reads r7" in i for i in issues)


def test_definedness_flows_through_calls():
    """A value defined only inside a callee satisfies reads after the
    call site (the register file is global)."""
    b = IRBuilder()
    with b.function("helper"):
        b.li("r9", 3)
        b.ret()
    with b.function("main"):
        cont = b.new_label("cont")
        b.call("helper", fallthrough=cont)
        with b.block(cont):
            b.addi("r2", "r9", 1)
            b.halt()
    assert well_formed(b.build()) == []


def test_reads_of_r0_are_always_fine():
    program = _program_with_blocks(
        BasicBlock("entry", [
            Instruction(Opcode.ADD, dst="r1", srcs=("r0", "r0")),
            Instruction(Opcode.HALT),
        ]),
    )
    assert well_formed(program) == []


def test_assert_well_formed_raises_with_all_issues():
    program = _program_with_blocks(
        BasicBlock("entry", [
            Instruction(Opcode.ADD, dst="r2", srcs=("r5", "r6")),
            Instruction(Opcode.HALT),
        ]),
    )
    with pytest.raises(WellFormednessError) as err:
        assert_well_formed(program, "broken")
    assert "broken" in str(err.value)
    assert len(err.value.issues) == 2  # r5 and r6


# ------------------------------------------------------ partition negatives


def test_partition_side_entry_detected(diamond_loop):
    """Removing one task's coverage of an edge surfaces a violation."""
    partition = select_tasks(
        diamond_loop, SelectionConfig(level=HeuristicLevel.CONTROL_FLOW)
    )
    assert partition_issues(partition.program, partition) == []
    # Break it: drop every task rooted at a loop-body block so the
    # back edge lands mid-region with no task carrying it.
    broken = [
        t for t in partition.tasks()
        if len(t.internal_edges) == 0 or t.root[1] == "entry"
    ]
    if broken != list(partition.tasks()):
        class Stub:
            def __init__(self, tasks):
                self._tasks = tasks

            def tasks(self):
                return list(self._tasks)

        issues = partition_issues(partition.program, Stub(broken))
        assert issues
