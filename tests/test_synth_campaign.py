"""Differential fuzzing campaigns: determinism, oracle, planted faults."""

from __future__ import annotations

import json

import pytest

from repro.compiler import HeuristicLevel
from repro.harness.spec import RunSpec
from repro.ir import Opcode
from repro.ir.interp import run_program
from repro.sim import MultiscalarMachine, SimConfig
from repro.synth import check_program, fuzz_specs, generate_program, run_campaign
from repro.synth.campaign import CampaignLedger, program_seed

LEVELS2 = (HeuristicLevel.BASIC_BLOCK, HeuristicLevel.CONTROL_FLOW)


def test_small_campaign_passes():
    result = run_campaign(budget=2, seed=1, jobs=1)
    assert result.ok, result.summary()
    assert len(result.programs) == 2
    assert result.cells == 2 * len(HeuristicLevel) * 2
    counters = result.metrics["counters"]
    assert counters["fuzz.programs"] == 2
    assert counters["fuzz.divergences"] == 0
    assert counters["fuzz.invariant_checks"] > 0


def test_campaign_ledger_deterministic(tmp_path):
    """Two identical campaigns write identical ledgers modulo ``ts``."""
    ledgers = []
    for run in ("a", "b"):
        path = tmp_path / f"{run}.jsonl"
        ledger = CampaignLedger(path)
        result = run_campaign(budget=2, seed=3, jobs=1,
                              levels=LEVELS2, ledger=ledger)
        assert result.ok, result.summary()
        entries = [
            json.loads(line)
            for line in path.read_text().splitlines() if line.strip()
        ]
        for entry in entries:
            entry.pop("ts", None)
            assert entry.get("wall_seconds", 0.0) == 0.0
        ledgers.append(entries)
    assert ledgers[0] == ledgers[1]


def test_campaign_third_engine_column():
    """--engine batched adds a third differential column per cell."""
    result = run_campaign(budget=1, seed=5, jobs=1, levels=LEVELS2,
                          engines=("fast", "reference", "batched"))
    assert result.ok, result.summary()
    assert result.cells == len(LEVELS2) * 3


def test_campaign_batched_degenerate_task_attribution():
    """Regression: the second seed-1 program carries a task that goes
    ``done`` without ever popping a completion heap entry, so the
    batched engine's open deferred span must be woken at the flip —
    otherwise the whole idle stretch bulk-charges the stale FETCH
    slot where the reference charges LOAD_IMBALANCE (same total
    cycles, wrong breakdown; found by the fuzz third column)."""
    result = run_campaign(
        budget=2, seed=1, jobs=1,
        levels=(HeuristicLevel.BASIC_BLOCK,),
        engines=("fast", "batched", "reference"),
    )
    assert result.ok, result.summary()
    assert result.cells == 2 * 3


def test_fuzz_specs_engine_column_order():
    """Requested engines appear per level, in request order."""
    specs, _ = fuzz_specs(
        1, seed=1, levels=LEVELS2,
        engines=("fast", "batched", "reference"),
    )
    assert len(specs) == len(LEVELS2) * 3
    assert [s.sim.engine for s in specs[:3]] == [
        "fast", "batched", "reference"
    ]
    # all three share one compilation, none share a record identity
    assert len({s.compile_hash() for s in specs[:3]}) == 1
    assert len({s.spec_hash() for s in specs[:3]}) == 3


def test_fuzz_specs_share_compile_groups():
    """The fast/reference pair of one cell shares one compilation but
    has distinct record-cache identities."""
    specs, names = fuzz_specs(1, seed=1, levels=LEVELS2)
    assert names == ["synth:default:1000003"]
    assert len(specs) == len(LEVELS2) * 2
    fast, ref = specs[0], specs[1]
    assert fast.compile_hash() == ref.compile_hash()
    assert fast.spec_hash() != ref.spec_hash()
    assert fast.source_hash and fast.source_hash == ref.source_hash


def test_source_hash_salts_compile_signature():
    plain = RunSpec(benchmark="compress", level=HeuristicLevel.BASIC_BLOCK)
    salted = RunSpec(benchmark="compress", level=HeuristicLevel.BASIC_BLOCK,
                     source_hash="ab" * 32)
    assert plain.compile_hash() != salted.compile_hash()
    assert plain.spec_hash() != salted.spec_hash()
    # absent hash preserves the pre-existing signature shape
    assert "source" not in repr(plain.compile_signature())


def test_program_seed_streams_disjoint():
    a = {program_seed(1, i) for i in range(200)}
    b = {program_seed(2, i) for i in range(200)}
    assert not a & b


def test_check_program_clean_on_generated():
    assert check_program(generate_program(5), levels=LEVELS2) == []


def test_check_program_reports_malformed():
    from repro.ir import BasicBlock, Function, Instruction, Program

    program = Program()
    func = Function("main")
    func.add_block(BasicBlock("entry", [
        Instruction(Opcode.ADD, dst="r1", srcs=("r9", "r9")),
        Instruction(Opcode.HALT),
    ]))
    program.add_function(func)
    issues = check_program(program, levels=LEVELS2)
    assert issues and all("well-formedness" in i for i in issues)


# ------------------------------------------------------------ planted fault


def _xor_trigger_seed() -> int:
    """A campaign-stream seed whose program dynamically executes XOR."""
    for index in range(20):
        seed = program_seed(1, index)
        trace = run_program(generate_program(seed))
        if any(dyn.op is Opcode.XOR for dyn in trace.insts):
            return index
    raise AssertionError("no XOR-executing program in the first 20 seeds")


@pytest.fixture
def planted_fast_engine_fault(monkeypatch):
    """Perturb the fast engine's cycle count on XOR-executing runs.

    The plant is at :meth:`MultiscalarMachine.run` so every consumer —
    the campaign worker, ``check_program``, the reducer predicate —
    sees the same wrong fast engine, exactly like a real engine bug.
    """
    real_run = MultiscalarMachine.run

    def buggy_run(self):
        result = real_run(self)
        if self.config.engine == "fast" and any(
            dyn.op is Opcode.XOR for dyn in self.stream.trace.insts
        ):
            result.cycles += 1
        return result

    monkeypatch.setattr(MultiscalarMachine, "run", buggy_run)
    return buggy_run


def test_planted_fault_is_caught_and_reduced(planted_fast_engine_fault):
    """Acceptance: a planted engine divergence is detected by the
    campaign and delta-debugged to a <= 3 block reproducer."""
    index = _xor_trigger_seed()
    result = run_campaign(budget=index + 1, seed=1, jobs=1,
                          levels=LEVELS2, minimize=True)
    assert not result.ok
    name = f"synth:default:{program_seed(1, index)}"
    assert any(name in d and "diverge on cycles" in d
               for d in result.divergences), result.divergences[:5]
    assert name in result.reduced
    reduced_text = result.reduced[name]
    n_blocks = sum(
        1 for line in reduced_text.splitlines()
        if line.endswith(":") and not line.startswith((" ", "\t"))
    )
    assert n_blocks <= 3, reduced_text
    assert " xor " in reduced_text or "xor\t" in reduced_text.replace(
        "xor ", "xor\t"
    )


def test_planted_fault_clears_with_patch_removed():
    index = _xor_trigger_seed()
    result = run_campaign(budget=index + 1, seed=1, jobs=1, levels=LEVELS2)
    assert result.ok, result.summary()
