"""Tests of the execution harness: hashing, cache, ledger, scheduler."""

import time
from dataclasses import replace

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig
from repro.experiments import clear_cache
from repro.harness import (
    ArtifactCache,
    HarnessError,
    RunLedger,
    RunSpec,
    read_ledger,
    record_to_dict,
    run_specs,
)
from repro.sim import SimConfig

SMALL = 0.1


@pytest.fixture(autouse=True)
def _fresh_compile_cache():
    clear_cache()
    yield
    clear_cache()


def small_specs(n_pus=(2, 4), levels=(HeuristicLevel.CONTROL_FLOW,)):
    return [
        RunSpec("compress", level, n_pus=n, scale=SMALL)
        for level in levels
        for n in n_pus
    ]


class TestSpecHashing:
    def test_hash_is_deterministic(self):
        a = RunSpec("compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL)
        b = RunSpec("compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL)
        assert a.spec_hash("salt") == b.spec_hash("salt")
        assert a.compile_hash("salt") == b.compile_hash("salt")

    def test_salt_changes_hash(self):
        spec = RunSpec("compress", HeuristicLevel.CONTROL_FLOW)
        assert spec.spec_hash("a") != spec.spec_hash("b")

    def test_machine_fields_do_not_change_compile_hash(self):
        a = RunSpec("compress", HeuristicLevel.CONTROL_FLOW, n_pus=4)
        b = RunSpec("compress", HeuristicLevel.CONTROL_FLOW, n_pus=8)
        assert a.compile_hash() == b.compile_hash()
        assert a.spec_hash() != b.spec_hash()

    def test_every_selection_field_feeds_compile_hash(self):
        base = RunSpec(
            "compress",
            HeuristicLevel.TASK_SIZE,
            selection=SelectionConfig(level=HeuristicLevel.TASK_SIZE),
        )
        for change in (
            {"max_targets": 2},
            {"call_thresh": 10},
            {"loop_thresh": 10},
            {"max_unroll": 1},
            {"hoist_induction": False},
            {"schedule_communication": False},
            {"max_dependences": 7},
        ):
            variant = replace(base, selection=replace(base.selection, **change))
            assert variant.compile_hash() != base.compile_hash(), change

    def test_sim_config_feeds_spec_hash_only(self):
        a = RunSpec("compress", HeuristicLevel.CONTROL_FLOW)
        b = replace(a, sim=SimConfig(sync_table_size=0))
        assert a.compile_hash() == b.compile_hash()
        assert a.spec_hash() != b.spec_hash()

    def test_default_sim_hashes_like_explicit_default(self):
        a = RunSpec("compress", HeuristicLevel.CONTROL_FLOW)
        b = replace(a, sim=SimConfig())
        assert a.spec_hash() == b.spec_hash()


class TestArtifactCache:
    def test_round_trip_is_a_hit_with_equal_records(self, tmp_path):
        specs = small_specs()
        cache = ArtifactCache(tmp_path, salt="s")
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        first = run_specs(specs, jobs=1, cache=cache, ledger=ledger)
        clear_cache()  # drop in-memory compilations: only the disk cache left
        second = run_specs(specs, jobs=1, cache=cache, ledger=ledger)
        assert first == second
        entries = read_ledger(tmp_path / "ledger.jsonl")
        assert [e["cache"] for e in entries] == ["miss", "miss", "hit", "hit"]
        assert all(e["outcome"] == "ok" for e in entries)

    def test_machine_sweep_shares_one_compiled_artifact(self, tmp_path):
        cache = ArtifactCache(tmp_path, salt="s")
        run_specs(small_specs(n_pus=(2, 4)), jobs=1, cache=cache)
        stats = cache.stats()
        assert stats["records"] == 2
        assert stats["compiled"] == 1

    def test_salt_change_invalidates(self, tmp_path):
        specs = small_specs(n_pus=(2,))
        run_specs(specs, jobs=1, cache=ArtifactCache(tmp_path, salt="v1"))
        clear_cache()
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        run_specs(specs, jobs=1,
                  cache=ArtifactCache(tmp_path, salt="v2"), ledger=ledger)
        entries = read_ledger(tmp_path / "ledger.jsonl")
        assert [e["cache"] for e in entries] == ["miss"]

    def test_torn_pickle_is_a_miss(self, tmp_path):
        specs = small_specs(n_pus=(2,))
        cache = ArtifactCache(tmp_path, salt="s")
        run_specs(specs, jobs=1, cache=cache)
        for path in cache.records_dir.glob("*.pkl"):
            path.write_bytes(b"\x80garbage")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get_record(specs[0]) is None

    def test_clear_removes_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path, salt="s")
        ledger = RunLedger(cache.ledger_path)
        run_specs(small_specs(n_pus=(2,)), jobs=1, cache=cache, ledger=ledger)
        assert cache.clear() > 0
        stats = cache.stats()
        assert stats["records"] == 0 and stats["compiled"] == 0
        assert not cache.ledger_path.exists()


# -- injectable fake workers (module-level so they are picklable) ------

_FLAKY_CALLS = {"n": 0}


def _flaky_worker(spec):
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] == 1:
        raise RuntimeError("transient failure")
    return ("ok", spec.benchmark, spec.n_pus)


def _always_failing_worker(spec):
    raise RuntimeError("permanent failure")


def _slow_worker(spec):
    time.sleep(0.5)
    return "too late"


class TestSchedulerFaults:
    def test_retry_then_succeed_serial(self, tmp_path):
        _FLAKY_CALLS["n"] = 0
        spec = RunSpec("compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL)
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        out = run_specs([spec], jobs=1, worker=_flaky_worker, retries=1,
                        ledger=ledger)
        assert out == [("ok", "compress", 4)]
        entries = read_ledger(tmp_path / "ledger.jsonl")
        assert entries[0]["retries"] == 1
        assert entries[0]["outcome"] == "ok"

    def test_retry_then_succeed_pool(self, tmp_path):
        _FLAKY_CALLS["n"] = 0
        spec = RunSpec("compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL)
        out = run_specs([spec], jobs=2, use_threads=True,
                        worker=_flaky_worker, retries=1)
        assert out == [("ok", "compress", 4)]

    def test_retries_exhausted_raises(self, tmp_path):
        spec = RunSpec("compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL)
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        with pytest.raises(HarnessError, match="permanent failure"):
            run_specs([spec], jobs=1, worker=_always_failing_worker,
                      retries=2, ledger=ledger)
        entries = read_ledger(tmp_path / "ledger.jsonl")
        assert entries[0]["outcome"] == "error"
        assert entries[0]["retries"] == 2

    def test_timeout_then_fail(self, tmp_path):
        spec = RunSpec("compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL)
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        with pytest.raises(HarnessError, match="timed out"):
            run_specs([spec], jobs=2, use_threads=True, worker=_slow_worker,
                      timeout=0.05, retries=1, ledger=ledger)
        entries = read_ledger(tmp_path / "ledger.jsonl")
        assert entries[0]["outcome"] == "timeout"
        assert entries[0]["retries"] == 1

    def test_failure_does_not_poison_other_groups(self, tmp_path):
        _FLAKY_CALLS["n"] = 0
        specs = [
            RunSpec("compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL),
            RunSpec("compress", HeuristicLevel.BASIC_BLOCK, scale=SMALL),
        ]
        with pytest.raises(HarnessError) as excinfo:
            run_specs(specs, jobs=1, worker=_always_failing_worker, retries=0)
        assert len(excinfo.value.failures) == 2


class TestSchedulerEquivalence:
    def test_jobs2_processes_match_jobs1(self):
        specs = small_specs(
            n_pus=(2, 4),
            levels=(HeuristicLevel.BASIC_BLOCK, HeuristicLevel.CONTROL_FLOW),
        )
        serial = run_specs(specs, jobs=1)
        clear_cache()
        parallel = run_specs(specs, jobs=2)
        assert serial == parallel

    def test_records_align_with_specs(self):
        specs = small_specs(n_pus=(4, 2))
        records = run_specs(specs, jobs=1)
        assert [r.n_pus for r in records] == [4, 2]
        assert all(r.benchmark == "compress" for r in records)


class TestSerialization:
    def test_record_to_dict_round_trips_key_fields(self):
        records = run_specs(small_specs(n_pus=(2,)), jobs=1)
        as_dict = record_to_dict(records[0])
        assert as_dict["benchmark"] == "compress"
        assert as_dict["level"] == "control_flow"
        assert as_dict["n_pus"] == 2
        assert as_dict["ipc"] == pytest.approx(records[0].ipc)
        assert set(as_dict["breakdown"]) >= {"useful", "idle"}
