"""End-to-end HTTP tests: a real server on an ephemeral port.

The acceptance bar for the service: a figure5 grid submitted over
HTTP must come back byte-identical to a direct ``run_figure5``
``--jobs 1`` invocation, and re-submitting the same grid must
execute zero new simulations.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.cache import ArtifactCache
from repro.service import CampaignService, ServiceClient
from repro.service.client import ServiceError, ServiceUnavailable

MICRO = {"benchmarks": ["compress"], "scale": 0.05,
         "levels": ["basic_block"]}


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture()
def service(tmp_path):
    svc = CampaignService(
        cache=ArtifactCache(root=tmp_path / "cache"),
        journal_root=tmp_path / "svc",
        port=0, workers=2, executor="thread",
    )
    with svc:
        yield svc


@pytest.fixture()
def client(service):
    return ServiceClient(service.base_url)


def test_healthz_and_metrics(client):
    health = client.healthz()
    assert health["status"] == "healthy"
    assert health["workers"] == 2
    assert health["max_queue_depth"] == 64
    assert health["journal_pending_events"] == 0
    metrics = client.metrics()
    assert "counters" in metrics
    assert "cache" in metrics
    assert metrics["state"] == "healthy"
    assert metrics["gauges"]["service.queue_depth"] == 0
    # robustness counters are pre-registered, visible at zero
    for name in (
        "service.shards_retried", "service.specs_quarantined",
        "service.jobs_rejected_429", "service.drain_events",
    ):
        assert metrics["counters"][name] == 0


def test_submitted_grid_matches_direct_run(client, tmp_path):
    job = client.submit("figure5", MICRO)
    assert job["kind"] == "figure5"
    assert job["cells"] == 4
    view = client.wait(job["job_id"], timeout=180)
    assert view["job"]["state"] == "done"
    assert view["job"]["misses"] == 4

    # byte-identity with the direct driver, in a separate cache so
    # nothing is shared with the service
    from repro.compiler import HeuristicLevel
    from repro.experiments.figure5 import (
        DEFAULT_CONFIGS,
        format_figure5,
        run_figure5,
    )
    from repro.harness.serialize import grid_records, records_to_json

    direct = run_figure5(
        benchmarks=["compress"], levels=[HeuristicLevel.BASIC_BLOCK],
        scale=0.05, jobs=1,
        cache=ArtifactCache(root=tmp_path / "direct-cache"),
    )
    assert view["result"]["records_json"] == records_to_json(
        "figure5", grid_records(direct.records), 0.05
    )
    assert view["result"]["report"] == format_figure5(
        direct, configs=list(DEFAULT_CONFIGS)
    )


def test_resubmit_is_pure_cache_hits(client):
    first = client.submit("figure5", MICRO)
    view1 = client.wait(first["job_id"], timeout=180)
    again = client.submit("figure5", MICRO)
    view2 = client.wait(again["job_id"], timeout=60)
    assert view2["job"]["misses"] == 0
    assert view2["job"]["hits"] == 4
    assert view2["result"] == view1["result"]
    # the job ids share the request's content-hash prefix
    assert first["job_id"].rsplit("-", 1)[0] == (
        again["job_id"].rsplit("-", 1)[0]
    )


def test_ledger_and_record_endpoints(client):
    job = client.submit("figure5", MICRO)
    client.wait(job["job_id"], timeout=180)
    lines = client.ledger_lines(job["job_id"])
    done = [l for l in lines if l.get("outcome") == "ok"]
    assert len(done) == 4
    spec_hash = done[0]["spec_hash"]
    view = client.record(spec_hash)
    assert view["spec_hash"] == spec_hash
    assert view["record"]["benchmark"] == "compress"
    assert view["record"]["cycles"] > 0


def test_jobs_listing_in_submission_order(client):
    a = client.submit("figure5", MICRO)
    b = client.submit("table1", {"benchmarks": ["compress"],
                                 "scale": 0.05})
    listed = client.jobs()
    assert [j["job_id"] for j in listed] == [a["job_id"], b["job_id"]]
    client.wait(a["job_id"], timeout=180)
    client.wait(b["job_id"], timeout=180)


def test_error_statuses(client):
    with pytest.raises(ServiceError) as err:
        client.submit("nope", {})
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        client.submit("figure5", {"benchmarks": ["unknown-bm"]})
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        client.job("absent-job")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.ledger_lines("absent-job")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.record("feedfeedfeed")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.record("../../etc/passwd")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client._json("GET", "/nope")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.cancel("absent-job")
    assert err.value.status == 404


def test_metrics_count_service_traffic(client):
    job = client.submit("figure5", MICRO)
    client.wait(job["job_id"], timeout=180)
    counters = client.metrics()["counters"]
    assert counters["service.jobs_submitted"] == 1
    assert counters["service.jobs_done"] == 1
    assert counters["service.cells_submitted"] == 4
    assert counters["service.cells_executed"] == 4


def test_client_unreachable_server():
    client = ServiceClient("http://127.0.0.1:9", timeout=2)
    with pytest.raises(ServiceUnavailable):
        client.healthz()


def test_fuzz_job_over_http(client):
    job = client.submit("fuzz", {"budget": 1, "seed": 3})
    view = client.wait(job["job_id"], timeout=180)
    assert view["job"]["state"] == "done"
    result = view["result"]
    assert result["ok"] is True
    assert result["divergences"] == []
    assert "report" in result
