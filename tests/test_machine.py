"""Integration tests of the cycle-level Multiscalar machine."""

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.ir import IRBuilder
from repro.ir.interp import run_program
from repro.sim import SimConfig, StallReason, build_task_stream, simulate
from repro.sim.config import ForwardPolicy
from tests.conftest import build_diamond_loop, build_call_program


def pipeline(program, level=HeuristicLevel.CONTROL_FLOW, **sim_kwargs):
    part = select_tasks(program, SelectionConfig(level=level))
    trace = run_program(part.program)
    stream = build_task_stream(trace, part)
    return simulate(stream, SimConfig(**sim_kwargs)), stream


class TestBasics:
    def test_commits_exactly_the_trace(self, diamond_loop):
        result, stream = pipeline(diamond_loop)
        assert result.committed_instructions == len(stream.trace)
        assert result.cycles > 0
        assert 0 < result.ipc <= 4 * 2  # can never exceed total issue width

    def test_single_pu_runs_sequentially(self, diamond_loop):
        result, _ = pipeline(diamond_loop, n_pus=1)
        assert result.ipc <= 2  # one 2-wide PU

    def test_more_pus_never_lose_big(self, diamond_loop):
        r1, _ = pipeline(diamond_loop, n_pus=1)
        r4, _ = pipeline(diamond_loop, n_pus=4)
        assert r4.cycles <= r1.cycles * 1.05

    def test_in_order_not_faster_than_out_of_order(self, diamond_loop):
        ooo, _ = pipeline(diamond_loop, out_of_order=True)
        ino, _ = pipeline(diamond_loop, out_of_order=False)
        assert ino.cycles >= ooo.cycles

    def test_determinism(self, diamond_loop):
        r1, _ = pipeline(build_diamond_loop())
        r2, _ = pipeline(build_diamond_loop())
        assert r1.cycles == r2.cycles
        assert r1.breakdown.as_dict() == r2.breakdown.as_dict()

    def test_breakdown_covers_all_pu_cycles(self, diamond_loop):
        config_pus = 4
        result, _ = pipeline(diamond_loop, n_pus=config_pus)
        total = result.breakdown.total_pu_cycles
        # Every (PU, cycle) pair is attributed to exactly one category,
        # up to the boundary cycles of squash re-attribution.
        assert abs(total - result.cycles * config_pus) <= result.cycles * 0.05

    def test_calls_execute_correctly(self, call_program):
        result, stream = pipeline(call_program)
        assert result.committed_instructions == len(stream.trace)

    def test_window_span_positive(self, diamond_loop):
        result, _ = pipeline(diamond_loop, n_pus=4)
        assert result.mean_window_span > 0


class TestMemorySpeculation:
    def _store_load_conflict_program(self, iterations=40):
        """Each iteration stores to a fixed address late and loads it
        early in the next iteration: adjacent tasks conflict."""
        b = IRBuilder()
        with b.function("main"):
            b.li("r1", 0)
            b.li("r2", iterations)
            body = b.new_label("body")
            done = b.new_label("done")
            b.store("r0", "r0", 600)
            b.jump(body)
            with b.block(body):
                b.load("r3", "r0", 600)   # early load
                b.addi("r3", "r3", 1)
                b.muli("r8", "r3", 3)     # padding work
                b.muli("r8", "r8", 5)
                b.div("r9", "r8", "r3")
                b.store("r3", "r0", 600)  # late store, same address
                b.addi("r1", "r1", 1)
                b.slt("r9", "r1", "r2")
                b.bnez("r9", body, fallthrough=done)
            with b.block(done):
                b.load("r4", "r0", 600)
                b.store("r4", "r0", 601)
                b.halt()
        return b.build()

    def test_violations_detected_and_squashed(self):
        result, _ = pipeline(
            self._store_load_conflict_program(),
            level=HeuristicLevel.CONTROL_FLOW,
            n_pus=4,
            sync_table_size=0,  # no synchronisation: squash every time
        )
        assert result.memory_squashes > 0
        assert result.breakdown.memory_misspeculation > 0

    def test_sync_table_suppresses_repeat_squashes(self):
        no_sync, _ = pipeline(
            self._store_load_conflict_program(),
            level=HeuristicLevel.CONTROL_FLOW,
            n_pus=4,
            sync_table_size=0,
        )
        with_sync, _ = pipeline(
            self._store_load_conflict_program(),
            level=HeuristicLevel.CONTROL_FLOW,
            n_pus=4,
            sync_table_size=256,
        )
        assert with_sync.memory_squashes < no_sync.memory_squashes
        assert with_sync.cycles <= no_sync.cycles

    def test_single_pu_never_violates(self):
        result, _ = pipeline(
            self._store_load_conflict_program(), n_pus=1, sync_table_size=0
        )
        assert result.memory_squashes == 0


class TestControlSpeculation:
    def test_mispredictions_cost_cycles(self, diamond_loop):
        result, _ = pipeline(diamond_loop, n_pus=4)
        # diamond loop exit is mispredicted at least once (cold).
        assert result.task_predictions > 0
        assert 0.0 <= result.task_prediction_accuracy <= 1.0

    def test_control_penalty_accounted(self):
        # A hard-to-predict alternation of task successors.
        b = IRBuilder()
        with b.function("main"):
            b.li("r1", 0)
            b.li("r2", 120)
            lcg = b.new_label("body")
            a = b.new_label("a")
            c = b.new_label("c")
            join = b.new_label("join")
            done = b.new_label("done")
            b.li("r26", 12345)
            b.jump(lcg)
            with b.block(lcg):
                b.muli("r27", "r26", 1103515245)
                b.addi("r27", "r27", 12345)
                b.andi("r26", "r27", 0x7FFFFFFF)
                b.shr("r9", "r26", 7)
                b.andi("r9", "r9", 1)
                b.bnez("r9", a, fallthrough=c)
            with b.block(a):
                b.addi("r3", "r3", 2)
                b.jump(join)
            with b.block(c):
                b.addi("r3", "r3", 7)
            with b.block(join):
                b.addi("r1", "r1", 1)
                b.slt("r9", "r1", "r2")
                b.bnez("r9", lcg, fallthrough=done)
            with b.block(done):
                b.halt()
        result, _ = pipeline(
            b.build(), level=HeuristicLevel.BASIC_BLOCK, n_pus=4
        )
        assert result.control_squashes > 0
        assert result.breakdown.control_misspeculation > 0


class TestForwardPolicies:
    @pytest.mark.parametrize("policy", list(ForwardPolicy))
    def test_all_policies_complete(self, diamond_loop, policy):
        result, stream = pipeline(diamond_loop, forward_policy=policy)
        assert result.committed_instructions == len(stream.trace)

    def test_eager_not_slower_than_lazy(self, diamond_loop):
        eager, _ = pipeline(
            diamond_loop, forward_policy=ForwardPolicy.EAGER
        )
        lazy, _ = pipeline(diamond_loop, forward_policy=ForwardPolicy.LAZY)
        assert eager.cycles <= lazy.cycles

    def test_schedule_between_eager_and_lazy(self, diamond_loop):
        eager, _ = pipeline(
            diamond_loop, forward_policy=ForwardPolicy.EAGER
        )
        sched, _ = pipeline(
            diamond_loop, forward_policy=ForwardPolicy.SCHEDULE
        )
        lazy, _ = pipeline(diamond_loop, forward_policy=ForwardPolicy.LAZY)
        assert eager.cycles <= sched.cycles <= lazy.cycles


class TestOverheadKnobs:
    def test_task_overheads_add_cycles(self, diamond_loop):
        cheap, _ = pipeline(
            diamond_loop, task_start_overhead=0, task_end_overhead=0
        )
        costly, _ = pipeline(
            diamond_loop, task_start_overhead=4, task_end_overhead=4
        )
        assert costly.cycles > cheap.cycles

    def test_stall_reasons_present(self, diamond_loop):
        result, _ = pipeline(diamond_loop, n_pus=4)
        flat = result.breakdown.as_dict()
        assert flat[StallReason.USEFUL.value] > 0
        assert flat[StallReason.TASK_END.value] > 0
