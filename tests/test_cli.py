"""Tests for the command line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "compress"])
        assert args.benchmark == "compress"
        assert args.level == "data_dependence"
        assert args.pus == 4
        assert not args.in_order

    def test_figure5_options(self):
        args = build_parser().parse_args(
            ["figure5", "--benchmarks", "compress,go", "--pus", "8",
             "--scale", "0.2"]
        )
        assert args.benchmarks == "compress,go"
        assert args.pus == 8
        assert args.scale == 0.2


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "tomcatv" in out
        assert "[int]" in out and "[fp]" in out

    def test_run(self, capsys):
        assert main(
            ["run", "compress", "--level", "control_flow",
             "--scale", "0.1", "--pus", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "window span" in out
        assert "2 PUs" in out

    def test_run_in_order(self, capsys):
        assert main(["run", "compress", "--scale", "0.1", "--in-order"]) == 0
        assert "in-order" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(
            ["figure5", "--benchmarks", "compress", "--pus", "4",
             "--scale", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "basic_block" in out

    def test_table1(self, capsys):
        assert main(
            ["table1", "--benchmarks", "compress", "--scale", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "#dyn" in out and "compress" in out

    def test_breakdown(self, capsys):
        assert main(
            ["breakdown", "--benchmarks", "compress", "--scale", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "useful" in out

    def test_centralized(self, capsys):
        assert main(
            ["centralized", "--benchmarks", "compress", "--scale", "0.1",
             "--pus", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "break-even" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["run", "nonexistent", "--scale", "0.1"])
