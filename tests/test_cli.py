"""Tests for the command line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Point the persistent artifact cache at a per-test directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "compress"])
        assert args.benchmark == "compress"
        assert args.level == "data_dependence"
        assert args.pus == 4
        assert not args.in_order

    def test_figure5_options(self):
        args = build_parser().parse_args(
            ["figure5", "--benchmarks", "compress,go", "--pus", "8",
             "--scale", "0.2"]
        )
        assert args.benchmarks == "compress,go"
        assert args.pus == 8
        assert args.scale == 0.2
        assert args.jobs == 0  # auto: one worker per CPU
        assert not args.no_cache
        assert args.json == ""

    def test_harness_flags(self):
        args = build_parser().parse_args(
            ["table1", "--jobs", "3", "--no-cache", "--json", "out.json"]
        )
        assert args.jobs == 3
        assert args.no_cache
        assert args.json == "out.json"

    def test_cache_subcommand(self):
        assert build_parser().parse_args(["cache", "stats"]).action == "stats"
        assert build_parser().parse_args(["cache", "clear"]).action == "clear"
        assert build_parser().parse_args(
            ["cache", "doctor"]).action == "doctor"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "bogus"])

    def test_resume_flag(self):
        args = build_parser().parse_args(["table1", "--resume"])
        assert args.resume
        assert not build_parser().parse_args(["table1"]).resume

    def test_verify_options(self):
        args = build_parser().parse_args(
            ["verify", "compress", "tomcatv", "--faults", "50",
             "--seed", "7", "--scale", "0.2"]
        )
        assert args.benchmarks == ["compress", "tomcatv"]
        assert args.faults == 50
        assert args.seed == 7
        assert not args.all

    def test_trace_options(self):
        args = build_parser().parse_args(
            ["trace", "compress", "--level", "control_flow",
             "--engine", "reference", "-o", "out.json"]
        )
        assert args.benchmark == "compress"
        assert args.level == "control_flow"
        assert args.engine == "reference"
        assert args.output == "out.json"
        assert not args.no_engine_events
        assert build_parser().parse_args(
            ["trace", "compress"]).output == "trace.json"

    @pytest.mark.parametrize("command", [
        ["run", "compress"],
        ["figure5"],
        ["verify", "compress"],
        ["trace", "compress"],
        ["profile-sim", "compress"],
    ], ids=lambda c: c[0])
    def test_engine_choices_include_batched(self, command):
        args = build_parser().parse_args(command + ["--engine", "batched"])
        assert args.engine == "batched"
        with pytest.raises(SystemExit):
            build_parser().parse_args(command + ["--engine", "warp"])

    def test_fuzz_extra_engines(self):
        assert build_parser().parse_args(
            ["fuzz", "--budget", "1"]).extra_engines is None
        args = build_parser().parse_args(
            ["fuzz", "--budget", "1",
             "--engine", "batched", "--engine", "reference"]
        )
        assert args.extra_engines == ["batched", "reference"]

    def test_report_options(self):
        args = build_parser().parse_args(
            ["report", "a.json", "b.json", "--tolerance", "0.1"]
        )
        assert args.a == "a.json"
        assert args.b == "b.json"
        assert args.tolerance == 0.1
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "only-one"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "tomcatv" in out
        assert "int" in out and "fp" in out
        # static code counts are part of the listing
        header, first = out.splitlines()[:2]
        for column in ("funcs", "blocks", "insts"):
            assert column in header
        assert any(token.isdigit() for token in first.split())

    def test_run(self, capsys):
        assert main(
            ["run", "compress", "--level", "control_flow",
             "--scale", "0.1", "--pus", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "window span" in out
        assert "2 PUs" in out

    def test_run_in_order(self, capsys):
        assert main(["run", "compress", "--scale", "0.1", "--in-order"]) == 0
        assert "in-order" in capsys.readouterr().out

    def test_run_batched_engine_output_matches_fast(self, capsys):
        assert main(
            ["run", "compress", "--scale", "0.1", "--engine", "batched"]
        ) == 0
        batched = capsys.readouterr().out
        assert main(["run", "compress", "--scale", "0.1"]) == 0
        assert batched == capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(
            ["figure5", "--benchmarks", "compress", "--pus", "4",
             "--scale", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "basic_block" in out

    def test_table1(self, capsys):
        assert main(
            ["table1", "--benchmarks", "compress", "--scale", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "#dyn" in out and "compress" in out

    def test_breakdown(self, capsys):
        assert main(
            ["breakdown", "--benchmarks", "compress", "--scale", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "useful" in out

    def test_centralized(self, capsys):
        assert main(
            ["centralized", "--benchmarks", "compress", "--scale", "0.1",
             "--pus", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "break-even" in out

    def test_figure5_json_output(self, capsys, tmp_path):
        path = tmp_path / "fig5.json"
        assert main(
            ["figure5", "--benchmarks", "compress", "--pus", "4",
             "--scale", "0.1", "--json", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["command"] == "figure5"
        assert payload["scale"] == 0.1
        # one benchmark x 4 levels x (4 PUs, ooo + in-order)
        assert len(payload["records"]) == 8
        assert {r["level"] for r in payload["records"]} == {
            "basic_block", "control_flow", "data_dependence", "task_size"
        }

    def test_warm_cache_second_run_is_all_hits(self, capsys, tmp_path):
        from repro.experiments import clear_cache
        from repro.harness import read_ledger

        argv = ["table1", "--benchmarks", "compress", "--scale", "0.1"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        clear_cache()  # in-memory compilations gone: disk cache only
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        entries = read_ledger(tmp_path / "cache" / "ledger.jsonl")
        assert [e["cache"] for e in entries[-3:]] == ["hit"] * 3

    def test_no_cache_bypasses_artifacts(self, capsys, tmp_path):
        assert main(
            ["table1", "--benchmarks", "compress", "--scale", "0.1",
             "--no-cache"]
        ) == 0
        assert not (tmp_path / "cache" / "records").exists()

    def test_cache_stats_and_clear(self, capsys):
        assert main(
            ["table1", "--benchmarks", "compress", "--scale", "0.1"]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "cache root" in out and "records    : 3" in out
        assert main(["cache", "clear"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats"]) == 0
        assert "records    : 0" in capsys.readouterr().out

    def test_verify_clean_workload(self, capsys):
        assert main(
            ["verify", "compress", "--scale", "0.1", "--levels",
             "control_flow,task_size", "--faults", "5", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "verified 2 cell(s): 2 ok, 0 diverged" in out

    def test_verify_without_benchmarks_exits(self):
        with pytest.raises(SystemExit, match="--all"):
            main(["verify"])

    def test_cache_doctor(self, capsys):
        assert main(
            ["table1", "--benchmarks", "compress", "--scale", "0.1"]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "doctor"]) == 0
        out = capsys.readouterr().out
        assert "checked" in out and "quarantined: 0" in out

    def test_resume_second_run_skips_completed(self, capsys, tmp_path):
        from repro.experiments import clear_cache
        from repro.harness import read_ledger

        argv = ["table1", "--benchmarks", "compress", "--scale", "0.1"]
        assert main(argv) == 0
        clear_cache()
        assert main(argv + ["--resume"]) == 0
        entries = read_ledger(tmp_path / "cache" / "ledger.jsonl")
        assert [e["cache"] for e in entries[-3:]] == ["resume"] * 3

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["run", "nonexistent", "--scale", "0.1"])

    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        from repro.telemetry import validate_chrome_trace_file

        path = tmp_path / "trace.json"
        assert main(
            ["trace", "compress", "--scale", "0.1", "-o", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "lifecycle event" in out and "perfetto" in out.lower()
        validate_chrome_trace_file(path)  # must not raise
        payload = json.loads(path.read_text())
        assert payload["otherData"]["n_pus"] == 4

    def test_report_ok_and_drift_exit_codes(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(
            ["figure5", "--benchmarks", "li", "--pus", "4",
             "--scale", "0.1", "--json", str(a)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(a.read_text())
        b.write_text(json.dumps(payload))
        assert main(["report", str(a), str(b)]) == 0
        assert "0 drifted" in capsys.readouterr().out
        payload["records"][0]["cycles"] += 1
        b.write_text(json.dumps(payload))
        with pytest.raises(SystemExit, match="DRIFT"):
            main(["report", str(a), str(b)])

    def test_report_rejects_unreadable_input(self):
        with pytest.raises(SystemExit, match="repro report"):
            main(["report", "no-such-file.json", "also-missing.json"])


class TestServiceCLI:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8753
        assert args.workers == 2
        assert args.journal == ""
        assert args.executor == "process"

    def test_submit_parser(self):
        args = build_parser().parse_args(
            ["submit", "figure5", "--benchmarks", "compress",
             "--scale", "0.1", "--levels", "basic_block", "--wait",
             "--param", "engine=\"fast\""]
        )
        assert args.grid == "figure5"
        assert args.benchmarks == "compress"
        assert args.scale == 0.1
        assert args.wait
        assert args.param == ['engine="fast"']

    def test_jobs_and_fetch_parsers(self):
        args = build_parser().parse_args(["jobs", "--watch"])
        assert args.watch
        assert args.url == "http://127.0.0.1:8753"
        args = build_parser().parse_args(["fetch", "abc123"])
        assert args.spec_hash == "abc123"

    def test_cache_prune_parser(self):
        args = build_parser().parse_args(
            ["cache", "prune", "--max-bytes", "1024"]
        )
        assert args.action == "prune"
        assert args.max_bytes == 1024

    def test_cache_prune_requires_max_bytes(self):
        with pytest.raises(SystemExit, match="max-bytes"):
            main(["cache", "prune"])

    def test_cache_prune_rejects_negative(self):
        with pytest.raises(SystemExit, match="max-bytes"):
            main(["cache", "prune", "--max-bytes", "-5"])

    def test_cache_prune_evicts(self, capsys, tmp_path):
        assert main(
            ["figure5", "--benchmarks", "compress", "--scale", "0.1",
             "--jobs", "1"]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "prune", "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out and "kept" in out
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "records    : 0" in out

    def test_list_json(self, capsys):
        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {bm["name"] for bm in payload["benchmarks"]}
        assert "compress" in names and "tomcatv" in names
        sample = payload["benchmarks"][0]
        for key in ("suite", "functions", "blocks", "instructions",
                    "description"):
            assert key in sample

    def test_list_json_synth(self, capsys):
        assert main(["list", "--synth", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {p["name"] for p in payload["presets"]}
        assert "default" in names
        sample = payload["presets"][0]
        assert "region_weights" in sample

    def test_submit_unreachable_service_exits(self):
        with pytest.raises(SystemExit, match="repro submit"):
            main(["submit", "figure5", "--url", "http://127.0.0.1:9"])

    def test_jobs_unreachable_service_exits(self):
        with pytest.raises(SystemExit, match="repro jobs"):
            main(["jobs", "--url", "http://127.0.0.1:9"])

    def test_submit_and_fetch_against_live_service(self, capsys,
                                                   tmp_path):
        from repro.harness.cache import ArtifactCache
        from repro.service import CampaignService

        service = CampaignService(
            cache=ArtifactCache(root=tmp_path / "cache"),
            journal_root=tmp_path / "svc",
            port=0, workers=2, executor="thread",
        )
        with service:
            url = service.base_url
            assert main(
                ["submit", "figure5", "--url", url,
                 "--benchmarks", "compress", "--scale", "0.05",
                 "--levels", "basic_block", "--wait"]
            ) == 0
            out = capsys.readouterr().out
            assert "done" in out
            assert "Figure 5" in out
            assert main(["jobs", "--url", url, "--watch"]) == 0
            out = capsys.readouterr().out
            assert "figure5-" in out and "done" in out
            # fetch one record by the hash the ledger reports
            from repro.service.client import ServiceClient

            client = ServiceClient(url)
            job_id = client.jobs()[0]["job_id"]
            spec_hash = client.ledger_lines(job_id)[0]["spec_hash"]
            assert main(["fetch", spec_hash, "--url", url]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["record"]["benchmark"] == "compress"
