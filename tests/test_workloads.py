"""Tests of the synthetic SPEC95 workload suite."""

import pytest

from repro.ir.interp import run_program
from repro.workloads import (
    all_benchmarks,
    fp_benchmarks,
    get_benchmark,
    integer_benchmarks,
)
from repro.workloads.kernels import host_lcg

SMALL = 0.1  # scale used to keep per-test runtime low

ALL_NAMES = [bm.name for bm in all_benchmarks()]


class TestRegistry:
    def test_eighteen_benchmarks(self):
        assert len(all_benchmarks()) == 18
        assert len(integer_benchmarks()) == 8
        assert len(fp_benchmarks()) == 10

    def test_suites_disjoint_and_labelled(self):
        ints = {bm.name for bm in integer_benchmarks()}
        fps = {bm.name for bm in fp_benchmarks()}
        assert not (ints & fps)
        assert all(bm.suite == "int" for bm in integer_benchmarks())
        assert all(bm.suite == "fp" for bm in fp_benchmarks())

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known:"):
            get_benchmark("gcc")  # registered as "cc"

    def test_descriptions_non_empty(self):
        assert all(bm.description for bm in all_benchmarks())


class TestPrograms:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_builds_validates_and_runs(self, name):
        program = get_benchmark(name).build(SMALL)
        program.validate()
        trace = run_program(program, max_instructions=500_000)
        assert len(trace) > 100

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_deterministic(self, name):
        t1 = run_program(get_benchmark(name).build(SMALL))
        t2 = run_program(get_benchmark(name).build(SMALL))
        assert len(t1) == len(t2)
        assert [d.pc for d in t1[:500]] == [d.pc for d in t2[:500]]

    @pytest.mark.parametrize("name", ["compress", "tomcatv", "go"])
    def test_scale_grows_work(self, name):
        small = run_program(get_benchmark(name).build(0.2))
        large = run_program(get_benchmark(name).build(1.0))
        assert len(large) > len(small)

    def test_fp_suite_actually_uses_fp(self):
        for bm in fp_benchmarks():
            trace = run_program(bm.build(SMALL))
            assert any(d.op.op_class.value == "fp" for d in trace), bm.name

    def test_int_suite_mostly_integer(self):
        for bm in integer_benchmarks():
            trace = run_program(bm.build(SMALL))
            fp = sum(1 for d in trace if d.op.op_class.value == "fp")
            assert fp / len(trace) < 0.05, bm.name


class TestShapes:
    """The suite-level task-shape contrasts Table 1 relies on."""

    def test_li_has_frequent_calls(self):
        trace = run_program(get_benchmark("li").build(SMALL))
        calls = sum(1 for d in trace if d.op.value == "call")
        assert calls / len(trace) > 0.01

    def test_fpppp_has_giant_blocks(self):
        program = get_benchmark("fpppp").build(SMALL)
        biggest = max(
            blk.size for fn in program.functions() for blk in fn.blocks()
        )
        assert biggest > 150

    def test_go_branches_are_hard(self):
        from repro.predict import GsharePredictor

        trace = run_program(get_benchmark("go").build(0.3))
        g = GsharePredictor()
        for d in trace:
            if d.op.is_branch:
                g.update(d.pc, d.taken)
        assert g.accuracy < 0.93  # irregular control flow

    def test_tomcatv_branches_are_easy(self):
        from repro.predict import GsharePredictor

        trace = run_program(get_benchmark("tomcatv").build(0.3))
        g = GsharePredictor()
        for d in trace:
            if d.op.is_branch:
                g.update(d.pc, d.taken)
        assert g.accuracy > 0.93  # loop-dominated control flow


class TestHostLcg:
    def test_reproducible(self):
        a, b = host_lcg(42), host_lcg(42)
        assert [a() for _ in range(10)] == [b() for _ in range(10)]

    def test_stays_in_31_bits(self):
        rng = host_lcg(7)
        assert all(0 <= rng() < 2**31 for _ in range(100))
