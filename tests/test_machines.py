"""The machine-description subsystem: specs, registry, bit-identity.

The subsystem's load-bearing contract is that a machine whose PU
profiles inherit everything is **bit-identical** to the legacy
homogeneous configuration on every engine — the presets merely name
points in config space, they don't fork the simulator.  These tests
pin that, plus:

* spec identity: ``machine_hash`` stability, ``as_dict``/``from_dict``
  round-trips, registry resolution idempotence;
* validation lint: every rule in :func:`validate_machine` fires with
  an actionable message, at registry load shape and on hand-built
  specs;
* the predictor axis: ``path`` decodes to the paper's PathPredictor
  object (the byte-identity anchor), gshare/hybrid learn;
* heterogeneous presets actually differentiate (cycles move) and the
  per-PU utilization telemetry is engine-identical.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.compiler import HeuristicLevel
from repro.experiments.runner import run_benchmark
from repro.machines import (
    MACHINE_PRESETS,
    MachineSpec,
    MachineSpecError,
    PUProfile,
    get_machine,
    homogeneous,
    machine_names,
    resolve_machine,
    validate_machine,
    with_predictor,
)
from repro.predict import PathPredictor
from repro.predict.taskpred import (
    GshareTaskPredictor,
    HybridTaskPredictor,
    make_task_predictor,
)
from repro.sim import SimConfig

ENGINES = ("fast", "batched", "reference")

#: benchmarks for the homogeneous bit-identity sweep (two int, two fp)
IDENTITY_BENCHMARKS = ("compress", "m88ksim", "tomcatv", "swim")

LEVELS = tuple(HeuristicLevel)


def record_identity(record):
    """Everything a RunRecord observably is (cycles + breakdown +
    task shape + telemetry)."""
    return (
        record.cycles,
        record.instructions,
        record.dynamic_tasks,
        record.control_squashes,
        record.memory_squashes,
        repr(record.breakdown),
        record.metrics,
    )


# ---------------------------------------------------------------------------
# homogeneous bit-identity: machine presets vs the legacy config


@pytest.mark.parametrize("bench", IDENTITY_BENCHMARKS)
def test_paper_machine_bit_identical_to_legacy(bench):
    """paper-4x2 through every engine == the pre-machine SimConfig."""
    for level in LEVELS:
        legacy = {}
        for engine in ENGINES:
            rec = run_benchmark(
                bench, level, n_pus=4, scale=0.2,
                sim=SimConfig(engine=engine),
            )
            legacy[engine] = record_identity(rec)
        # engines agree with each other (the repo invariant)...
        assert legacy["fast"] == legacy["batched"] == legacy["reference"]
        for engine in ENGINES:
            rec = run_benchmark(
                bench, level, n_pus=4, scale=0.2,
                sim=SimConfig(engine=engine, machine="paper-4x2"),
            )
            # ...and the named machine changes nothing at all
            assert record_identity(rec) == legacy[engine], (
                f"{bench}/{level.value}@{engine}: paper-4x2 "
                f"diverged from the legacy configuration"
            )


def test_paper_8x2_matches_legacy_8pu():
    """An 8-PU homogeneous preset == scaled legacy config, all engines."""
    for engine in ENGINES:
        legacy = run_benchmark(
            "compress", HeuristicLevel.TASK_SIZE, n_pus=8, scale=0.2,
            sim=SimConfig(engine=engine).scaled_for_pus(8),
        )
        named = run_benchmark(
            "compress", HeuristicLevel.TASK_SIZE, n_pus=8, scale=0.2,
            sim=SimConfig(engine=engine, machine="paper-8x2"),
        )
        assert record_identity(named) == record_identity(legacy)


def test_heterogeneous_presets_differentiate():
    """Non-paper presets must actually move cycles (not silently
    alias the default timing)."""
    base = run_benchmark(
        "compress", HeuristicLevel.TASK_SIZE, scale=0.2,
        sim=SimConfig(machine="paper-4x2"),
    ).cycles
    seen = {
        name: run_benchmark(
            "compress", HeuristicLevel.TASK_SIZE, scale=0.2,
            sim=SimConfig(machine=name),
        ).cycles
        for name in ("paper-8x1", "big-little-8", "hetero-16")
    }
    for name, cycles in seen.items():
        assert cycles != base, f"{name} did not change the timing"
    # distinct shapes land on distinct cycle counts
    assert len(set(seen.values())) == len(seen)


def test_heterogeneous_machine_engine_identical():
    """Profiles/predictors propagate identically into all engines."""
    for machine in ("big-little-8", "hetero-16"):
        identities = {
            engine: record_identity(run_benchmark(
                "compress", HeuristicLevel.DATA_DEPENDENCE, scale=0.2,
                sim=SimConfig(engine=engine, machine=machine),
            ))
            for engine in ENGINES
        }
        assert (identities["fast"] == identities["batched"]
                == identities["reference"]), machine


def test_per_pu_telemetry_shape():
    """metrics['pu'] carries one useful/occupied pair per PU."""
    rec = run_benchmark(
        "compress", HeuristicLevel.TASK_SIZE, scale=0.2,
        sim=SimConfig(machine="big-little-8"),
    )
    pu = rec.metrics["pu"]
    assert len(pu["useful"]) == len(pu["occupied"]) == 8
    assert sum(pu["useful"]) > 0
    for useful, occupied in zip(pu["useful"], pu["occupied"]):
        assert 0 <= useful <= occupied


# ---------------------------------------------------------------------------
# spec identity


def test_machine_hash_stability():
    """Hashes are content hashes: stable across processes/releases."""
    assert get_machine("paper-4x2").machine_hash() == "319d8d434f2883d7"
    assert get_machine("big-little-8").machine_hash() == "57a7018deac1dbdf"
    assert get_machine("manycore-32").machine_hash() == "7b70b9311f5e810f"


def test_machine_hash_tracks_content():
    spec = get_machine("paper-4x2")
    assert (with_predictor(spec, "gshare").machine_hash()
            != spec.machine_hash())
    assert (dataclasses.replace(spec, ring_bandwidth=2).machine_hash()
            != spec.machine_hash())


@pytest.mark.parametrize("name", sorted(MACHINE_PRESETS))
def test_round_trip(name):
    spec = get_machine(name)
    clone = MachineSpec.from_dict(spec.as_dict())
    assert clone == spec
    assert clone.machine_hash() == spec.machine_hash()


def test_registry_resolution():
    assert machine_names() == list(MACHINE_PRESETS)
    spec = get_machine("hetero-16")
    assert resolve_machine("hetero-16") is spec
    assert resolve_machine(spec) is spec
    with pytest.raises(ValueError, match="unknown machine preset"):
        get_machine("paper-9000")
    with pytest.raises(TypeError, match="preset name or MachineSpec"):
        resolve_machine(42)


def test_simconfig_resolves_names_and_specs():
    by_name = SimConfig(machine="big-little-8")
    by_spec = SimConfig(machine=get_machine("big-little-8"))
    assert by_name.machine == by_spec.machine
    assert by_name.n_pus == 8
    # machine is authoritative over the scalar topology fields it sets
    assert by_name.machine.machine_hash() == "57a7018deac1dbdf"


# ---------------------------------------------------------------------------
# validation lint


def _machine(**overrides):
    base = dict(name="t", pus=(PUProfile(),) * 4)
    base.update(overrides)
    return MachineSpec(**base)


@pytest.mark.parametrize("spec,needle", [
    (_machine(pus=(PUProfile(),) * 3), "not a power of two"),
    (_machine(pus=()), "at least one PU"),
    (_machine(ring_bandwidth=0), "ring_bandwidth must be >= 1"),
    (_machine(ring_hop_latency=-1), "ring_hop_latency must be >= 0"),
    (_machine(arb_latency=0), "arb_latency must be >= 1"),
    (_machine(predictor="oracle"), "unknown predictor"),
    (_machine(schema_version=99), "schema_version"),
    (_machine(name=""), "non-empty name"),
    (_machine(pus=(PUProfile(issue_width=0),) * 4),
     "issue_width must be >= 1"),
    (_machine(pus=(PUProfile(int_units=0),) * 4),
     "at least one unit of each class"),
    (_machine(pus=(PUProfile(lat_extra=(1, 2)),) * 4),
     "lat_extra needs 4 entries"),
    (_machine(pus=(PUProfile(lat_extra=(0, 0, 0, -1)),) * 4),
     "non-negative int"),
])
def test_validation_lint(spec, needle):
    with pytest.raises(MachineSpecError, match=needle):
        validate_machine(spec)


def test_simconfig_lints_machines_at_construction():
    bad = _machine(pus=(PUProfile(),) * 3)
    with pytest.raises(MachineSpecError, match="not a power of two"):
        SimConfig(machine=bad)


def test_all_presets_pass_lint():
    for spec in MACHINE_PRESETS.values():
        validate_machine(spec)  # raises on failure


def test_homogeneous_helper_scales_topology():
    spec = homogeneous("t-64", 64)
    assert spec.n_pus == 64
    assert spec.ring_hop_latency == 3
    assert spec.arb_entries_per_pu == 16


# ---------------------------------------------------------------------------
# predictor axis


def test_path_predictor_is_the_paper_object():
    """The default kind is the *same class* the paper results use —
    not a wrapper — so its byte streams cannot drift."""
    pred = make_task_predictor("path")
    assert type(pred) is PathPredictor


def test_unknown_predictor_kind_rejected():
    with pytest.raises(ValueError, match="unknown task predictor"):
        make_task_predictor("oracle")


def test_gshare_learns_a_pattern():
    pred = make_task_predictor("gshare")
    assert isinstance(pred, GshareTaskPredictor)
    # the outcome-fed history saturates after history_bits/target_bits
    # updates; past that the index is stable and the entry trains
    for _ in range(12):
        pred.update(0x40, 2)
    assert pred.predict(0x40) == 2
    assert 0.0 < pred.accuracy <= 1.0


def test_gshare_history_is_outcome_fed():
    a, b = GshareTaskPredictor(), GshareTaskPredictor()
    a.update(0x40, 1)
    b.update(0x40, 3)
    # different outcomes => different histories => different indices
    assert a.history != b.history


def test_hybrid_prefers_the_better_component():
    pred = make_task_predictor("hybrid")
    assert isinstance(pred, HybridTaskPredictor)
    for _ in range(16):
        pred.update(0x80, 1)
    assert pred.predict(0x80) == 1
    # both components trained in lockstep
    assert pred.path.predictions == pred.gshare.predictions == 16


def test_with_predictor_rejects_unknown():
    with pytest.raises(MachineSpecError, match="unknown predictor"):
        with_predictor(get_machine("paper-4x2"), "oracle")


def test_predictor_axis_changes_results_deterministically():
    base = run_benchmark(
        "compress", HeuristicLevel.TASK_SIZE, scale=0.2,
        sim=SimConfig(machine="paper-4x2"),
    )
    runs = [
        run_benchmark(
            "compress", HeuristicLevel.TASK_SIZE, scale=0.2,
            sim=SimConfig(
                machine=with_predictor(get_machine("paper-4x2"), "gshare")
            ),
        )
        for _ in range(2)
    ]
    assert record_identity(runs[0]) == record_identity(runs[1])
    # trained differently => different mispredictions than path
    assert runs[0].cycles != 0 and base.cycles != 0
