"""Unit tests for dynamic task stream construction."""

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.compiler.task import TargetKind, TaskPartition, Target
from repro.ir.interp import run_program
from repro.sim.taskstream import TaskStreamError, build_task_stream
from tests.conftest import build_call_program, build_diamond_loop

ALL_LEVELS = list(HeuristicLevel)


def compile_and_stream(program, level):
    part = select_tasks(program, SelectionConfig(level=level))
    trace = run_program(part.program)
    return trace, part, build_task_stream(trace, part)


class TestSpans:
    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_spans_cover_trace_exactly(self, level):
        trace, _part, stream = compile_and_stream(build_diamond_loop(), level)
        assert stream.tasks[0].start == 0
        assert stream.tasks[-1].end == len(trace)
        for prev, cur in zip(stream.tasks, stream.tasks[1:]):
            assert prev.end == cur.start
            assert cur.seq == prev.seq + 1

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_every_instance_starts_at_its_root(self, level):
        trace, _part, stream = compile_and_stream(build_diamond_loop(), level)
        for dyn in stream:
            first = trace[dyn.start]
            assert first.block == dyn.task.root
            assert first.iidx == 0

    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_targets_resolved(self, level):
        _trace, _part, stream = compile_and_stream(build_diamond_loop(), level)
        for dyn in stream.tasks[:-1]:
            assert dyn.target is not None
            assert dyn.target_index >= 0
            assert dyn.task.targets[dyn.target_index] == dyn.target
        final = stream.tasks[-1]
        assert final.target == Target(TargetKind.HALT)
        assert final.next_root is None

    def test_next_root_matches_following_task(self):
        _trace, _part, stream = compile_and_stream(
            build_diamond_loop(), HeuristicLevel.CONTROL_FLOW
        )
        for prev, cur in zip(stream.tasks, stream.tasks[1:]):
            assert prev.next_root == cur.task.root

    def test_mean_sizes(self):
        trace, _part, stream = compile_and_stream(
            build_diamond_loop(), HeuristicLevel.CONTROL_FLOW
        )
        assert stream.mean_task_size == pytest.approx(
            len(trace) / len(stream)
        )
        assert stream.mean_control_transfers() > 0
        assert stream.mean_conditional_branches() > 0


class TestCalls:
    def test_call_and_return_boundaries(self):
        trace, _part, stream = compile_and_stream(
            build_call_program("small"), HeuristicLevel.CONTROL_FLOW
        )
        kinds = [d.target.kind for d in stream.tasks[:-1]]
        assert TargetKind.CALL in kinds
        assert TargetKind.RETURN in kinds
        assert not any(stream.absorbed_flags)

    def test_absorbed_call_stays_in_one_task(self):
        trace, part, stream = compile_and_stream(
            build_call_program("small"), HeuristicLevel.TASK_SIZE
        )
        # No CALL/RETURN boundaries remain: the helper is absorbed.
        kinds = {d.target.kind for d in stream.tasks[:-1]}
        assert TargetKind.CALL not in kinds
        assert TargetKind.RETURN not in kinds
        # Helper instructions are flagged as absorbed.
        assert any(stream.absorbed_flags)
        flagged = [trace[i] for i, f in enumerate(stream.absorbed_flags) if f]
        assert all(d.block[0] == "helper" for d in flagged)

    def test_fewer_tasks_with_absorption(self):
        _t1, _p1, cf = compile_and_stream(
            build_call_program("small"), HeuristicLevel.CONTROL_FLOW
        )
        _t2, _p2, ts = compile_and_stream(
            build_call_program("small"), HeuristicLevel.TASK_SIZE
        )
        assert len(ts) < len(cf)


class TestErrors:
    def test_missing_root_raises(self):
        prog = build_diamond_loop()
        trace = run_program(prog)
        empty = TaskPartition(prog)
        with pytest.raises(TaskStreamError, match="no task rooted"):
            build_task_stream(trace, empty)
