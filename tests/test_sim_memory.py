"""Unit tests for the cache hierarchy and cycle accounting."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.breakdown import CycleBreakdown, StallReason
from repro.sim.config import CacheConfig, SimConfig
from repro.sim.memory import Cache, MemoryHierarchy


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(CacheConfig(1024, 2, 32, 1))
        assert not cache.access(5)
        assert cache.access(5)
        assert cache.misses == 1 and cache.hits == 1

    def test_lru_eviction(self):
        # One set (sets=1): capacity = associativity = 2 lines.
        cache = Cache(CacheConfig(64, 2, 32, 1))
        assert cache.config.sets == 1
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 1 becomes MRU
        cache.access(3)  # evicts 2
        assert cache.access(1)
        assert not cache.access(2)

    def test_set_indexing_avoids_conflicts(self):
        cache = Cache(CacheConfig(1024, 1, 32, 1))
        sets = cache.config.sets
        cache.access(0)
        cache.access(1)  # different set: no conflict
        assert cache.access(0)
        cache.access(sets)  # same set as 0 with assoc 1: evicts
        assert not cache.access(0)

    @given(st.lists(st.integers(0, 500), max_size=300))
    def test_stats_consistency(self, addresses):
        cache = Cache(CacheConfig(512, 2, 32, 1))
        for addr in addresses:
            cache.access(addr)
        assert cache.hits + cache.misses == len(addresses)
        assert 0.0 <= cache.miss_rate <= 1.0


class TestHierarchy:
    def test_latency_levels(self):
        config = SimConfig()
        hier = MemoryHierarchy(config)
        first = hier.data_access(0)
        # Cold: L1 miss + L2 miss -> memory.
        assert first == (
            config.l1d.hit_latency + config.l2.hit_latency +
            config.memory_latency
        )
        again = hier.data_access(0)
        assert again == config.l1d.hit_latency

    def test_l2_hit_after_l1_eviction(self):
        config = SimConfig()
        hier = MemoryHierarchy(config)
        hier.data_access(0)
        # Walk far past L1 capacity within L2 capacity.
        words_per_line = config.l1d.line_bytes // config.word_bytes
        for i in range(1, 4 * config.l1d.size_bytes // config.word_bytes,
                       words_per_line):
            hier.data_access(i)
        latency = hier.data_access(0)
        assert latency == config.l1d.hit_latency + config.l2.hit_latency

    def test_same_line_words_share_one_line(self):
        config = SimConfig()
        hier = MemoryHierarchy(config)
        hier.data_access(0)
        assert hier.data_access(1) == config.l1d.hit_latency

    def test_icache_separate_from_dcache(self):
        hier = MemoryHierarchy(SimConfig())
        hier.data_access(0)
        assert hier.inst_access(0) > hier.config.l1i.hit_latency  # cold I side

    def test_stats_keys(self):
        hier = MemoryHierarchy(SimConfig())
        hier.data_access(0)
        hier.inst_access(0)
        stats = hier.stats()
        assert stats["l1d_accesses"] == 1
        assert stats["l1i_accesses"] == 1
        assert stats["l2_accesses"] == 2


class TestBreakdown:
    def test_charge_and_total(self):
        bd = CycleBreakdown()
        bd.charge(StallReason.USEFUL, 10)
        bd.charge(StallReason.IDLE)
        bd.charge_control_squash(5)
        bd.charge_memory_squash(3)
        assert bd.total_pu_cycles == 19
        flat = bd.as_dict()
        assert flat["useful"] == 10
        assert flat["control_misspeculation"] == 5

    def test_merged(self):
        a, b = CycleBreakdown(), CycleBreakdown()
        a.charge(StallReason.USEFUL, 1)
        b.charge(StallReason.USEFUL, 2)
        b.charge_memory_squash(4)
        merged = a.merged(b)
        assert merged.per_reason[StallReason.USEFUL] == 3
        assert merged.memory_misspeculation == 4
        # Originals untouched.
        assert a.per_reason[StallReason.USEFUL] == 1
