"""Concurrent ledger appends: no interleaved partial JSON lines.

The campaign service points several shard workers at one per-job
ledger file.  Appends are single ``os.write`` calls on an
``O_APPEND`` descriptor, which POSIX guarantees are atomic with
respect to other appenders — lines may reorder across writers, but
they can never splice into each other.  The readers (schema 2 and 3
tolerant) skip a torn tail rather than failing the whole file.
"""

from __future__ import annotations

import json
import multiprocessing
import os

from repro.harness.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    RunLedger,
    append_jsonl_line,
    completed_spec_hashes,
    read_ledger,
)

LINES_PER_WRITER = 200


def _entry(spec_hash: str, cache: str = "miss") -> LedgerEntry:
    return LedgerEntry(
        spec_hash=spec_hash, job=f"job-{spec_hash}", benchmark="bench",
        level="basic_block", n_pus=4, out_of_order=True, cache=cache,
        retries=0, outcome="ok", wall_seconds=0.01,
    )


def _writer(path: str, writer_id: int, n: int) -> None:
    for i in range(n):
        append_jsonl_line(path, {
            "writer": writer_id,
            "i": i,
            # bulk the payload so a torn write would be conspicuous
            "pad": "x" * 100,
        })


def test_two_process_writers_never_interleave(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ctx = multiprocessing.get_context("spawn")
    procs = [
        ctx.Process(target=_writer, args=(str(path), wid,
                                          LINES_PER_WRITER))
        for wid in (1, 2)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(60)
        assert proc.exitcode == 0
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2 * LINES_PER_WRITER
    seen = {1: [], 2: []}
    for line in lines:
        entry = json.loads(line)  # every line parses — no splicing
        assert entry["pad"] == "x" * 100
        seen[entry["writer"]].append(entry["i"])
    # each writer's own lines appear in its program order
    assert seen[1] == list(range(LINES_PER_WRITER))
    assert seen[2] == list(range(LINES_PER_WRITER))


def test_two_ledger_objects_share_one_file(tmp_path):
    """Two RunLedger handles on one path (the service's shard
    workers) both append; the merged file stays fully parseable."""
    path = tmp_path / "ledger.jsonl"
    a = RunLedger(path, progress=None)
    b = RunLedger(path, progress=None)
    for i in range(5):
        a.record(_entry(f"spec-a{i}"))
        b.record(_entry(f"spec-b{i}"))
    entries = read_ledger(path)
    assert len(entries) == 10
    assert completed_spec_hashes(path) == {
        f"spec-{w}{i}" for w in "ab" for i in range(5)
    }
    assert all(
        e["schema_version"] == LEDGER_SCHEMA_VERSION for e in entries
    )


def test_torn_tail_is_skipped_not_fatal(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path, progress=None)
    ledger.record(_entry("spec-1"))
    ledger.record(_entry("spec-2", cache="hit"))
    # simulate a crash mid-append: a final line with no newline and
    # truncated JSON
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(
            '{"schema_version": 3, "outcome": "ok", "spec_hash": "sp'
        )
    entries = read_ledger(path)
    assert [e["spec_hash"] for e in entries] == ["spec-1", "spec-2"]
    assert completed_spec_hashes(path) == {"spec-1", "spec-2"}


def test_schema2_lines_still_read(tmp_path):
    """Readers tolerate entries written by the previous schema
    (no seq field) mixed into the same file."""
    path = tmp_path / "ledger.jsonl"
    append_jsonl_line(path, {
        "schema_version": 2, "outcome": "ok", "spec_hash": "old-spec",
        "job": "bench/basic_block@4pu-ooo", "cache": "miss",
    })
    ledger = RunLedger(path, progress=None)
    ledger.record(_entry("new-spec"))
    hashes = completed_spec_hashes(path)
    assert hashes == {"old-spec", "new-spec"}


def test_append_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "ledger.jsonl"
    append_jsonl_line(path, {"hello": 1})
    assert json.loads(path.read_text())["hello"] == 1


def test_append_is_single_write(tmp_path, monkeypatch):
    """The concurrency guarantee rests on one os.write per line."""
    calls = []
    real_write = os.write

    def counting_write(fd, data):
        calls.append(data)
        return real_write(fd, data)

    monkeypatch.setattr(os, "write", counting_write)
    append_jsonl_line(tmp_path / "l.jsonl", {"k": "v"})
    assert len(calls) == 1
    assert calls[0].endswith(b"\n")
