"""Unit tests for the IR builder."""

import pytest

from repro.ir import IRBuilder
from repro.ir.instructions import Opcode


class TestScopes:
    def test_function_creates_entry_block(self):
        b = IRBuilder()
        with b.function("main"):
            b.halt()
        prog = b.build()
        assert prog.main.entry_label == "entry"

    def test_emit_outside_block_fails(self):
        b = IRBuilder()
        with pytest.raises(ValueError, match="no block"):
            b.li("r1", 0)

    def test_emit_after_terminator_fails(self):
        b = IRBuilder()
        with b.function("main"):
            b.halt()
            with pytest.raises(ValueError, match="no block"):
                b.li("r1", 0)

    def test_new_labels_are_unique(self):
        b = IRBuilder()
        labels = {b.new_label("x") for _ in range(100)}
        assert len(labels) == 100


class TestFallthrough:
    def test_unterminated_block_falls_into_next(self):
        b = IRBuilder()
        with b.function("main"):
            b.li("r1", 1)
            nxt = b.new_label("next")
            with b.block(nxt):
                b.halt()
        prog = b.build()
        assert prog.main.entry.fallthrough == nxt

    def test_branch_block_falls_into_next_when_unset(self):
        b = IRBuilder()
        with b.function("main"):
            target = b.new_label("target")
            b.beqz("r1", target)
            ft = b.new_label("ft")
            with b.block(ft):
                b.jump(target)
            with b.block(target):
                b.halt()
        prog = b.build()
        assert prog.main.entry.fallthrough == ft

    def test_explicit_fallthrough_wins(self):
        b = IRBuilder()
        with b.function("main"):
            t = b.new_label("t")
            other = b.new_label("other")
            b.beqz("r1", t, fallthrough=other)
            mid = b.new_label("mid")
            with b.block(mid):
                b.jump(other)
            with b.block(other):
                b.halt()
            with b.block(t):
                b.halt()
        prog = b.build()
        assert prog.main.entry.fallthrough == other

    def test_dangling_fallthrough_at_function_end_fails(self):
        b = IRBuilder()
        with pytest.raises(ValueError, match="falls off"):
            with b.function("main"):
                b.beqz("r1", "nowhere")


class TestEmitters:
    def test_alu_helpers_emit_expected_opcodes(self):
        b = IRBuilder()
        with b.function("main"):
            assert b.add("r1", "r2", "r3").opcode is Opcode.ADD
            assert b.subi("r1", "r2", 4).opcode is Opcode.SUB
            assert b.muli("r1", "r2", 4).imm == 4
            assert b.slt("r1", "r2", "r3").opcode is Opcode.SLT
            assert b.fadd("f1", "f2", "f3").opcode is Opcode.FADD
            assert b.cvtfi("r1", "f1").opcode is Opcode.CVTFI
            b.halt()
        b.build()

    def test_memory_helpers(self):
        b = IRBuilder()
        with b.function("main"):
            load = b.load("r1", "r2", 8)
            store = b.store("r1", "r2", -4)
            b.halt()
        assert load.srcs == ("r2",) and load.imm == 8
        assert store.srcs == ("r1", "r2") and store.imm == -4

    def test_call_records_target(self):
        b = IRBuilder()
        with b.function("helper"):
            b.ret()
        with b.function("main"):
            cont = b.new_label("cont")
            call = b.call("helper", fallthrough=cont)
            with b.block(cont):
                b.halt()
        assert call.target == "helper"
        b.build()

    def test_build_validates_by_default(self):
        b = IRBuilder()
        with b.function("main"):
            b.jump("ghost")
        with pytest.raises(ValueError):
            b.build()

    def test_build_can_skip_validation(self):
        b = IRBuilder()
        with b.function("main"):
            b.jump("ghost")
        prog = b.build(validate=False)
        assert prog.main.entry.terminator.target == "ghost"
