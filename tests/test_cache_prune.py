"""LRU cache pruning (``repro cache prune --max-bytes N``)."""

from __future__ import annotations

import os
import time

import pytest

from repro.compiler import HeuristicLevel
from repro.harness.cache import ArtifactCache
from repro.harness.scheduler import run_specs
from repro.harness.spec import RunSpec


def _age(path, seconds):
    """Backdate a file's mtime (prune orders by it)."""
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


def _fill(cache, n=4):
    """n record files of known content + ages (oldest first)."""
    paths = []
    for i in range(n):
        path = cache.records_dir / f"{'%08x' % i}{'0' * 56}.pkl"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"x" * 100)
        _age(path, (n - i) * 3600)
        paths.append(path)
    return paths


def test_prune_removes_oldest_first(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    paths = _fill(cache, 4)
    report = cache.prune(max_bytes=250)
    assert report["removed"] == 2
    assert report["freed_bytes"] == 200
    assert report["kept"] == 2
    assert report["kept_bytes"] == 200
    # the two oldest are gone, the two newest survive
    assert not paths[0].exists() and not paths[1].exists()
    assert paths[2].exists() and paths[3].exists()


def test_prune_zero_evicts_everything(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    _fill(cache, 3)
    report = cache.prune(max_bytes=0)
    assert report["removed"] == 3
    assert report["kept"] == 0
    assert cache.stats()["records"] == 0


def test_prune_noop_under_limit(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    _fill(cache, 2)
    report = cache.prune(max_bytes=10_000)
    assert report["removed"] == 0
    assert report["kept"] == 2


def test_prune_rejects_negative_limit(tmp_path):
    with pytest.raises(ValueError):
        ArtifactCache(root=tmp_path).prune(max_bytes=-1)


def test_prune_spares_quarantine_and_ledger(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    _fill(cache, 2)
    quarantined = cache.quarantine_dir / "bad.pkl"
    quarantined.parent.mkdir(parents=True, exist_ok=True)
    quarantined.write_bytes(b"q" * 500)
    _age(quarantined, 10 * 3600)
    cache.ledger_path.write_text('{"seq": 0}\n')
    _age(cache.ledger_path, 10 * 3600)
    cache.prune(max_bytes=0)
    # everything prunable is gone; quarantine + ledger are untouched
    assert cache.stats()["records"] == 0
    assert quarantined.exists()
    assert cache.ledger_path.exists()


def test_read_touches_mtime_so_hot_entries_survive(tmp_path):
    """A cache hit refreshes the artifact's mtime, so prune evicts by
    least-recent *use*, not least-recent write."""
    cache = ArtifactCache(root=tmp_path)
    spec_old = RunSpec(benchmark="compress",
                       level=HeuristicLevel.BASIC_BLOCK,
                       n_pus=4, out_of_order=True, scale=0.05)
    spec_new = RunSpec(benchmark="compress",
                       level=HeuristicLevel.BASIC_BLOCK,
                       n_pus=8, out_of_order=True, scale=0.05)
    run_specs([spec_old, spec_new], jobs=1, cache=cache)
    old_path = cache.records_dir / f"{spec_old.spec_hash(cache.salt)}.pkl"
    new_path = cache.records_dir / f"{spec_new.spec_hash(cache.salt)}.pkl"
    # make spec_old the stale one...
    _age(old_path, 10 * 3600)
    _age(new_path, 5 * 3600)
    # ...then *use* it: the hit touches its mtime
    assert cache.get_record(spec_old) is not None
    size = max(old_path.stat().st_size, new_path.stat().st_size)
    kept_budget = old_path.stat().st_size + size  # roomy enough for 1
    report = cache.prune(max_bytes=old_path.stat().st_size)
    assert report["removed"] >= 1
    assert old_path.exists()      # recently used: survives
    assert not new_path.exists()  # least recently used: evicted
    del kept_budget


def test_stats_reports_split_byte_counts(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    _fill(cache, 2)
    stats = cache.stats()
    assert stats["records_bytes"] == 200
    assert stats["records"] == 2
    assert stats["compiled_bytes"] == 0
    assert stats["bytes"] >= stats["records_bytes"]


def test_get_record_by_hash(tmp_path):
    cache = ArtifactCache(root=tmp_path)
    spec = RunSpec(benchmark="compress",
                   level=HeuristicLevel.BASIC_BLOCK,
                   n_pus=4, out_of_order=True, scale=0.05)
    [record] = run_specs([spec], jobs=1, cache=cache)
    spec_hash = spec.spec_hash(cache.salt)
    fetched = cache.get_record_by_hash(spec_hash)
    assert fetched is not None
    assert fetched.cycles == record.cycles
    assert cache.get_record_by_hash("0" * 64) is None
    # traversal and junk are rejected, not turned into paths
    assert cache.get_record_by_hash("../../etc/passwd") is None
    assert cache.get_record_by_hash("UPPER") is None
    assert cache.get_record_by_hash("") is None
