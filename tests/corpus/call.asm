; corpus: call — a call with its continuation block
; minimized from synth:calls:1 (16 -> 4 blocks, 161 -> 4 instructions)
.main main
.func fn4
entry:
    ret
.func main
entry:
    call    @fn4, @cont_4
cont_4:
    call    @fn4, @exit_10
exit_10:
    halt

