; corpus: xor — an xor (the planted-fault trigger opcode family)
; minimized from synth:default:0 (23 -> 3 blocks, 142 -> 11 instructions)
.main main
.func main
entry:
    li      r16, #3
    li      r13, #4
    fallthrough @loop_11
loop_11:
    sub     r25, r16, #0
    load    r20, [r0 + 260]
    sle     r14, r20, r13
    and     r12, r13, r14
    and     r22, r25, r25
    or      r19, r22, r12
    sle     r11, r19, r14
    xor     r14, r11, r12
    fallthrough @cont_19
cont_19:
    halt

