; corpus: memory — a load and a store on the alias pool
; minimized from synth:memory:1 (20 -> 3 blocks, 139 -> 4 instructions)
.main main
.func main
entry:
    li      r16, #7
    fallthrough @exit_7
exit_7:
    load    r11, [r0 + 274]
    fallthrough @exit_15
exit_15:
    store   r11, [r0 + 256]
    halt

