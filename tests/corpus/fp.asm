; corpus: fp — floating point arithmetic
; minimized from synth:default:4 (19 -> 3 blocks, 127 -> 3 instructions)
.main main
.func main
entry:
    fli     f1, #4.0
    fallthrough @loop_13
loop_13:
    fadd    f5, f1, f1
    fallthrough @cont_15
cont_15:
    halt

