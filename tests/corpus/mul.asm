; corpus: mul — an integer multiply
; minimized from synth:default:30 (17 -> 4 blocks, 123 -> 6 instructions)
.main main
.func fn0
entry:
    li      r18, #1
    mul     r17, r18, #6
    ret
.func main
entry:
    li      r25, #2
    fallthrough @join_12
join_12:
    call    @fn0, @cont_13
cont_13:
    halt

