; corpus: aliasing — two stores to the aliased address pool
; minimized from synth:memory:3 (13 -> 3 blocks, 86 -> 9 instructions)
.main main
.func main
entry:
    li      r3, #256
    load    r23, [r0 + 273]
    load    r11, [r3 + 0]
    fallthrough @join_8
join_8:
    sub     r18, r23, #6
    store   r11, [r3 + 1]
    load    r15, [r3 + 0]
    and     r17, r18, r15
    fallthrough @cont_10
cont_10:
    store   r17, [r0 + 256]
    halt

