; corpus: diamond — a conditional branch (diamond arm choice)
; minimized from synth:diamonds:1 (26 -> 3 blocks, 78 -> 4 instructions)
.main main
.func main
entry:
    li      r24, #1
    fallthrough @join_21
join_21:
    rem     r1, r24, #2
    bnez    r1, @join_24, @join_24
join_24:
    halt

