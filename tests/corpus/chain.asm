; corpus: chain — a long dependent def-use chain in one block
; minimized from synth:chains:2 (14 -> 5 blocks, 67 -> 12 instructions)
.main main
.func fn0
entry:
    li      r31, #0
    fallthrough @hexit_2
hexit_2:
    ret
.func main
entry:
    li      r3, #272
    li      r18, #8
    li      r19, #5
    li      r23, #5
    fli     f1, #4.0
    fli     f2, #8.0
    mov     r4, r19
    call    @fn0, @cont_6
cont_6:
    call    @fn0, @cont_11
cont_11:
    halt

