; corpus: rem — a remainder (condition computation)
; minimized from synth:loops:1 (15 -> 6 blocks, 74 -> 8 instructions)
.main main
.func fn0
entry:
    li      r25, #7
    mov     r2, r25
    ret
.func main
entry:
    fli     f2, #2.0
    fallthrough @exit_2
exit_2:
    call    @fn0, @cont_6
cont_6:
    mov     r11, r2
    fallthrough @loop_12
loop_12:
    rem     r22, r11, #5
    fallthrough @exit_13
exit_13:
    halt

