; corpus: loop — a counted loop that executes its back edge
; minimized from synth:loops:2 (14 -> 3 blocks, 169 -> 5 instructions)
.main main
.func main
entry:
    li      r26, #0
    fallthrough @loop_11
loop_11:
    add     r26, r26, #1
    slt     r1, r26, #5
    bnez    r1, @loop_11, @exit_12
exit_12:
    halt

