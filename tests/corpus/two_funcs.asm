; corpus: two_funcs — main plus one live callee
; minimized from synth:calls:5 (19 -> 3 blocks, 191 -> 3 instructions)
.main main
.func fn4
entry:
    ret
.func main
entry:
    call    @fn4, @cont_13
cont_13:
    halt

