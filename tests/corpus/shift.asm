; corpus: shift — a shift feeding later uses
; minimized from synth:chains:4 (11 -> 3 blocks, 116 -> 3 instructions)
.main main
.func main
entry:
    li      r11, #6
    fallthrough @loop_7
loop_7:
    shr     r20, r11, #0
    fallthrough @exit_8
exit_8:
    halt

