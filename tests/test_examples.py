"""Smoke tests: every shipped example must run cleanly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=600):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "basic_block" in out
    assert "task_size" in out
    assert "IPC" in out


def test_custom_workload():
    out = run_example("custom_workload.py")
    assert "C[0][0]" in out
    # The matmul result must validate against the host computation.
    line = next(ln for ln in out.splitlines() if "C[0][0]" in ln)
    assert line.split("=")[1].split("(")[0].strip() == \
        line.split("expected")[1].strip(") \n")


def test_heuristic_comparison():
    out = run_example("heuristic_comparison.py", "applu")
    assert "cycle breakdown" in out
    assert "applu" in out


def test_scaling_study():
    out = run_example("scaling_study.py", "hydro2d")
    assert "hydro2d" in out
    assert "bb IPC" in out


def test_assembly_and_export():
    out = run_example("assembly_and_export.py")
    assert "round-trip check: True" in out
    assert "+absorbed-call" in out
    assert "digraph partition" in out


@pytest.mark.parametrize(
    "name", ["quickstart.py", "custom_workload.py",
             "heuristic_comparison.py", "scaling_study.py",
             "assembly_and_export.py"]
)
def test_examples_exist_and_are_documented(name):
    path = EXAMPLES / name
    assert path.exists()
    text = path.read_text()
    assert text.startswith("#!/usr/bin/env python3")
    assert '"""' in text
