"""Unit tests of the machine's squash paths, driven by hand.

These tests call ``_squash_from`` / ``_squash_wrong`` /
``_check_store_violation`` directly on a machine whose assignment
state was built step by step, so victim selection, penalty charging,
and sequencer rewind are asserted against exact hand-computed values
(the integration suites only observe their aggregate effect on IPC).
"""

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.ir import IRBuilder
from repro.ir.interp import run_program
from repro.reliability import InvariantMonitor
from repro.sim import MultiscalarMachine, SimConfig, build_task_stream
from tests.conftest import build_diamond_loop


def build_conflict_program(iterations=40):
    """Adjacent tasks store/load the same address (ARB conflicts)."""
    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 0)
        b.li("r2", iterations)
        body = b.new_label("body")
        done = b.new_label("done")
        b.store("r0", "r0", 600)
        b.jump(body)
        with b.block(body):
            b.load("r3", "r0", 600)
            b.addi("r3", "r3", 1)
            b.muli("r8", "r3", 3)
            b.div("r9", "r8", "r3")
            b.store("r3", "r0", 600)
            b.addi("r1", "r1", 1)
            b.slt("r9", "r1", "r2")
            b.bnez("r9", body, fallthrough=done)
        with b.block(done):
            b.load("r4", "r0", 600)
            b.store("r4", "r0", 601)
            b.halt()
    return b.build()


def make_machine(program, level=HeuristicLevel.CONTROL_FLOW, n_pus=4,
                 monitor=None, **sim_kwargs):
    part = select_tasks(program, SelectionConfig(level=level))
    trace = run_program(part.program)
    stream = build_task_stream(trace, part)
    config = SimConfig(n_pus=n_pus, **sim_kwargs)
    return MultiscalarMachine(stream, config, monitor=monitor)


def assign_tasks(machine, count):
    """Assign ``count`` real tasks, one per cycle starting at cycle 0.

    Cold-predictor mispredictions are cleared after each assignment so
    every slot receives real (not wrong-path) work.
    """
    cycle = 0
    while len(machine.in_flight) < count:
        machine._assign(cycle)
        machine.pending_mispredict = None
        cycle += 1
    return cycle


class TestSquashFrom:
    def test_victims_and_rewind(self):
        m = make_machine(build_diamond_loop())
        assign_tasks(m, 4)
        assert sorted(m.in_flight) == [0, 1, 2, 3]

        m._squash_from(2, cycle=10, memory=True)

        assert sorted(m.in_flight) == [0, 1]
        assert m.next_seq == 2
        # tasks 2 and 3 were assigned at cycles 2 and 3
        assert m.breakdown.memory_misspeculation == (10 - 2) + (10 - 3)
        assert m.breakdown.control_misspeculation == 0
        assert m.resume_cycle == 11

    def test_generation_bumped_only_for_victims(self):
        m = make_machine(build_diamond_loop())
        assign_tasks(m, 4)
        m._squash_from(2, cycle=10, memory=True)
        assert m.state.generation[0] == 0
        assert m.state.generation[1] == 0
        assert m.state.generation[2] == 1
        assert m.state.generation[3] == 1

    def test_ring_resumes_after_survivor(self):
        m = make_machine(build_diamond_loop())
        assign_tasks(m, 4)
        survivor_pu = m.state.pu_of_seq[1]
        m._squash_from(2, cycle=10, memory=True)
        assert m.next_assign_pu == (survivor_pu + 1) % m.config.n_pus

    def test_squash_everything_resets_ring(self):
        m = make_machine(build_diamond_loop())
        assign_tasks(m, 3)
        m._squash_from(0, cycle=7, memory=False)
        assert not m.in_flight
        assert m.next_seq == 0
        assert m.next_assign_pu == 0
        # tasks 0..2 assigned at cycles 0..2
        assert m.breakdown.control_misspeculation == 7 + 6 + 5

    def test_victim_pus_return_to_idle(self):
        m = make_machine(build_diamond_loop())
        assign_tasks(m, 4)
        victim_pus = [m.state.pu_of_seq[s] for s in (2, 3)]
        m._squash_from(2, cycle=10, memory=True)
        for index in victim_pus:
            assert m.pus[index].idle


class TestSquashWrong:
    def test_wrong_path_penalty_charged(self):
        m = make_machine(build_diamond_loop())
        assign_tasks(m, 1)
        m.pending_mispredict = 0
        m._assign(5)  # fills the next PU with wrong-path work
        wrong = [pu for pu in m.pus if pu.wrong]
        assert len(wrong) == 1
        assert wrong[0].assign_cycle == 5

        m._squash_wrong(9)
        assert m.breakdown.control_misspeculation == 9 - 5
        assert not any(pu.wrong for pu in m.pus)
        assert wrong[0].idle

    def test_no_wrong_occupancy_is_a_no_op(self):
        m = make_machine(build_diamond_loop())
        assign_tasks(m, 2)
        m._squash_wrong(9)
        assert m.breakdown.control_misspeculation == 0
        assert sorted(m.in_flight) == [0, 1]


class TestStoreViolation:
    def _indices(self, m):
        state = m.state
        store_idx = next(
            i for i in range(len(state.is_store))
            if state.is_store[i] and state.task_seq[i] == 0
        )
        loads = {}
        for i in range(len(state.is_load)):
            if state.is_load[i]:
                loads.setdefault(state.task_seq[i], i)
        return store_idx, loads

    def test_earliest_victim_selected_and_sync_learned(self):
        m = make_machine(build_conflict_program(), sync_table_size=256)
        assign_tasks(m, 4)
        store_idx, loads = self._indices(m)
        # register out of order: the later task first
        m.register_speculative_load(store_idx, loads[2], 2)
        m.register_speculative_load(store_idx, loads[1], 1)

        m._check_store_violation(store_idx, cycle=8)

        assert m.memory_squashes == 1
        assert sorted(m.in_flight) == [0]  # earliest victim wins: seq 1
        assert m.next_seq == 1
        key = (m.state.pc[store_idx], m.state.pc[loads[1]])
        assert key in m.sync_pairs

    def test_stale_generation_entry_is_skipped(self):
        m = make_machine(build_conflict_program(), sync_table_size=256)
        assign_tasks(m, 3)
        store_idx, loads = self._indices(m)
        m.register_speculative_load(store_idx, loads[1], 1)
        m.state.clear_span(1)  # that execution was squashed meanwhile

        m._check_store_violation(store_idx, cycle=8)

        assert m.memory_squashes == 0
        assert sorted(m.in_flight) == [0, 1, 2]

    def test_departed_task_is_skipped(self):
        m = make_machine(build_conflict_program(), sync_table_size=256)
        assign_tasks(m, 3)
        store_idx, loads = self._indices(m)
        m.register_speculative_load(store_idx, loads[1], 1)
        del m.in_flight[1]  # no longer occupying a PU

        m._check_store_violation(store_idx, cycle=8)
        assert m.memory_squashes == 0

    def test_unknown_store_is_a_no_op(self):
        m = make_machine(build_conflict_program())
        assign_tasks(m, 2)
        m._check_store_violation(10**6, cycle=3)
        assert m.memory_squashes == 0


class TestFullRunReconciliation:
    def test_monitor_reconciles_squash_heavy_run(self):
        monitor = InvariantMonitor()
        m = make_machine(build_conflict_program(), n_pus=4,
                         monitor=monitor, sync_table_size=0)
        result = m.run()  # raises InvariantViolation on any breakage
        assert result.memory_squashes > 0
        assert monitor.violation_events == result.memory_squashes
        assert monitor.memory_penalty == result.breakdown.memory_misspeculation
        assert monitor.control_penalty == (
            result.breakdown.control_misspeculation
        )
        assert monitor.retired_tasks == result.dynamic_tasks

    def test_monitor_reconciles_control_heavy_run(self):
        monitor = InvariantMonitor()
        m = make_machine(build_diamond_loop(), n_pus=4, monitor=monitor)
        result = m.run()
        assert result.committed_instructions == len(m.stream.trace)
        assert monitor.mispredict_events == result.task_mispredictions
