"""Seeded generator: determinism, validity, registry integration."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.ir import Opcode, parse_program, program_to_text, well_formed
from repro.ir.interp import run_program
from repro.synth import (
    PRESETS,
    SynthParams,
    generate_program,
    parse_synth_name,
    program_source_hash,
    synth_name,
)
from repro.workloads import get_benchmark

SEEDS = (1, 7, 1_000_003)


def test_same_seed_same_program():
    for seed in SEEDS:
        a = program_to_text(generate_program(seed))
        b = program_to_text(generate_program(seed))
        assert a == b


def test_different_seeds_differ():
    texts = {program_to_text(generate_program(seed)) for seed in SEEDS}
    assert len(texts) == len(SEEDS)


def test_params_change_program():
    base = program_to_text(generate_program(3))
    heavy = program_to_text(
        generate_program(3, PRESETS["loops"])
    )
    assert base != heavy


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_presets_emit_valid_halting_programs(preset):
    params = PRESETS[preset]
    for seed in SEEDS:
        program = generate_program(seed, params)
        program.validate()
        assert well_formed(program) == []
        trace = run_program(program, max_instructions=params.max_dynamic)
        assert len(trace) > 0
        # round-trips through the assembly text byte-exactly
        text = program_to_text(program)
        assert program_to_text(parse_program(text)) == text


def test_generator_exercises_all_region_kinds():
    """Across a handful of seeds the default preset emits loops,
    diamonds, calls, memory traffic, and FP work."""
    ops = set()
    functions = 0
    for seed in range(10):
        program = generate_program(seed)
        functions = max(functions, sum(1 for _ in program.functions()))
        for func in program.functions():
            for blk in func.blocks():
                ops.update(ins.opcode for ins in blk.instructions)
    assert Opcode.BNEZ in ops or Opcode.BEQZ in ops  # loops/diamonds
    assert Opcode.CALL in ops
    assert Opcode.LOAD in ops and Opcode.STORE in ops
    assert Opcode.FADD in ops or Opcode.FMUL in ops
    assert functions > 1


def test_synth_name_round_trip():
    name = synth_name("loops", 42)
    assert name == "synth:loops:42"
    preset, seed, params = parse_synth_name(name)
    assert preset == "loops"
    assert seed == 42
    assert params == PRESETS["loops"]


@pytest.mark.parametrize("bad", [
    "synth:", "synth:loops", "synth:nosuch:3", "synth:loops:x",
    "synth:loops:3:4",
])
def test_parse_synth_name_rejects(bad):
    with pytest.raises(ValueError):
        parse_synth_name(bad)


def test_registry_resolves_synth_names():
    bm = get_benchmark("synth:default:7")
    assert bm.suite == "synth"
    built = bm.build(1.0)
    direct = generate_program(7, PRESETS["default"])
    assert program_to_text(built) == program_to_text(direct)


def test_registry_rejects_unknown_preset():
    with pytest.raises(KeyError):
        get_benchmark("synth:nosuch:7")


def test_scale_changes_trip_counts():
    small = get_benchmark("synth:default:7").build(0.5)
    full = get_benchmark("synth:default:7").build(1.0)
    ts, tf = run_program(small), run_program(full)
    assert len(ts) <= len(tf)


def test_source_hash_is_content_hash():
    a = generate_program(7)
    b = generate_program(7)
    c = generate_program(8)
    assert program_source_hash(a) == program_source_hash(b)
    assert program_source_hash(a) != program_source_hash(c)


_CHILD = (
    "from repro.synth import generate_program, PRESETS;"
    "from repro.ir import program_to_text;"
    "import hashlib;"
    "text = ''.join(program_to_text(generate_program(s, PRESETS['{p}']))"
    "               for s in (1, 7, 1000003));"
    "print(hashlib.sha256(text.encode()).hexdigest())"
)


@pytest.mark.parametrize("preset", ["default", "calls"])
def test_generation_stable_across_processes_and_hash_seeds(preset):
    """Byte-identical IR under different PYTHONHASHSEED values.

    The generator must not iterate sets/dicts keyed by strings in any
    order-dependent way; a fresh interpreter per hash seed proves it.
    """
    digests = set()
    for hash_seed in ("0", "1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", _CHILD.format(p=preset)],
            capture_output=True, text=True, env=env, check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1


def test_params_validation():
    with pytest.raises(ValueError):
        SynthParams(functions=-1)
    with pytest.raises(ValueError):
        SynthParams(trip_min=5, trip_max=2)
    with pytest.raises(ValueError):
        SynthParams(mem_prob=1.5)
