"""Tests of sequencer behaviours: ring order, RAS, wrong-path work."""

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.ir import IRBuilder
from repro.ir.interp import run_program
from repro.sim import SimConfig, build_task_stream
from repro.sim.machine import MultiscalarMachine
from tests.conftest import build_call_program, build_diamond_loop


def machine_for(program, level=HeuristicLevel.CONTROL_FLOW, **sim_kwargs):
    part = select_tasks(program, SelectionConfig(level=level))
    trace = run_program(part.program)
    stream = build_task_stream(trace, part)
    return MultiscalarMachine(stream, SimConfig(**sim_kwargs))


class TestRingAssignment:
    def test_tasks_assigned_around_the_ring(self):
        machine = machine_for(build_diamond_loop(), n_pus=4)
        machine.run()
        pus = machine.state.pu_of_seq
        # With no squashes, consecutive tasks occupy consecutive ring
        # slots (modulo the PU count).
        if machine.memory_squashes == 0 and machine.control_squashes == 0:
            for seq in range(1, len(pus)):
                assert pus[seq] == (pus[seq - 1] + 1) % 4
        else:
            # With squashes the order restarts, but slots stay valid.
            assert all(0 <= p < 4 for p in pus)

    def test_single_pu_ring(self):
        machine = machine_for(build_diamond_loop(), n_pus=1)
        machine.run()
        assert all(p == 0 for p in machine.state.pu_of_seq)


class TestReturnPrediction:
    def test_ras_predicts_call_returns(self):
        # Non-absorbed calls create CALL/RETURN transitions; the RAS
        # should make RETURN targets nearly perfectly predictable.
        machine = machine_for(
            build_call_program("small"),
            level=HeuristicLevel.CONTROL_FLOW,
            n_pus=4,
        )
        result = machine.run()
        assert result.task_prediction_accuracy > 0.85

    def test_nested_calls(self):
        b = IRBuilder()
        with b.function("inner"):
            b.addi("r2", "r4", 1)
            b.ret()
        with b.function("outer"):
            cont = b.new_label("oc")
            b.call("inner", fallthrough=cont)
            with b.block(cont):
                b.addi("r2", "r2", 10)
                b.ret()
        with b.function("main"):
            b.li("r16", 0)
            body = b.new_label("body")
            cont = b.new_label("mc")
            done = b.new_label("done")
            b.li("r1", 0)
            b.jump(body)
            with b.block(body):
                b.mov("r4", "r1")
                b.call("outer", fallthrough=cont)
            with b.block(cont):
                b.add("r16", "r16", "r2")
                b.addi("r1", "r1", 1)
                b.slti("r9", "r1", 15)
                b.bnez("r9", body, fallthrough=done)
            with b.block(done):
                b.store("r16", "r0", 100)
                b.halt()
        machine = machine_for(b.build(), n_pus=4)
        result = machine.run()
        assert result.committed_instructions == len(machine.stream.trace)
        # Two nested return levels per iteration, still predictable.
        assert result.task_prediction_accuracy > 0.8


class TestWrongPathOccupancy:
    def test_wrong_path_cycles_accounted_as_control_penalty(self):
        # diamond loop's exit mispredicts at least once.
        machine = machine_for(build_diamond_loop(), n_pus=4)
        result = machine.run()
        if result.task_mispredictions:
            assert result.breakdown.control_misspeculation > 0

    def test_no_wrong_path_leaks_after_completion(self):
        machine = machine_for(build_diamond_loop(), n_pus=4)
        machine.run()
        assert machine.pending_mispredict is None
        assert all(pu.idle for pu in machine.pus)
        assert machine.retire_seq == len(machine.stream.tasks)
