"""Unit tests for the instruction set layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.instructions import (
    FP_REGISTER_COUNT,
    INT_REGISTER_COUNT,
    Instruction,
    OpClass,
    Opcode,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_int_reg,
)


class TestRegisters:
    def test_int_reg_names(self):
        assert int_reg(0) == "r0"
        assert int_reg(31) == "r31"

    def test_fp_reg_names(self):
        assert fp_reg(0) == "f0"
        assert fp_reg(15) == "f15"

    @pytest.mark.parametrize("index", [-1, INT_REGISTER_COUNT])
    def test_int_reg_bounds(self, index):
        with pytest.raises(ValueError):
            int_reg(index)

    @pytest.mark.parametrize("index", [-1, FP_REGISTER_COUNT])
    def test_fp_reg_bounds(self, index):
        with pytest.raises(ValueError):
            fp_reg(index)

    def test_classifiers(self):
        assert is_int_reg("r5") and not is_fp_reg("r5")
        assert is_fp_reg("f3") and not is_int_reg("f3")
        assert not is_int_reg("x1")
        assert not is_fp_reg("fx")


class TestOpcodeProperties:
    def test_branch_flags(self):
        assert Opcode.BEQZ.is_branch and Opcode.BNEZ.is_branch
        assert not Opcode.JUMP.is_branch
        assert not Opcode.ADD.is_branch

    def test_control_flags(self):
        for op in (Opcode.BEQZ, Opcode.BNEZ, Opcode.JUMP, Opcode.CALL,
                   Opcode.RET, Opcode.HALT):
            assert op.is_control
        assert not Opcode.LOAD.is_control

    def test_memory_flags(self):
        assert Opcode.LOAD.is_memory and Opcode.STORE.is_memory
        assert not Opcode.ADD.is_memory

    def test_op_classes(self):
        assert Opcode.ADD.op_class is OpClass.INT
        assert Opcode.FMUL.op_class is OpClass.FP
        assert Opcode.LOAD.op_class is OpClass.MEM
        assert Opcode.BEQZ.op_class is OpClass.BRANCH
        assert Opcode.CALL.op_class is OpClass.BRANCH

    def test_every_opcode_has_class_and_latency(self):
        for op in Opcode:
            assert isinstance(op.op_class, OpClass)
            assert op.latency >= 1

    def test_latencies_ordering(self):
        assert Opcode.MUL.latency > Opcode.ADD.latency
        assert Opcode.DIV.latency > Opcode.MUL.latency
        assert Opcode.FMUL.latency > Opcode.FADD.latency


class TestInstruction:
    def test_reads_excludes_zero_register(self):
        ins = Instruction(Opcode.ADD, dst="r1", srcs=("r0", "r2"))
        assert ins.reads == ("r2",)

    def test_writes_to_zero_discarded(self):
        ins = Instruction(Opcode.ADD, dst="r0", srcs=("r1", "r2"))
        assert ins.writes is None

    def test_writes_normal(self):
        ins = Instruction(Opcode.LI, dst="r4", imm=3)
        assert ins.writes == "r4"

    def test_srcs_coerced_to_tuple(self):
        ins = Instruction(Opcode.ADD, dst="r1", srcs=["r2", "r3"])
        assert ins.srcs == ("r2", "r3")

    def test_str_contains_mnemonic_and_operands(self):
        ins = Instruction(Opcode.BEQZ, srcs=("r5",), target="loop")
        text = str(ins)
        assert "beqz" in text and "r5" in text and "@loop" in text

    def test_instructions_are_hashable_value_objects(self):
        a = Instruction(Opcode.ADD, dst="r1", srcs=("r2", "r3"))
        b = Instruction(Opcode.ADD, dst="r1", srcs=("r2", "r3"))
        assert a == b
        assert hash(a) == hash(b)

    @given(st.sampled_from(list(Opcode)))
    def test_repr_never_crashes(self, op):
        ins = Instruction(op, dst="r1", srcs=("r2",), imm=1, target="x")
        assert op.value in str(ins)
