"""Shared fixtures: canonical small programs used across the suite."""

from __future__ import annotations

import pytest

from repro.ir import IRBuilder


def build_diamond_loop(n: int = 50):
    """A loop whose body is an if-diamond; the workhorse fixture.

    ``sum`` accumulates +5 on multiples of 3 and +1 otherwise; the
    result is stored at address 100.
    """
    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 0)
        b.li("r2", n)
        b.li("r3", 0)
        body = b.new_label("body")
        then = b.new_label("then")
        other = b.new_label("other")
        join = b.new_label("join")
        done = b.new_label("done")
        b.jump(body)
        with b.block(body):
            b.remi("r9", "r1", 3)
            b.beqz("r9", then, fallthrough=other)
        with b.block(then):
            b.addi("r3", "r3", 5)
            b.jump(join)
        with b.block(other):
            b.addi("r3", "r3", 1)
        with b.block(join):
            b.addi("r1", "r1", 1)
            b.slt("r9", "r1", "r2")
            b.bnez("r9", body, fallthrough=done)
        with b.block(done):
            b.store("r3", "r0", 100)
            b.halt()
    return b.build()


def build_call_program(callee_size: str = "small"):
    """main loops calling a helper; ``callee_size`` picks its weight.

    ``small`` helpers (4 instructions) sit under CALL_THRESH and are
    absorbable; ``large`` helpers contain a 40-iteration loop.
    """
    b = IRBuilder()
    with b.function("helper"):
        if callee_size == "small":
            b.addi("r2", "r4", 7)
            b.ret()
        else:
            b.li("r2", 0)
            loop = b.new_label("hloop")
            out = b.new_label("hout")
            b.li("r9", 0)
            b.jump(loop)
            with b.block(loop):
                b.add("r2", "r2", "r9")
                b.addi("r9", "r9", 1)
                b.slti("r8", "r9", 40)
                b.bnez("r8", loop, fallthrough=out)
            with b.block(out):
                b.ret()
    with b.function("main"):
        b.li("r1", 0)
        b.li("r16", 0)
        body = b.new_label("body")
        cont = b.new_label("cont")
        done = b.new_label("done")
        b.jump(body)
        with b.block(body):
            b.mov("r4", "r1")
            b.call("helper", fallthrough=cont)
        with b.block(cont):
            b.add("r16", "r16", "r2")
            b.addi("r1", "r1", 1)
            b.slti("r9", "r1", 20)
            b.bnez("r9", body, fallthrough=done)
        with b.block(done):
            b.store("r16", "r0", 100)
            b.halt()
    return b.build()


def build_straightline(length: int = 12):
    """A single-block program of dependent adds."""
    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 1)
        for _ in range(length):
            b.addi("r1", "r1", 1)
        b.store("r1", "r0", 100)
        b.halt()
    return b.build()


@pytest.fixture
def diamond_loop():
    return build_diamond_loop()


@pytest.fixture
def call_program():
    return build_call_program("small")


@pytest.fixture
def big_call_program():
    return build_call_program("large")


@pytest.fixture
def straightline():
    return build_straightline()


@pytest.fixture
def verify_oracle():
    """Differential-oracle assertion: verify one cell or fail loudly.

    Usage: ``report = verify_oracle("compress", level, scale=0.1)``;
    the test fails with the full divergence list if the machine and
    the sequential reference disagree (see repro.reliability).
    """
    from repro.reliability import verify_workload

    def check(benchmark, level, **kwargs):
        report = verify_workload(benchmark, level, **kwargs)
        assert report.ok, report.summary()
        return report

    return check
