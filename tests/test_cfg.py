"""Unit tests for CFG analyses: DFS, dominators, loops, reachability."""

import pytest

from repro.ir import IRBuilder
from repro.ir.cfg import build_cfg
from tests.conftest import build_diamond_loop


def nested_loop_program():
    """Two nested counted loops."""
    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 0)
        outer = b.new_label("outer")
        inner = b.new_label("inner")
        inner_exit = b.new_label("inner_exit")
        done = b.new_label("done")
        b.jump(outer)
        with b.block(outer):
            b.li("r2", 0)
            b.jump(inner)
        with b.block(inner):
            b.addi("r2", "r2", 1)
            b.slti("r9", "r2", 4)
            b.bnez("r9", inner, fallthrough=inner_exit)
        with b.block(inner_exit):
            b.addi("r1", "r1", 1)
            b.slti("r9", "r1", 3)
            b.bnez("r9", outer, fallthrough=done)
        with b.block(done):
            b.halt()
    return b.build()


class TestStructure:
    def test_succs_and_preds_are_consistent(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        for src, targets in cfg.succs.items():
            for dst in targets:
                assert src in cfg.preds[dst]

    def test_dfs_numbers_start_at_entry(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        assert cfg.dfs_num["entry"] == 0

    def test_rpo_entry_first(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        assert cfg.rpo[0] == "entry"
        assert set(cfg.rpo) == set(diamond_loop.main.labels())

    def test_back_edges_of_loop(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        assert len(cfg.back_edges) == 1
        (src, dst), = cfg.back_edges
        assert dst == "body_1"


class TestDominators:
    def test_entry_dominates_everything(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        for label in cfg.rpo:
            assert cfg.dominates("entry", label)

    def test_branch_arms_do_not_dominate_join(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        assert not cfg.dominates("then_2", "join_4")
        assert not cfg.dominates("other_3", "join_4")
        assert cfg.dominates("body_1", "join_4")

    def test_idom_is_a_dominator(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        for label, idom in cfg.idom.items():
            if idom is not None:
                assert cfg.dominates(idom, label)


class TestLoops:
    def test_single_loop_detected(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert loop.header == "body_1"
        assert {"body_1", "then_2", "other_3", "join_4"} == set(loop.body)

    def test_nested_loops(self):
        prog = nested_loop_program()
        cfg = build_cfg(prog.main)
        assert len(cfg.loops) == 2
        inner, outer = cfg.loops  # sorted by body size
        assert inner.body < outer.body
        assert inner.header in outer.body

    def test_loop_classifiers(self):
        prog = nested_loop_program()
        cfg = build_cfg(prog.main)
        inner, outer = cfg.loops
        inner_head = inner.header
        outer_block = next(
            lbl for lbl in outer.body if lbl not in inner.body
            and inner_head in cfg.succs[lbl]
        )
        exit_block = next(
            succ for succ in cfg.succs[inner_head] if succ not in inner.body
        )
        # outer body -> inner header is a loop entry edge.
        assert cfg.is_loop_entry_edge(outer_block, inner_head)
        # inner's exit leaves the inner loop.
        assert cfg.is_loop_exit_edge(inner_head, exit_block)
        # back edges are not entry edges.
        assert not cfg.is_loop_entry_edge(inner_head, inner_head)
        assert cfg.is_back_edge(inner_head, inner_head)
        assert cfg.is_loop_header(inner_head)
        assert cfg.innermost_loop(inner_head).header == inner_head
        assert cfg.loop_of_header("entry") is None


class TestReachability:
    def test_reachable_between_diamond(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        on_path = cfg.reachable_between("body_1", "join_4")
        assert on_path == {"body_1", "then_2", "other_3", "join_4"}

    def test_reachable_between_excludes_side_paths(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        on_path = cfg.reachable_between("then_2", "join_4")
        assert on_path == {"then_2", "join_4"}

    def test_no_forward_path_returns_empty(self, diamond_loop):
        cfg = build_cfg(diamond_loop.main)
        # join -> body is only reachable through the back edge.
        assert cfg.reachable_between("join_4", "entry") == set()

    def test_unreachable_blocks_tolerated(self):
        b = IRBuilder()
        with b.function("main"):
            b.halt()
            orphan = b.new_label("orphan")
            with b.block(orphan):
                b.halt()
        prog = b.build()
        cfg = build_cfg(prog.main)
        assert orphan not in cfg.rpo
        assert cfg.succs[orphan] == []
