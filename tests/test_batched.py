"""Batched-engine equivalence: lockstep cohorts vs the reference loop.

The batched engine (``sim/batched.py``) advances many machine
configurations of one compiled workload in lockstep slices.  Its only
licence to exist is the same one the fast engine holds: bit-identity.
Every cell — run alone or inside a cohort, in any cohort composition,
through the scheduler's group routing or the campaign service — must
produce exactly the same ``SimResult`` as the cycle-by-cycle
reference loop, down to the per-reason cycle breakdown and the
telemetry histograms.  These tests sweep every benchmark at every
heuristic level, vary machine shapes and forwarding policies, and
check the cohort driver's order- and composition-independence
directly.
"""

import asyncio
import json

import pytest

from repro.compiler import HeuristicLevel
from repro.experiments.runner import (
    clear_cache,
    compile_benchmark,
    run_benchmark,
    run_benchmark_batch,
)
from repro.harness.scheduler import (
    BATCH_MIN_CELLS,
    _batchable,
    execute_spec,
    run_specs,
)
from repro.harness.spec import RunSpec
from repro.sim import MultiscalarMachine, SimConfig
from repro.sim.batched import BatchCohort, run_cohort
from repro.sim.config import ForwardPolicy
from repro.sim.machine import SimulationStuck
from repro.workloads import all_benchmarks

SMALL = 0.1

ALL_BENCHMARKS = [bm.name for bm in all_benchmarks()]
ALL_LEVELS = list(HeuristicLevel)

#: every RunRecord field that is a pure function of the simulation
#: (breakdown and metrics are compared separately for readable diffs)
_RESULT_FIELDS = (
    "cycles",
    "instructions",
    "ipc",
    "dynamic_tasks",
    "task_prediction_accuracy",
    "branch_prediction_accuracy",
    "control_squashes",
    "memory_squashes",
    "mean_window_span_measured",
)


def assert_equivalent(name, level, **kwargs):
    """Run one cell batched and reference; demand identical records."""
    sim = kwargs.pop("sim", None) or SimConfig()
    batched = run_benchmark(
        name, level,
        sim=SimConfig(**{**sim.__dict__, "engine": "batched"}), **kwargs,
    )
    reference = run_benchmark(
        name, level,
        sim=SimConfig(**{**sim.__dict__, "engine": "reference"}), **kwargs,
    )
    for field in _RESULT_FIELDS:
        assert getattr(batched, field) == getattr(reference, field), (
            f"{name}/{level.value}: batched.{field}="
            f"{getattr(batched, field)} != reference.{field}="
            f"{getattr(reference, field)}"
        )
    assert batched.breakdown == reference.breakdown, (
        f"{name}/{level.value}: cycle breakdowns differ"
    )
    assert batched.metrics == reference.metrics, (
        f"{name}/{level.value}: telemetry summaries differ"
    )


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
@pytest.mark.parametrize(
    "level", ALL_LEVELS, ids=[lvl.value for lvl in ALL_LEVELS]
)
def test_batched_matches_reference_every_cell(name, level):
    """Bit-identity on every (benchmark, level) cell, 4 PUs OoO."""
    assert_equivalent(name, level, n_pus=4, out_of_order=True, scale=SMALL)


@pytest.mark.parametrize("n_pus,out_of_order",
                         [(8, True), (4, False), (8, False), (2, True)])
def test_batched_matches_reference_machine_shapes(n_pus, out_of_order):
    """Bit-identity across PU counts and issue disciplines."""
    assert_equivalent(
        "compress", HeuristicLevel.TASK_SIZE,
        n_pus=n_pus, out_of_order=out_of_order, scale=SMALL,
    )


@pytest.mark.parametrize("policy", list(ForwardPolicy),
                         ids=[p.value for p in ForwardPolicy])
def test_batched_matches_reference_forward_policies(policy):
    """Bit-identity under every register forwarding policy."""
    assert_equivalent(
        "tomcatv", HeuristicLevel.DATA_DEPENDENCE,
        n_pus=8, out_of_order=True, scale=SMALL,
        sim=SimConfig(forward_policy=policy),
    )


@pytest.mark.parametrize("name,level", [
    ("compress", HeuristicLevel.DATA_DEPENDENCE),
    ("m88ksim", HeuristicLevel.CONTROL_FLOW),
    ("tomcatv", HeuristicLevel.TASK_SIZE),
])
def test_batched_charging_sums_per_category(name, level):
    """Deferred span charges land in the right Figure-2 buckets.

    The batched engine charges a held PU's skipped span to its stall
    category when the span is reconciled at the next visit; this
    checks the per-category totals — not just the aggregate — against
    the reference engine's cycle-by-cycle accounting, and that both
    engines attribute every PU-cycle (categories + squash penalties +
    idle sum to the same grand total).
    """
    batched = run_benchmark(
        name, level, n_pus=4, scale=SMALL, sim=SimConfig(engine="batched"),
    )
    reference = run_benchmark(
        name, level, n_pus=4, scale=SMALL,
        sim=SimConfig(engine="reference"),
    )
    batched_dict = batched.breakdown.as_dict()
    ref_dict = reference.breakdown.as_dict()
    for category in ref_dict:
        assert batched_dict[category] == ref_dict[category], (
            f"{name}/{level.value}: category {category}: "
            f"batched={batched_dict[category]} "
            f"reference={ref_dict[category]}"
        )
    assert (
        batched.breakdown.total_pu_cycles
        == reference.breakdown.total_pu_cycles
    )


# -- the cohort driver ------------------------------------------------


def _machines(cells, level=HeuristicLevel.TASK_SIZE, name="compress"):
    """Fresh batched machines for ``cells`` = [(n_pus, ooo), ...]."""
    compiled = compile_benchmark(name, level, scale=SMALL)
    machines = []
    for n_pus, out_of_order in cells:
        config = SimConfig(engine="batched").scaled_for_pus(n_pus)
        config = SimConfig(**{**config.__dict__,
                              "out_of_order": out_of_order})
        machines.append(
            MultiscalarMachine(
                compiled.stream, config, compiled.release,
                label=f"{name}/{n_pus}{'ooo' if out_of_order else 'ino'}",
            )
        )
    return machines


_CELLS = [(4, True), (8, True), (4, False), (2, True)]


def _result_key(result):
    """Everything a SimResult measures, as a comparable value."""
    return (
        result.cycles,
        result.committed_instructions,
        result.dynamic_tasks,
        result.task_predictions,
        result.task_mispredictions,
        result.control_squashes,
        result.memory_squashes,
        result.gshare_accuracy,
        result.branch_count,
        result.mean_window_span,
        result.breakdown,
        result.cache_stats,
        result.squash_depths,
    )


def test_cohort_matches_individual_cells():
    """A cohort's results equal each cell run alone through run_cell."""
    together = run_cohort(_machines(_CELLS))
    # engine="batched" on a lone machine dispatches to run_cell
    alone = [machine.run() for machine in _machines(_CELLS)]
    assert [_result_key(r) for r in together] == [
        _result_key(r) for r in alone
    ]


def test_cohort_results_are_order_independent():
    """Permuting the cohort permutes the results and changes nothing.

    Cells share nothing but immutable compiled arrays, so the lockstep
    schedule — which interleaves their slices — must not let one
    cell's progress influence another's measurements.
    """
    base = run_cohort(_machines(_CELLS))
    order = [2, 0, 3, 1]
    permuted = run_cohort(_machines([_CELLS[i] for i in order]))
    assert [_result_key(base[i]) for i in order] == [
        _result_key(r) for r in permuted
    ]


def test_cohort_results_are_composition_independent():
    """Splitting a cohort into sub-cohorts changes nothing."""
    whole = run_cohort(_machines(_CELLS))
    front = run_cohort(_machines(_CELLS[:2]))
    back = run_cohort(_machines(_CELLS[2:]))
    assert [_result_key(r) for r in whole] == [
        _result_key(r) for r in front + back
    ]


def test_cohort_slice_size_is_immaterial():
    """Any slice granularity yields the same per-cell results."""
    base = run_cohort(_machines(_CELLS))
    for slice_cycles in (1, 64, 1 << 20):
        again = run_cohort(_machines(_CELLS), slice_cycles=slice_cycles)
        assert [_result_key(r) for r in again] == [
            _result_key(r) for r in base
        ]


def test_cohort_rejects_bad_slice():
    with pytest.raises(ValueError):
        BatchCohort(_machines([(4, True)]), slice_cycles=0)


def test_run_cell_respects_max_cycles():
    """A stuck batched cell dies with the same diagnostic contract."""
    with pytest.raises(SimulationStuck) as exc_info:
        run_benchmark(
            "compress", HeuristicLevel.BASIC_BLOCK, n_pus=4, scale=SMALL,
            sim=SimConfig(max_cycles=50, engine="batched"),
        )
    message = str(exc_info.value)
    assert "compress/basic_block/4ooo" in message
    assert "engine=" in message


# -- harness integration ----------------------------------------------


def _batched_specs(levels=(HeuristicLevel.TASK_SIZE,), engine="batched"):
    sim = SimConfig(engine=engine)
    return [
        RunSpec(benchmark="compress", level=level, n_pus=n_pus,
                out_of_order=ooo, scale=SMALL, sim=sim)
        for level in levels
        for n_pus, ooo in _CELLS
    ]


def test_batchable_group_policy():
    """Only full batched groups under the canonical worker batch."""
    specs = _batched_specs()
    assert _batchable(specs, execute_spec)
    assert not _batchable(specs[:BATCH_MIN_CELLS - 1], execute_spec)
    assert not _batchable(specs, lambda spec: None)  # injected worker
    mixed = specs[:-1] + _batched_specs(engine="fast")[-1:]
    assert not _batchable(mixed, execute_spec)
    default_engine = [
        RunSpec(benchmark="compress", level=HeuristicLevel.TASK_SIZE,
                n_pus=n, out_of_order=o, scale=SMALL)
        for n, o in _CELLS
    ]
    assert not _batchable(default_engine, execute_spec)


def test_run_benchmark_batch_matches_run_benchmark():
    """The batch pipeline's records equal the single-cell pipeline's."""
    specs = _batched_specs(levels=[HeuristicLevel.TASK_SIZE,
                                   HeuristicLevel.DATA_DEPENDENCE])
    groups = {}
    for spec in specs:
        groups.setdefault(spec.level, []).append(spec)
    for level, group in groups.items():
        batch = run_benchmark_batch(group)
        for spec, record in zip(group, batch):
            single = run_benchmark(
                spec.benchmark, spec.level, n_pus=spec.n_pus,
                out_of_order=spec.out_of_order, scale=spec.scale,
                sim=spec.sim,
            )
            assert record.__dict__ == single.__dict__, (
                f"{spec.benchmark}/{spec.level.value}/{spec.n_pus}: "
                f"batch record differs"
            )


def test_scheduler_routes_batched_groups(tmp_path, monkeypatch):
    """run_specs routes batched groups through the cohort pipeline
    and the records match a cell-by-cell fast-engine grid exactly."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()
    levels = [HeuristicLevel.TASK_SIZE, HeuristicLevel.BASIC_BLOCK]
    batched = run_specs(_batched_specs(levels=levels), jobs=1)
    clear_cache()
    fast = run_specs(_batched_specs(levels=levels, engine="fast"), jobs=1)
    assert [r.__dict__ for r in batched] == [r.__dict__ for r in fast]


def test_engine_salts_the_cache_key():
    """Batched runs must never alias fast or reference cache entries."""
    def spec(engine):
        return RunSpec(
            benchmark="compress", level=HeuristicLevel.BASIC_BLOCK,
            sim=SimConfig(engine=engine),
        )

    hashes = {engine: spec(engine).spec_hash()
              for engine in ("fast", "batched", "reference")}
    assert len(set(hashes.values())) == 3


def test_fault_plans_fall_back_to_the_fast_loop():
    """Cells with fault plans run faulted but stay oracle-green."""
    from repro.reliability import verify_workload

    report = verify_workload(
        "compress", HeuristicLevel.CONTROL_FLOW, n_pus=4, scale=SMALL,
        faults=10, seed=7, sim=SimConfig(engine="batched"),
    )
    assert report.ok, report.summary()
    assert report.faults_injected > 0


# -- the campaign service's shard path --------------------------------


def _run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


def test_service_batched_job_matches_fast_job(tmp_path, monkeypatch):
    """A figure5 job on the batched engine is byte-identical to fast.

    The service shards a job and runs each shard with ``jobs=1``; a
    shard whose cells all name the batched engine goes through the
    cohort pipeline.  The resulting records_json must match the fast
    engine's byte for byte — engine choice is an execution detail,
    never a result detail.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()
    from repro.harness.cache import ArtifactCache
    from repro.service import JobQueue, JobRequest, ServiceJournal

    params = {"benchmarks": ["compress"], "scale": 0.05,
              "levels": ["basic_block"]}

    async def scenario():
        cache = ArtifactCache(root=tmp_path / "cache")
        journal = ServiceJournal(tmp_path / "svc")
        queue = JobQueue(cache, journal, workers=2, executor="thread")
        await queue.start()
        try:
            results = {}
            for engine in ("fast", "batched"):
                req = JobRequest.from_payload({
                    "kind": "figure5",
                    "params": {**params, "engine": engine},
                })
                job = await queue.submit(req)
                job = await queue.wait(job.job_id, timeout=180)
                assert job.state == "done", job.state
                results[engine] = journal.read_result(job.job_id)
            return results
        finally:
            await queue.close()

    results = _run(scenario())
    assert results["batched"]["records_json"] == (
        results["fast"]["records_json"]
    )
    parsed = json.loads(results["batched"]["records_json"])
    assert len(parsed["records"]) == 4


# -- bench bookkeeping ------------------------------------------------


def test_bench_annotates_batched_speedup():
    """BENCH records carry both cross-engine wall-time ratios."""
    from repro.bench import _annotate_speedups, format_record

    def entry(engine, wall_s):
        return {"grid": "smoke", "engine": engine, "wall_s": wall_s,
                "cells": 1, "sim_cycles": 10,
                "cycles_per_s": 10 / wall_s}

    record = {"grids": {
        "smoke@fast": entry("fast", 4.0),
        "smoke@reference": entry("reference", 6.0),
        "smoke@batched": entry("batched", 2.0),
    }}
    _annotate_speedups(record)
    assert record["speedup"] == {"smoke": 1.5, "smoke:batched": 2.0}
    text = format_record(record)
    assert "batched vs fast" in text
    assert "fast vs reference" in text
