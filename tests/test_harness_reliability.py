"""Self-healing harness tests: resume, pool degradation, quarantine.

Companion to test_harness.py, covering the recovery machinery: ledger
replay (``--resume``), ``BrokenProcessPool`` degradation to serial
execution, checksum quarantine + ``cache doctor``, backoff jitter,
and ledger schema tolerance.
"""

import json
import multiprocessing
import os
import pickle
import random
import warnings

import pytest

from repro.compiler import HeuristicLevel
from repro.experiments import clear_cache
from repro.harness import (
    LEDGER_SCHEMA_VERSION,
    ArtifactCache,
    LedgerEntry,
    RunLedger,
    RunSpec,
    backoff_delay,
    completed_spec_hashes,
    read_ledger,
    run_specs,
)

SMALL = 0.1


@pytest.fixture(autouse=True)
def _fresh_compile_cache():
    clear_cache()
    yield
    clear_cache()


def grid_specs():
    """Four cells in two compile groups (two heuristic levels)."""
    return [
        RunSpec("compress", level, n_pus=n, scale=SMALL)
        for level in (HeuristicLevel.CONTROL_FLOW, HeuristicLevel.BASIC_BLOCK)
        for n in (2, 4)
    ]


# -- injectable fake workers (module-level so they are picklable) ------

def _pool_only_crash_worker(spec):
    """Kill the hosting process — but only inside a pool child.

    In the serial degradation path (main process) it succeeds, which
    is exactly the behaviour of a worker OOM-killed under memory
    pressure that fits fine when run alone.
    """
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return ("ok", spec.benchmark, spec.level.value, spec.n_pus)


class TestResume:
    def test_resume_executes_only_missing_cells(self, tmp_path):
        specs = grid_specs()
        cache = ArtifactCache(tmp_path, salt="s")
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        # First (interrupted) run finished only the first compile group.
        run_specs(specs[:2], jobs=1, cache=cache, ledger=ledger)
        clear_cache()

        run_specs(specs, jobs=1, cache=cache, ledger=ledger, resume=True)
        entries = read_ledger(tmp_path / "ledger.jsonl")
        labels = [e["cache"] for e in entries[2:]]
        assert sorted(labels) == ["miss", "miss", "resume", "resume"]
        done = completed_spec_hashes(tmp_path / "ledger.jsonl")
        assert {spec.spec_hash("s") for spec in specs} <= done

    def test_resume_with_no_prior_ledger_runs_everything(self, tmp_path):
        specs = grid_specs()[:2]
        cache = ArtifactCache(tmp_path, salt="s")
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        run_specs(specs, jobs=1, cache=cache, ledger=ledger, resume=True)
        entries = read_ledger(tmp_path / "ledger.jsonl")
        assert [e["cache"] for e in entries] == ["miss", "miss"]

    def test_failed_cells_are_not_resumed(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"spec_hash": "aaa", "outcome": "ok"}) + "\n")
            handle.write(json.dumps(
                {"spec_hash": "bbb", "outcome": "error"}) + "\n")
            handle.write(json.dumps(
                {"spec_hash": "ccc", "outcome": "timeout"}) + "\n")
        assert completed_spec_hashes(path) == {"aaa"}


class TestPoolDegradation:
    def test_broken_pool_finishes_serially(self, tmp_path):
        specs = grid_specs()
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        out = run_specs(specs, jobs=2, worker=_pool_only_crash_worker,
                        ledger=ledger)
        assert out == [
            ("ok", s.benchmark, s.level.value, s.n_pus) for s in specs
        ]
        entries = read_ledger(tmp_path / "ledger.jsonl")
        events = [e for e in entries if e.get("event") == "pool_broken"]
        assert len(events) == 1
        assert events[0]["degraded_groups"] >= 1
        finished = [e for e in entries if "spec_hash" in e]
        assert len(finished) == len(specs)
        assert all(e["outcome"] == "ok" for e in finished)

    def test_broken_pool_without_ledger_still_degrades(self):
        specs = grid_specs()[:2]
        out = run_specs(specs, jobs=2, worker=_pool_only_crash_worker)
        assert all(r[0] == "ok" for r in out)


class TestBackoff:
    def test_zero_base_means_no_delay(self):
        assert backoff_delay(0, 0.0) == 0.0
        assert backoff_delay(5, 0.0) == 0.0

    def test_delay_within_full_jitter_bounds(self):
        rng = random.Random(0)
        for attempt in range(8):
            delay = backoff_delay(attempt, 0.5, cap=2.0, rng=rng)
            assert 0.0 <= delay <= min(2.0, 0.5 * 2 ** attempt)

    def test_jitter_varies(self):
        rng = random.Random(1)
        delays = {backoff_delay(4, 1.0, cap=30.0, rng=rng)
                  for _ in range(16)}
        assert len(delays) > 1


class TestQuarantine:
    def _seed_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path, salt="s")
        specs = grid_specs()[:1]
        run_specs(specs, jobs=1, cache=cache)
        clear_cache()
        return cache, specs[0]

    def test_checksum_mismatch_quarantined_with_one_warning(self, tmp_path):
        cache, spec = self._seed_cache(tmp_path)
        for path in cache.records_dir.glob("*.pkl"):
            raw = bytearray(path.read_bytes())
            raw[-1] ^= 0xFF  # flip a payload byte under the checksum
            path.write_bytes(bytes(raw))
        fresh = ArtifactCache(tmp_path, salt="s")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert fresh.get_record(spec) is None
        assert fresh.stats()["quarantined"] == 1
        assert not list(cache.records_dir.glob("*.pkl"))

    def test_second_corruption_warns_only_once(self, tmp_path):
        cache, spec = self._seed_cache(tmp_path)
        for path in cache.records_dir.glob("*.pkl"):
            path.write_bytes(b"\x80garbage")
        for path in cache.compiled_dir.glob("*.pkl"):
            path.write_bytes(b"\x80garbage")
        fresh = ArtifactCache(tmp_path, salt="s")
        with pytest.warns(RuntimeWarning):
            fresh.get_record(spec)
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            fresh.get_compiled(spec)
        assert not [w for w in captured
                    if issubclass(w.category, RuntimeWarning)]
        assert fresh.stats()["quarantined"] == 2

    def test_legacy_entry_still_loads(self, tmp_path):
        cache, spec = self._seed_cache(tmp_path)
        record = cache.get_record(spec)
        path = cache.records_dir / f"{spec.spec_hash('s')}.pkl"
        path.write_bytes(pickle.dumps(record))  # pre-checksum format
        assert cache.get_record(spec) == record

    def test_doctor_upgrades_and_quarantines(self, tmp_path):
        cache, spec = self._seed_cache(tmp_path)
        legacy = cache.records_dir / "legacy.pkl"
        legacy.write_bytes(pickle.dumps({"x": 1}))
        corrupt = cache.compiled_dir / "corrupt.pkl"
        corrupt.write_bytes(b"\x80garbage")

        with pytest.warns(RuntimeWarning):
            report = cache.doctor()
        assert report["upgraded"] == 1
        assert report["quarantined"] == 1
        assert report["ok"] >= 1
        assert report["checked"] == (
            report["ok"] + report["upgraded"] + report["quarantined"]
            + report["stale"]
        )
        assert legacy.read_bytes().startswith(b"RPC1")
        assert not corrupt.exists()
        # A second pass finds a fully healthy store.
        second = cache.doctor()
        assert second["quarantined"] == 0 and second["upgraded"] == 0

    def test_clear_also_empties_quarantine(self, tmp_path):
        cache, spec = self._seed_cache(tmp_path)
        for path in cache.records_dir.glob("*.pkl"):
            path.write_bytes(b"\x80garbage")
        with pytest.warns(RuntimeWarning):
            ArtifactCache(tmp_path, salt="s").get_record(spec)
        cache.clear()
        assert cache.stats() == {
            "records": 0, "compiled": 0, "quarantined": 0, "bytes": 0,
            "records_bytes": 0, "compiled_bytes": 0,
            "ledger_lines": 0, "ledger_bytes": 0,
        }


class TestLedgerSchema:
    def test_entries_carry_schema_version(self, tmp_path):
        specs = grid_specs()[:1]
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        run_specs(specs, jobs=1, ledger=ledger)
        entries = read_ledger(tmp_path / "ledger.jsonl")
        assert entries
        assert all(
            e["schema_version"] == LEDGER_SCHEMA_VERSION for e in entries
        )

    def test_from_dict_tolerates_unknown_fields(self):
        entry = LedgerEntry.from_dict({
            "spec_hash": "abc", "outcome": "error",
            "schema_version": 99, "field_from_the_future": {"deep": True},
        })
        assert entry.spec_hash == "abc"
        assert entry.outcome == "error"
        assert entry.cache == "miss"  # neutral default for missing field

    def test_from_dict_survives_empty_payload(self):
        entry = LedgerEntry.from_dict({})
        assert entry.spec_hash == ""
        assert entry.error is None

    def test_event_lines_ignored_by_spec_readers(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.event("pool_broken", error="x", degraded_groups=2)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"spec_hash": "abc", "outcome": "ok"}) + "\n")
            handle.write("{torn line\n")
        assert completed_spec_hashes(path) == {"abc"}
        entries = read_ledger(path)
        assert len(entries) == 2  # the torn line is skipped, events kept
