"""Tests of the configuration objects (selection + machine)."""

import dataclasses

import pytest

from repro.compiler.heuristics import HeuristicLevel, SelectionConfig
from repro.sim.config import CacheConfig, ForwardPolicy, SimConfig


class TestSelectionConfig:
    def test_defaults_match_the_paper(self):
        config = SelectionConfig()
        assert config.max_targets == 4
        assert config.call_thresh == 30
        assert config.loop_thresh == 30

    def test_level_ranks_are_ordered(self):
        ranks = [level.rank for level in HeuristicLevel]
        assert ranks == sorted(ranks)
        assert HeuristicLevel.BASIC_BLOCK.rank < HeuristicLevel.TASK_SIZE.rank

    @pytest.mark.parametrize(
        "level,multi,dep,size",
        [
            (HeuristicLevel.BASIC_BLOCK, False, False, False),
            (HeuristicLevel.CONTROL_FLOW, True, False, False),
            (HeuristicLevel.DATA_DEPENDENCE, True, True, False),
            (HeuristicLevel.TASK_SIZE, True, True, True),
        ],
    )
    def test_flag_derivation(self, level, multi, dep, size):
        config = SelectionConfig(level=level)
        assert config.multi_block is multi
        assert config.use_data_dependence is dep
        assert config.use_task_size is size

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectionConfig(max_targets=0)
        with pytest.raises(ValueError):
            SelectionConfig(max_unroll=0)

    def test_frozen(self):
        config = SelectionConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.max_targets = 8


class TestSimConfig:
    def test_defaults_match_section_4_2(self):
        config = SimConfig()
        assert config.issue_width == 2
        assert config.rob_size == 16
        assert config.issue_list_size == 8
        assert config.int_units == 2
        assert config.fp_units == 1
        assert config.sync_table_size == 256
        assert config.l2.hit_latency == 12
        assert config.memory_latency == 58
        assert config.ring_bandwidth == 2

    def test_scaled_for_pus_resizes_l1(self):
        base = SimConfig()
        four = base.scaled_for_pus(4)
        eight = base.scaled_for_pus(8)
        assert four.l1d.size_bytes == 64 * 1024
        assert eight.l1d.size_bytes == 128 * 1024
        assert eight.n_pus == 8
        # Other parameters carry over.
        assert eight.rob_size == base.rob_size

    def test_scaled_preserves_overrides(self):
        base = SimConfig(sync_table_size=0, out_of_order=False)
        scaled = base.scaled_for_pus(8)
        assert scaled.sync_table_size == 0
        assert scaled.out_of_order is False

    def test_validation(self):
        with pytest.raises(ValueError):
            SimConfig(n_pus=0)
        with pytest.raises(ValueError):
            SimConfig(issue_width=0)
        with pytest.raises(ValueError):
            SimConfig(rob_size=0)

    def test_cache_sets(self):
        cache = CacheConfig(size_bytes=64 * 1024, assoc=2, line_bytes=32,
                            hit_latency=1)
        assert cache.sets == 1024

    def test_forward_policy_values(self):
        assert {p.value for p in ForwardPolicy} == {
            "schedule", "eager", "lazy"
        }
