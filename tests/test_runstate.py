"""Unit tests for the simulator's preprocessed run state."""

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.ir.interp import run_program
from repro.sim.config import ForwardPolicy, SimConfig
from repro.sim.runstate import RunState
from repro.sim.taskstream import build_task_stream
from tests.conftest import build_diamond_loop


@pytest.fixture
def stream():
    part = select_tasks(
        build_diamond_loop(),
        SelectionConfig(level=HeuristicLevel.CONTROL_FLOW),
    )
    trace = run_program(part.program)
    return build_task_stream(trace, part)


class TestProducers:
    def test_register_producers_point_to_last_writer(self, stream):
        state = RunState(stream, SimConfig())
        trace = stream.trace
        last = {}
        for i, dyn in enumerate(trace):
            expected = tuple(sorted({last[r] for r in dyn.reads if r in last}))
            assert state.producers[i] == expected
            if dyn.write:
                last[dyn.write] = i

    def test_memory_producers(self, stream):
        state = RunState(stream, SimConfig())
        trace = stream.trace
        last_store = {}
        for i, dyn in enumerate(trace):
            if state.is_load[i]:
                assert state.mem_producer[i] == last_store.get(dyn.addr, -1)
            if state.is_store[i]:
                last_store[dyn.addr] = i

    def test_task_seq_matches_spans(self, stream):
        state = RunState(stream, SimConfig())
        for dyn_task in stream:
            for i in range(dyn_task.start, dyn_task.end):
                assert state.task_seq[i] == dyn_task.seq

    def test_remote_consumer_flags(self, stream):
        state = RunState(stream, SimConfig())
        for i, prods in enumerate(state.producers):
            for p in prods:
                if state.task_seq[p] != state.task_seq[i]:
                    assert state.has_remote_consumer[p]


class TestReleaseFlags:
    def test_eager_releases_every_write(self, stream):
        state = RunState(
            stream, SimConfig(forward_policy=ForwardPolicy.EAGER)
        )
        for i in range(len(stream.trace)):
            if state.has_write[i]:
                assert state.release_now[i]

    def test_lazy_releases_nothing(self, stream):
        state = RunState(stream, SimConfig(forward_policy=ForwardPolicy.LAZY))
        assert not any(state.release_now)

    def test_schedule_is_between(self, stream):
        state = RunState(
            stream, SimConfig(forward_policy=ForwardPolicy.SCHEDULE)
        )
        released = sum(state.release_now)
        writes = sum(state.has_write)
        assert 0 < released <= writes


class TestMutableState:
    def test_clear_span_resets_and_bumps_generation(self, stream):
        state = RunState(stream, SimConfig())
        dyn_task = stream.tasks[1]
        for i in range(dyn_task.start, dyn_task.end):
            state.complete[i] = 5
            state.forward[i] = 6
        gen = state.generation[1]
        state.clear_span(1)
        assert state.generation[1] == gen + 1
        assert all(
            state.complete[i] == -1 and state.forward[i] == -1
            for i in range(dyn_task.start, dyn_task.end)
        )

    def test_gshare_stats_exposed(self, stream):
        state = RunState(stream, SimConfig())
        assert state.branch_count == sum(
            1 for d in stream.trace if d.op.is_branch
        )
        assert 0.0 <= state.gshare_accuracy <= 1.0
