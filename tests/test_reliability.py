"""Tests of the reliability subsystem: oracle, monitors, fault plans."""

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.experiments import clear_cache
from repro.ir.interp import run_program
from repro.reliability import (
    ArchState,
    FaultPlan,
    InvariantMonitor,
    InvariantViolation,
    check_commit_log,
    compare_states,
    replay_commits,
    sequential_reference,
    verify_grid,
    verify_workload,
)
from repro.sim import MultiscalarMachine, SimConfig, build_task_stream
from tests.conftest import build_diamond_loop

SMALL = 0.1


@pytest.fixture(autouse=True)
def _fresh_compile_cache():
    clear_cache()
    yield
    clear_cache()


def monitored_run(program, level=HeuristicLevel.CONTROL_FLOW, n_pus=4,
                  **sim_kwargs):
    """Run a hand-built program with the monitor riding along."""
    part = select_tasks(program, SelectionConfig(level=level))
    trace = run_program(part.program)
    stream = build_task_stream(trace, part)
    monitor = InvariantMonitor()
    machine = MultiscalarMachine(
        stream, SimConfig(n_pus=n_pus, **sim_kwargs), monitor=monitor
    )
    result = machine.run()
    return part.program, trace, monitor, result


class TestDifferentialOracle:
    @pytest.mark.parametrize("level", list(HeuristicLevel))
    def test_all_levels_verify_clean(self, level):
        report = verify_workload("compress", level, scale=SMALL)
        assert report.ok, report.summary()
        assert report.instructions > 0
        assert report.invariant_checks > 0

    def test_hand_program_replay_matches_sequential(self, diamond_loop):
        program, trace, monitor, result = monitored_run(diamond_loop)
        assert not check_commit_log(monitor.commit_log, len(trace))
        ref_trace, ref_state = sequential_reference(program)
        replay_state, divergences = replay_commits(
            program, trace, monitor.commit_log
        )
        assert not divergences
        assert not compare_states(ref_state, replay_state)
        assert replay_state.retired_instructions == len(trace)

    def test_reordered_commit_log_is_detected(self, diamond_loop):
        _, trace, monitor, _ = monitored_run(diamond_loop)
        log = list(monitor.commit_log)
        tampered = [log[1], log[0]] + log[2:]
        problems = check_commit_log(tampered, len(trace))
        assert problems
        assert any("commit order" in p for p in problems)

    def test_truncated_commit_log_is_detected(self, diamond_loop):
        _, trace, monitor, _ = monitored_run(diamond_loop)
        problems = check_commit_log(monitor.commit_log[:-1], len(trace))
        assert any("covers" in p for p in problems)

    def test_double_commit_diverges_in_replay(self, diamond_loop):
        program, trace, monitor, _ = monitored_run(diamond_loop)
        log = list(monitor.commit_log)
        duplicated = log + [log[-1]]
        replay_state, _ = replay_commits(program, trace, duplicated)
        _, ref_state = sequential_reference(program)
        assert compare_states(ref_state, replay_state)

    def test_compare_states_reports_concrete_diffs(self):
        a = ArchState(int_regs={"r1": 1}, memory={100: 5},
                      retired_instructions=10)
        b = ArchState(int_regs={"r1": 2}, memory={100: 5},
                      retired_instructions=10)
        diffs = compare_states(a, b)
        assert len(diffs) == 1
        assert "int_reg[r1]" in diffs[0]

    def test_compare_states_treats_nan_as_equal_to_nan(self):
        """Two executions ending with NaN in the same register agree
        architecturally even though ``nan != nan`` (found by fuzzing:
        FP-heavy generated programs produced spurious divergences on
        byte-identical final states)."""
        nan = float("nan")
        a = ArchState(fp_regs={"f1": nan}, memory={8: nan},
                      retired_instructions=10)
        b = ArchState(fp_regs={"f1": nan}, memory={8: nan},
                      retired_instructions=10)
        assert compare_states(a, b) == []
        # NaN vs a real number is still a divergence
        c = ArchState(fp_regs={"f1": 1.0}, memory={8: nan},
                      retired_instructions=10)
        diffs = compare_states(a, c)
        assert len(diffs) == 1
        assert "fp_reg[f1]" in diffs[0]

    def test_verify_grid_covers_requested_cells(self):
        reports = verify_grid(
            ["compress"], levels=(HeuristicLevel.CONTROL_FLOW,), scale=SMALL
        )
        assert len(reports) == 1
        assert reports[0].ok, reports[0].summary()

    def test_verify_fixture(self, verify_oracle):
        report = verify_oracle(
            "compress", HeuristicLevel.TASK_SIZE, scale=SMALL
        )
        assert report.dynamic_tasks > 0


class TestFaultInjection:
    def test_faulted_run_stays_equivalent(self):
        report = verify_workload(
            "compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL,
            faults=20, seed=11,
        )
        assert report.ok, report.summary()
        assert report.faults_injected > 0

    def test_faults_cost_cycles_not_semantics(self):
        clean = verify_workload(
            "compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL
        )
        faulted = verify_workload(
            "compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL,
            faults=30, seed=5,
        )
        assert faulted.ok, faulted.summary()
        assert faulted.instructions == clean.instructions
        assert faulted.cycles >= clean.cycles

    def test_injected_events_feed_machine_counters(self):
        report = verify_workload(
            "compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL,
            faults=20, seed=11,
        )
        assert report.memory_squashes >= report.injected_memory
        assert report.control_squashes >= report.injected_control

    def test_plan_is_deterministic_per_seed(self):
        a, b = FaultPlan(seed=42, faults=10), FaultPlan(seed=42, faults=10)
        a.bind(200)
        b.bind(200)
        assert a._control_targets == b._control_targets
        assert a._memory_budget == b._memory_budget

    def test_plan_budget_is_capped_by_stream(self):
        plan = FaultPlan(seed=1, faults=100)
        plan.bind(5)  # only tasks 0..3 predict a successor
        assert len(plan._control_targets) <= 4
        assert len(plan._control_targets) + plan._memory_budget == 100

    def test_zero_budget_injects_nothing(self):
        report = verify_workload(
            "compress", HeuristicLevel.CONTROL_FLOW, scale=SMALL,
            faults=0,
        )
        assert report.faults_injected == 0


class TestInvariantMonitor:
    def test_out_of_order_retire_raises(self, diamond_loop):
        part = select_tasks(
            diamond_loop, SelectionConfig(level=HeuristicLevel.CONTROL_FLOW)
        )
        trace = run_program(part.program)
        stream = build_task_stream(trace, part)
        monitor = InvariantMonitor()
        MultiscalarMachine(stream, SimConfig(), monitor=monitor)
        with pytest.raises(InvariantViolation, match=r"\[I1\]"):
            monitor.on_retire(1, 0)

    def test_unassigned_squash_victim_raises(self, diamond_loop):
        part = select_tasks(
            diamond_loop, SelectionConfig(level=HeuristicLevel.CONTROL_FLOW)
        )
        trace = run_program(part.program)
        stream = build_task_stream(trace, part)
        monitor = InvariantMonitor()
        MultiscalarMachine(stream, SimConfig(), monitor=monitor)
        with pytest.raises(InvariantViolation, match=r"\[I3\]"):
            monitor.on_squash_victim(3, 0, 10, 10, memory=True)

    def test_wrong_penalty_raises(self, diamond_loop):
        part = select_tasks(
            diamond_loop, SelectionConfig(level=HeuristicLevel.CONTROL_FLOW)
        )
        trace = run_program(part.program)
        stream = build_task_stream(trace, part)
        monitor = InvariantMonitor()
        machine = MultiscalarMachine(stream, SimConfig(), monitor=monitor)
        machine._assign(0)
        with pytest.raises(InvariantViolation, match=r"\[I4\]"):
            monitor.on_squash_victim(
                0, machine.state.pu_of_seq[0], 10, 99, memory=False
            )

    def test_clean_runs_raise_nothing(self, call_program):
        _, trace, monitor, result = monitored_run(call_program)
        assert result.committed_instructions == len(trace)
        assert monitor.retired_tasks == result.dynamic_tasks
        assert all(monitor.committed)
