"""Regression guards: headline shapes pinned with loose bounds.

These are intentionally tolerant (wide brackets) — they exist to catch
refactors that silently break a paper-level result, not to freeze
exact cycle counts.
"""

import pytest

from repro.compiler import HeuristicLevel
from repro.experiments import clear_cache, run_benchmark

SCALE = 0.3


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_compress_heuristic_gain_bracket():
    bb = run_benchmark("compress", HeuristicLevel.BASIC_BLOCK, 4, True, SCALE)
    dd = run_benchmark(
        "compress", HeuristicLevel.DATA_DEPENDENCE, 4, True, SCALE
    )
    gain = dd.ipc / bb.ipc
    assert 1.05 < gain < 2.5, f"compress gain drifted to {gain:.2f}x"


def test_hydro2d_large_gain_bracket():
    bb = run_benchmark("hydro2d", HeuristicLevel.BASIC_BLOCK, 4, True, SCALE)
    dd = run_benchmark(
        "hydro2d", HeuristicLevel.DATA_DEPENDENCE, 4, True, SCALE
    )
    gain = dd.ipc / bb.ipc
    assert 1.5 < gain < 5.0, f"hydro2d gain drifted to {gain:.2f}x"


def test_fpppp_responds_to_task_size():
    dd = run_benchmark("fpppp", HeuristicLevel.DATA_DEPENDENCE, 8, True, SCALE)
    ts = run_benchmark("fpppp", HeuristicLevel.TASK_SIZE, 8, True, SCALE)
    assert ts.ipc > dd.ipc * 1.1, (
        f"fpppp stopped responding to the task size heuristic "
        f"({dd.ipc:.2f} -> {ts.ipc:.2f})"
    )


def test_m88ksim_task_prediction_excellent():
    cf = run_benchmark("m88ksim", HeuristicLevel.CONTROL_FLOW, 8, True, SCALE)
    assert cf.task_prediction_accuracy > 0.97


def test_go_task_prediction_harder_than_loops():
    go = run_benchmark("go", HeuristicLevel.CONTROL_FLOW, 8, True, SCALE)
    wave = run_benchmark("wave5", HeuristicLevel.CONTROL_FLOW, 8, True, SCALE)
    assert go.task_prediction_accuracy < wave.task_prediction_accuracy


def test_task_sizes_in_expected_regimes():
    li = run_benchmark("li", HeuristicLevel.BASIC_BLOCK, 4, True, 1.0)
    assert li.mean_task_size < 6, "li basic blocks should be tiny"
    swim = run_benchmark("swim", HeuristicLevel.CONTROL_FLOW, 4, True, SCALE)
    assert swim.mean_task_size > 20, "swim loop tasks should be large"


def test_window_span_regime():
    dd = run_benchmark("tomcatv", HeuristicLevel.DATA_DEPENDENCE, 8, True,
                       SCALE)
    assert 80 < dd.window_span_formula < 400


def test_ipc_sane_everywhere():
    for name in ("compress", "li", "tomcatv"):
        for level in HeuristicLevel:
            rec = run_benchmark(name, level, 4, True, SCALE)
            assert 0.05 < rec.ipc < 8.0
