"""Edge-case and failure-injection tests for the timing simulator."""

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.ir import IRBuilder
from repro.ir.interp import run_program
from repro.sim import SimConfig, build_task_stream, simulate
from repro.sim.machine import MultiscalarMachine, SimulationStuck
from tests.conftest import build_diamond_loop, build_straightline


def stream_for(program, level=HeuristicLevel.CONTROL_FLOW):
    part = select_tasks(program, SelectionConfig(level=level))
    trace = run_program(part.program)
    return build_task_stream(trace, part)


class TestDegenerateMachines:
    def test_single_instruction_program(self):
        b = IRBuilder()
        with b.function("main"):
            b.halt()
        stream = stream_for(b.build())
        result = simulate(stream, SimConfig(n_pus=4))
        assert result.committed_instructions == 1
        assert result.dynamic_tasks == 1

    def test_single_task_program(self, straightline):
        stream = stream_for(straightline)
        assert len(stream) == 1
        result = simulate(stream, SimConfig(n_pus=8))
        assert result.committed_instructions == len(stream.trace)

    def test_rob_of_one(self, diamond_loop):
        stream = stream_for(diamond_loop)
        result = simulate(stream, SimConfig(n_pus=2, rob_size=1,
                                            issue_list_size=1))
        assert result.committed_instructions == len(stream.trace)

    def test_issue_width_one(self, diamond_loop):
        stream = stream_for(diamond_loop)
        narrow = simulate(stream, SimConfig(n_pus=4, issue_width=1))
        wide = simulate(stream, SimConfig(n_pus=4, issue_width=4))
        assert narrow.cycles >= wide.cycles

    def test_many_pus_few_tasks(self, straightline):
        stream = stream_for(straightline)
        result = simulate(stream, SimConfig(n_pus=16))
        assert result.committed_instructions == len(stream.trace)
        # 15 PUs sit idle the whole run.
        assert result.breakdown.per_reason is not None

    def test_zero_overheads(self, diamond_loop):
        stream = stream_for(diamond_loop)
        result = simulate(
            stream,
            SimConfig(n_pus=4, task_start_overhead=0, task_end_overhead=0),
        )
        assert result.committed_instructions == len(stream.trace)

    def test_max_cycles_guard(self, diamond_loop):
        stream = stream_for(diamond_loop)
        machine = MultiscalarMachine(stream, SimConfig(n_pus=4, max_cycles=3))
        with pytest.raises(SimulationStuck):
            machine.run()


class TestRingParameters:
    def test_tiny_ring_bandwidth_slows_communication(self, diamond_loop):
        stream = stream_for(diamond_loop)
        slow = simulate(stream, SimConfig(n_pus=4, ring_bandwidth=1))
        fast = simulate(stream, SimConfig(n_pus=4, ring_bandwidth=8))
        assert slow.cycles >= fast.cycles

    def test_expensive_hops_slow_communication(self, diamond_loop):
        stream = stream_for(diamond_loop)
        near = simulate(stream, SimConfig(n_pus=4, ring_hop_latency=0))
        far = simulate(stream, SimConfig(n_pus=4, ring_hop_latency=6))
        assert far.cycles >= near.cycles


class TestMemoryParameters:
    def test_slow_memory_costs_cycles(self, diamond_loop):
        # diamond_loop touches little memory; use a loads-heavy one.
        b = IRBuilder()
        with b.function("main"):
            b.li("r1", 0)
            body = b.new_label("body")
            done = b.new_label("done")
            b.jump(body)
            with b.block(body):
                b.muli("r8", "r1", 64)  # new cache line every iteration
                b.addi("r8", "r8", 5000)
                b.load("r9", "r8", 0)
                b.add("r16", "r16", "r9")
                b.addi("r1", "r1", 1)
                b.slti("r9", "r1", 60)
                b.bnez("r9", body, fallthrough=done)
            with b.block(done):
                b.halt()
        stream = stream_for(b.build())
        fast = simulate(stream, SimConfig(n_pus=2, memory_latency=5))
        slow = simulate(stream, SimConfig(n_pus=2, memory_latency=300))
        assert slow.cycles > fast.cycles

    def test_branch_penalty_scales(self):
        # An unpredictable branch stream amplifies the bubble cost.
        b = IRBuilder()
        with b.function("main"):
            b.li("r1", 0)
            b.li("r26", 99)
            body = b.new_label("body")
            a = b.new_label("a")
            j = b.new_label("j")
            done = b.new_label("done")
            b.jump(body)
            with b.block(body):
                b.muli("r27", "r26", 1103515245)
                b.addi("r27", "r27", 12345)
                b.andi("r26", "r27", 0x7FFFFFFF)
                b.shr("r9", "r26", 9)
                b.andi("r9", "r9", 1)
                b.bnez("r9", a, fallthrough=j)
            with b.block(a):
                b.addi("r16", "r16", 1)
            with b.block(j):
                b.addi("r1", "r1", 1)
                b.slti("r9", "r1", 80)
                b.bnez("r9", body, fallthrough=done)
            with b.block(done):
                b.halt()
        stream = stream_for(b.build())
        cheap = simulate(stream, SimConfig(n_pus=2,
                                           branch_mispredict_penalty=1))
        costly = simulate(stream, SimConfig(n_pus=2,
                                            branch_mispredict_penalty=12))
        assert costly.cycles > cheap.cycles


class TestResultInvariants:
    @pytest.mark.parametrize("n_pus", [1, 2, 4, 8])
    def test_committed_instructions_invariant(self, diamond_loop, n_pus):
        stream = stream_for(diamond_loop)
        result = simulate(stream, SimConfig(n_pus=n_pus))
        assert result.committed_instructions == len(stream.trace)

    def test_cache_stats_reported(self):
        b = IRBuilder()
        with b.function("main"):
            b.load("r1", "r0", 123)
            b.load("r2", "r0", 456)
            b.halt()
        stream = stream_for(b.build())
        result = simulate(stream, SimConfig(n_pus=4))
        # Loads touch the D-side; instruction fetch touches the I-side.
        assert result.cache_stats["l1d_accesses"] > 0
        assert result.cache_stats["l1i_accesses"] > 0

    def test_task_accuracy_in_unit_range(self, diamond_loop):
        stream = stream_for(diamond_loop)
        result = simulate(stream, SimConfig(n_pus=4))
        assert 0.0 <= result.task_prediction_accuracy <= 1.0
        assert 0.0 <= result.gshare_accuracy <= 1.0
