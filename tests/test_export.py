"""Tests for partition JSON / DOT exports."""

import json

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.compiler.export import partition_to_dot, partition_to_json
from repro.profiling import profile_program
from tests.conftest import build_diamond_loop


def make_partition(level=HeuristicLevel.CONTROL_FLOW):
    return select_tasks(build_diamond_loop(), SelectionConfig(level=level))


class TestJson:
    def test_valid_json_with_all_tasks(self):
        part = make_partition()
        payload = json.loads(partition_to_json(part))
        assert payload["task_count"] == len(part)
        assert len(payload["tasks"]) == len(part)

    def test_task_fields(self):
        part = make_partition()
        payload = json.loads(partition_to_json(part))
        loop_task = next(
            t for t in payload["tasks"] if t["root"] == ["main", "body_1"]
        )
        assert loop_task["static_size"] > 0
        assert ["main", "join_4"] in loop_task["blocks"]
        assert any("block:main:done_5" in t for t in loop_task["targets"])

    def test_profile_counts_included(self):
        part = make_partition()
        profile = profile_program(part.program)
        payload = json.loads(partition_to_json(part, profile))
        loop_task = next(
            t for t in payload["tasks"] if t["root"] == ["main", "body_1"]
        )
        assert loop_task["dynamic_block_counts"]["main:body_1"] == 50

    def test_deterministic(self):
        part = make_partition()
        assert partition_to_json(part) == partition_to_json(part)


class TestDot:
    def test_structure(self):
        part = make_partition()
        dot = partition_to_dot(part)
        assert dot.startswith("digraph partition {")
        assert dot.rstrip().endswith("}")
        assert dot.count("subgraph cluster_task") == len(part)
        assert "style=dashed" in dot  # inter-task edges

    def test_function_filter(self):
        part = make_partition()
        dot_all = partition_to_dot(part)
        dot_main = partition_to_dot(part, function="main")
        assert dot_main.count("subgraph") == dot_all.count("subgraph")
        dot_none = partition_to_dot(part, function="ghost")
        assert "subgraph" not in dot_none

    def test_root_marked_bold(self):
        part = make_partition()
        dot = partition_to_dot(part)
        assert "style=bold" in dot

    def test_quoting_safe(self):
        part = make_partition()
        dot = partition_to_dot(part)
        # Every label is quoted; no bare special characters leak.
        for line in dot.splitlines():
            assert "\t" not in line
