"""Delta-debugging reducer: minimality, viability, safety rails."""

from __future__ import annotations

import pytest

from repro.ir import Opcode, parse_program, program_to_text, well_formed
from repro.ir.interp import run_program
from repro.synth import generate_program
from repro.synth.reduce import ReduceStats, count_blocks, reduce_program


def _has_op(program, opcode) -> bool:
    return any(
        ins.opcode is opcode
        for f in program.functions()
        for b in f.blocks()
        for ins in b.instructions
    )


def test_reduces_to_minimal_reproducer():
    program = generate_program(1_000_003)
    assert _has_op(program, Opcode.MUL)
    stats = ReduceStats()
    reduced = reduce_program(
        program, lambda p: _has_op(p, Opcode.MUL), stats=stats
    )
    assert _has_op(reduced, Opcode.MUL)
    assert count_blocks(reduced) <= 4
    assert reduced.size < program.size / 4
    assert stats.accepted > 0
    assert stats.final_blocks == count_blocks(reduced)


def test_reduced_program_stays_viable():
    program = generate_program(7)
    reduced = reduce_program(program, lambda p: _has_op(p, Opcode.STORE))
    reduced.validate()
    assert well_formed(reduced) == []
    run_program(reduced, max_instructions=200_000)  # halts
    # and round-trips: the reproducer is shareable as text
    text = program_to_text(reduced)
    assert program_to_text(parse_program(text)) == text


def test_drops_uninvolved_functions():
    program = generate_program(1)
    assert sum(1 for _ in program.functions()) > 1
    reduced = reduce_program(
        program,
        lambda p: _has_op(p.main if False else p, Opcode.HALT),
    )
    # HALT lives in main; every helper should be gone
    assert [f.name for f in reduced.functions()] == ["main"]


def test_rejects_uninteresting_input():
    program = generate_program(3)
    with pytest.raises(ValueError):
        reduce_program(program, lambda p: False)


def test_input_is_never_modified():
    program = generate_program(9)
    before = program_to_text(program)
    reduce_program(program, lambda p: _has_op(p, Opcode.HALT))
    assert program_to_text(program) == before
