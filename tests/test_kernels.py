"""Tests for the workload kernel-emission helpers."""

import pytest

from repro.ir import IRBuilder
from repro.ir.interp import Interpreter
from repro.workloads.kernels import (
    counted_loop_imm,
    fp_chain,
    if_then_else,
    lcg_next,
    lcg_seed,
    store_array_init,
    switch_chain,
)


def run_main(emit):
    b = IRBuilder()
    with b.function("main"):
        emit(b)
        b.halt()
    interp = Interpreter(b.build(), max_instructions=100_000)
    interp.run()
    return interp


class TestCountedLoop:
    @pytest.mark.parametrize("trips", [0, 1, 7])
    def test_trip_count(self, trips):
        def emit(b):
            b.li("r16", 0)

            def body(bb):
                bb.addi("r16", "r16", 1)

            counted_loop_imm(b, "r1", 0, trips, body)
            b.store("r16", "r0", 100)

        interp = run_main(emit)
        assert interp.memory[100] == trips

    def test_step(self):
        def emit(b):
            b.li("r16", 0)

            def body(bb):
                bb.addi("r16", "r16", 1)

            counted_loop_imm(b, "r1", 0, 10, body, step=3)
            b.store("r16", "r0", 100)

        interp = run_main(emit)
        assert interp.memory[100] == 4  # 0, 3, 6, 9


class TestIfThenElse:
    def test_both_arms(self):
        def emit(b):
            b.li("r9", 1)
            if_then_else(
                b,
                "r9",
                lambda bb: bb.li("r16", 10),
                lambda bb: bb.li("r16", 20),
            )
            b.store("r16", "r0", 100)
            b.li("r9", 0)
            if_then_else(
                b,
                "r9",
                lambda bb: bb.li("r17", 10),
                lambda bb: bb.li("r17", 20),
            )
            b.store("r17", "r0", 101)

        interp = run_main(emit)
        assert interp.memory[100] == 10
        assert interp.memory[101] == 20

    def test_then_only(self):
        def emit(b):
            b.li("r16", 5)
            b.li("r9", 0)
            if_then_else(b, "r9", lambda bb: bb.li("r16", 99))
            b.store("r16", "r0", 100)

        interp = run_main(emit)
        assert interp.memory[100] == 5


class TestSwitchChain:
    @pytest.mark.parametrize("selector", [0, 1, 2, 3])
    def test_dispatch(self, selector):
        def emit(b):
            b.li("r10", selector)
            cases = [
                (lambda v: lambda bb: bb.li("r16", v))(100 + i)
                for i in range(4)
            ]
            switch_chain(b, "r10", cases)
            b.store("r16", "r0", 100)

        interp = run_main(emit)
        assert interp.memory[100] == 100 + selector

    def test_last_case_is_default(self):
        def emit(b):
            b.li("r10", 77)  # out of range -> default
            switch_chain(
                b,
                "r10",
                [lambda bb: bb.li("r16", 1), lambda bb: bb.li("r16", 2)],
            )
            b.store("r16", "r0", 100)

        interp = run_main(emit)
        assert interp.memory[100] == 2


class TestLcg:
    def test_matches_host_stream(self):
        from repro.workloads.kernels import host_lcg

        def emit(b):
            lcg_seed(b, "r26", 7)
            for i in range(5):
                lcg_next(b, "r8", "r26")
                b.store("r8", "r0", 100 + i)

        interp = run_main(emit)
        rng = host_lcg(7)
        assert [interp.memory[100 + i] for i in range(5)] == [
            rng() for _ in range(5)
        ]


class TestFpChainAndInit:
    def test_fp_chain_emits_requested_length(self):
        b = IRBuilder()
        with b.function("main"):
            b.fli("f12", 1.0)
            b.fli("f8", 0.5)
            before = b.program.main.entry.size
            fp_chain(b, 6)
            after = b.program.main.entry.size
            b.halt()
        assert after - before == 6

    def test_store_array_init(self):
        def emit(b):
            def value(bb, dst):
                bb.muli(dst, "r3", 2)

            store_array_init(b, base=500, count=4, value_fn=value)

        interp = run_main(emit)
        assert [interp.memory[500 + i] for i in range(4)] == [0, 2, 4, 6]
