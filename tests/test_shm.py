"""Shared-memory packed-trace transport (harness warm-start path).

The scheduler exports a warm compilation's packed arrays into a
``multiprocessing.shared_memory`` segment so pool workers skip the
packing pass.  Everything here must degrade gracefully — a missing
segment, a stale token, a platform without POSIX shared memory all
fall back to local packing — and an adopted trace must drive a run to
exactly the same result as a locally packed one.
"""

import pytest

from repro.compiler import HeuristicLevel
from repro.experiments.runner import (
    clear_cache,
    compile_benchmark,
    compile_cache_key,
    offer_packed,
)
from repro.harness import shm
from repro.harness.shm import (
    ENCODING_VERSION,
    attach_packed,
    decode_packed,
    encode_packed,
    export_packed,
    release_segment,
)
from repro.sim import MultiscalarMachine, SimConfig

SMALL = 0.1

#: every array/scalar field the packed encoding must round-trip
_PACKED_FIELDS = (
    "n", "opcls", "latency", "is_load", "is_store", "is_mem",
    "is_cond_branch", "block_start", "has_write", "has_remote_consumer",
    "gshare_mispred", "cross_consumer", "issue_simple", "pc", "addr",
    "producers", "mem_producer", "task_seq", "consumer_seqs",
    "gshare_predictions", "gshare_accuracy",
)


def _packed():
    compiled = compile_benchmark(
        "compress", HeuristicLevel.TASK_SIZE, scale=SMALL
    )
    return compiled, compiled.stream.packed


def test_encode_decode_roundtrips_every_field():
    _, packed = _packed()
    clone = decode_packed(encode_packed(packed))
    for name in _PACKED_FIELDS:
        assert getattr(clone, name) == getattr(packed, name), (
            f"field {name} did not round-trip"
        )
    # the clone is unadopted until build_task_stream binds it
    assert clone._stream is None


def test_decode_rejects_other_versions():
    _, packed = _packed()
    blob = encode_packed(packed)
    bad = blob.replace(
        f'"version": {ENCODING_VERSION}'.encode(),
        f'"version": {ENCODING_VERSION + 1}'.encode(),
        1,
    )
    with pytest.raises(ValueError):
        decode_packed(bad)


def test_export_attach_release_cycle():
    _, packed = _packed()
    segment, token = export_packed(packed)
    if segment is None:
        pytest.skip("shared memory unavailable on this platform")
    try:
        clone = attach_packed(token)
        assert clone is not None
        assert clone.n == packed.n
        assert clone.task_seq == packed.task_seq
    finally:
        release_segment(segment)
    # after unlink the token is stale: attach falls back to None
    assert attach_packed(token) is None


def test_attach_tolerates_garbage_tokens():
    assert attach_packed(None) is None
    assert attach_packed({}) is None
    assert attach_packed({"name": "no-such-segment", "size": 1}) is None
    assert attach_packed({"size": 64}) is None


def test_export_unavailable_platform_falls_back(monkeypatch):
    _, packed = _packed()
    monkeypatch.setattr(shm, "shared_memory", None)
    assert export_packed(packed) == (None, None)
    assert attach_packed({"name": "x", "size": 1}) is None


def test_adopted_arrays_drive_identical_runs():
    """A compile that adopts donated arrays simulates identically."""
    compiled, packed = _packed()
    blob = encode_packed(packed)
    baseline = MultiscalarMachine(
        compiled.stream, SimConfig().scaled_for_pus(4), compiled.release
    ).run()

    clear_cache()
    key = compile_cache_key("compress", HeuristicLevel.TASK_SIZE, SMALL)
    offer_packed(key, decode_packed(blob))
    adopted = compile_benchmark(
        "compress", HeuristicLevel.TASK_SIZE, scale=SMALL
    )
    # the donated arrays were adopted, not re-packed
    assert adopted.stream._packed is not packed
    assert adopted.stream._packed._stream is adopted.stream
    result = MultiscalarMachine(
        adopted.stream, SimConfig().scaled_for_pus(4), adopted.release
    ).run()
    assert result.cycles == baseline.cycles
    assert result.breakdown == baseline.breakdown
    clear_cache()


def test_offer_is_ignored_when_cache_is_warm():
    """A warm in-process compile never swaps its arrays mid-flight."""
    compiled, packed = _packed()
    key = compile_cache_key("compress", HeuristicLevel.TASK_SIZE, SMALL)
    donated = decode_packed(encode_packed(packed))
    offer_packed(key, donated)
    again = compile_benchmark(
        "compress", HeuristicLevel.TASK_SIZE, scale=SMALL
    )
    assert again is compiled
    assert again.stream._packed is packed
