"""Integration tests of the full task-selection driver."""

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.compiler.task import TargetKind
from repro.compiler.task_size import absorbed_functions, recursive_functions
from repro.ir import IRBuilder
from repro.profiling import profile_program
from tests.conftest import (
    build_call_program,
    build_diamond_loop,
    build_straightline,
)

ALL_LEVELS = list(HeuristicLevel)


class TestLevels:
    @pytest.mark.parametrize("level", ALL_LEVELS)
    def test_partition_validates(self, level):
        part = select_tasks(build_diamond_loop(), SelectionConfig(level=level))
        part.validate()

    def test_basic_block_roots_every_block(self):
        prog = build_diamond_loop()
        part = select_tasks(
            prog, SelectionConfig(level=HeuristicLevel.BASIC_BLOCK)
        )
        # Hoisting is disabled at the basic block level, so labels match.
        assert len(part) == len(list(prog.main.blocks()))
        assert all(t.block_count == 1 for t in part.tasks())

    def test_control_flow_groups_the_diamond(self):
        part = select_tasks(
            build_diamond_loop(),
            SelectionConfig(level=HeuristicLevel.CONTROL_FLOW),
        )
        loop_task = part.task_at(("main", "body_1"))
        assert loop_task.block_count == 4
        names = {t.block[1] for t in loop_task.targets if t.block}
        assert names == {"body_1", "done_5"}

    def test_levels_monotone_task_size(self):
        """Multi-block tasks are never smaller than basic blocks."""
        sizes = {}
        for level in ALL_LEVELS:
            part = select_tasks(
                build_diamond_loop(), SelectionConfig(level=level)
            )
            prog = part.program
            total = sum(t.static_size(prog) for t in part.tasks())
            sizes[level] = total / len(part)
        assert sizes[HeuristicLevel.CONTROL_FLOW] >= sizes[
            HeuristicLevel.BASIC_BLOCK
        ]

    def test_determinism(self):
        for level in ALL_LEVELS:
            p1 = select_tasks(build_diamond_loop(), SelectionConfig(level=level))
            p2 = select_tasks(build_diamond_loop(), SelectionConfig(level=level))
            t1 = [(t.root, t.blocks, t.targets) for t in p1.tasks()]
            t2 = [(t.root, t.blocks, t.targets) for t in p2.tasks()]
            assert t1 == t2

    def test_original_program_is_untouched(self):
        prog = build_diamond_loop()
        before = str(prog)
        select_tasks(prog, SelectionConfig(level=HeuristicLevel.TASK_SIZE))
        assert str(prog) == before

    def test_straightline_single_task(self):
        part = select_tasks(
            build_straightline(),
            SelectionConfig(level=HeuristicLevel.CONTROL_FLOW),
        )
        assert len(part) == 1
        (task,) = part.tasks()
        assert task.targets[0].kind is TargetKind.HALT


class TestCalls:
    def test_large_callee_not_absorbed(self):
        part = select_tasks(
            build_call_program("large"),
            SelectionConfig(level=HeuristicLevel.TASK_SIZE),
        )
        assert all(not t.absorbed_calls for t in part.tasks())
        # The callee entry must be rooted (CALL target closure).
        assert part.has_root(("helper", "entry"))

    def test_small_callee_absorbed_at_task_size_level(self):
        part = select_tasks(
            build_call_program("small"),
            SelectionConfig(level=HeuristicLevel.TASK_SIZE),
        )
        absorbed = {b for t in part.tasks() for b in t.absorbed_calls}
        assert absorbed, "the 2-instruction helper should be absorbed"

    def test_small_callee_not_absorbed_below_task_size(self):
        part = select_tasks(
            build_call_program("small"),
            SelectionConfig(level=HeuristicLevel.CONTROL_FLOW),
        )
        assert all(not t.absorbed_calls for t in part.tasks())
        assert part.has_root(("helper", "entry"))

    def test_call_thresh_zero_absorbs_nothing(self):
        part = select_tasks(
            build_call_program("small"),
            SelectionConfig(level=HeuristicLevel.TASK_SIZE, call_thresh=0),
        )
        assert all(not t.absorbed_calls for t in part.tasks())


class TestTaskSizeHelpers:
    def _recursive_program(self):
        b = IRBuilder()
        with b.function("rec"):
            b.subi("r4", "r4", 1)
            base = b.new_label("base")
            again = b.new_label("again")
            b.beqz("r4", base, fallthrough=again)
            with b.block(again):
                cont = b.new_label("cont")
                b.call("rec", fallthrough=cont)
                with b.block(cont):
                    b.ret()
            with b.block(base):
                b.ret()
        with b.function("main"):
            b.li("r4", 3)
            cont = b.new_label("mcont")
            b.call("rec", fallthrough=cont)
            with b.block(cont):
                b.halt()
        return b.build()

    def test_recursive_functions_detected(self):
        prog = self._recursive_program()
        assert recursive_functions(prog) == {"rec"}

    def test_recursive_functions_never_absorbed(self):
        prog = self._recursive_program()
        profile = profile_program(prog)
        config = SelectionConfig(
            level=HeuristicLevel.TASK_SIZE, call_thresh=10_000
        )
        assert "rec" not in absorbed_functions(prog, profile, config)

    def test_main_never_absorbed(self, call_program):
        profile = profile_program(call_program)
        config = SelectionConfig(
            level=HeuristicLevel.TASK_SIZE, call_thresh=10_000
        )
        assert "main" not in absorbed_functions(call_program, profile, config)

    def test_absorption_requires_task_size_level(self, call_program):
        profile = profile_program(call_program)
        config = SelectionConfig(level=HeuristicLevel.CONTROL_FLOW)
        assert absorbed_functions(call_program, profile, config) == set()
