"""The autotuner: genome operators, GA/random drivers, ledger, CLI.

Determinism is the load-bearing property: a campaign's only entropy
source is ``random.Random(seed)``, fitness has a total order (cycles,
genome hash), and ledger lines are committed in population order —
so the same ``(targets, seed, algo, budget, pop_size)`` must yield a
byte-identical ledger regardless of worker count, and resuming a
truncated ledger must converge to the same bytes.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.compiler import HeuristicLevel
from repro.synth.campaign import program_seed
from repro.telemetry.report import load_cells
from repro.tune import (
    GENE_SPACE,
    Genome,
    PAPER_GENOME,
    TUNE_SCHEMA_VERSION,
    TuneLedger,
    crossover,
    mutate,
    random_genome,
    tune,
    tune_summary,
    write_tune_reports,
)

import random


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Point the persistent artifact cache at a per-test directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def synth_target(seed: int = 1) -> str:
    """A cheap generated workload (sub-second to simulate)."""
    return f"synth:default:{program_seed(seed, 0)}"


# ----------------------------------------------------------------- genomes


def test_paper_genome_matches_reference_defaults():
    sel = PAPER_GENOME.to_selection()
    assert sel.strategy == "tunable"
    assert sel.level is HeuristicLevel.TASK_SIZE
    assert sel.max_targets == 4
    assert sel.loop_thresh == 30
    assert sel.call_thresh == 30
    assert sel.traversal == "bfs"


def test_every_gene_default_is_in_space():
    for gene, value in PAPER_GENOME.as_dict().items():
        assert value in GENE_SPACE[gene]


def test_genome_rejects_out_of_space_values():
    with pytest.raises(ValueError, match="max_targets"):
        Genome(max_targets=5)
    with pytest.raises(ValueError, match="strategy"):
        Genome(strategy="paper")


def test_genome_hash_stable_and_roundtrips():
    g = Genome(max_targets=2, traversal="dfs")
    assert g.genome_hash() == Genome(max_targets=2,
                                     traversal="dfs").genome_hash()
    assert g.genome_hash() != PAPER_GENOME.genome_hash()
    assert Genome.from_dict(g.as_dict()) == g


def test_genome_operators_are_seed_deterministic():
    a = random_genome(random.Random(7))
    b = random_genome(random.Random(7))
    assert a == b
    assert mutate(a, random.Random(3)) == mutate(a, random.Random(3))
    other = random_genome(random.Random(8))
    assert (crossover(a, other, random.Random(5))
            == crossover(a, other, random.Random(5)))


def test_mutation_redraws_distinct_values():
    rng = random.Random(11)
    for _ in range(50):
        child = mutate(PAPER_GENOME, rng, rate=1.0)
        for gene, value in child.as_dict().items():
            assert value != PAPER_GENOME.as_dict()[gene], gene


def test_to_spec_carries_genome_selection():
    spec = PAPER_GENOME.to_spec("compress")
    assert spec.benchmark == "compress"
    assert spec.level is HeuristicLevel.TASK_SIZE
    assert spec.selection.strategy == "tunable"
    dfs = Genome(traversal="dfs").to_spec("compress")
    assert dfs.spec_hash() != spec.spec_hash()


# ----------------------------------------------------------------- drivers


def run_tune(tmp_path, name="ledger.jsonl", **kwargs):
    path = tmp_path / name
    defaults = dict(
        targets=[synth_target()], budget=4, seed=1, pop_size=2, jobs=1,
        ledger=TuneLedger(path),
    )
    defaults.update(kwargs)
    return tune(**defaults), path


def test_ga_is_byte_deterministic(tmp_path):
    result_a, path_a = run_tune(tmp_path, "a.jsonl")
    result_b, path_b = run_tune(tmp_path, "b.jsonl")
    assert path_a.read_bytes() == path_b.read_bytes()
    assert tune_summary(result_a) == tune_summary(result_b)


def test_ga_ledger_independent_of_jobs(tmp_path):
    _, path_a = run_tune(tmp_path, "serial.jsonl", jobs=1)
    _, path_b = run_tune(tmp_path, "pooled.jsonl", jobs=2)
    assert path_a.read_bytes() == path_b.read_bytes()


def test_resume_from_truncated_ledger_is_byte_identical(tmp_path):
    _, path = run_tune(tmp_path, "full.jsonl")
    full = path.read_bytes()
    lines = full.splitlines(keepends=True)
    assert len(lines) > 4
    # simulate a campaign killed mid-flight: keep a whole-line prefix
    partial = tmp_path / "partial.jsonl"
    partial.write_bytes(b"".join(lines[:4]))
    resumed, _ = run_tune(tmp_path, "partial.jsonl")
    assert partial.read_bytes() == full
    baseline, _ = run_tune(tmp_path, "fresh.jsonl")
    assert tune_summary(resumed) == tune_summary(baseline)


def test_rerun_over_complete_ledger_appends_nothing(tmp_path):
    _, path = run_tune(tmp_path, "done.jsonl")
    before = path.read_bytes()
    run_tune(tmp_path, "done.jsonl")
    assert path.read_bytes() == before


def test_header_mismatch_raises(tmp_path):
    _, path = run_tune(tmp_path, "seeded.jsonl", seed=1)
    with pytest.raises(ValueError, match="different campaign"):
        run_tune(tmp_path, "seeded.jsonl", seed=2)


def test_generation_count_is_ceil_budget_over_pop(tmp_path):
    result, _ = run_tune(tmp_path, budget=5, pop_size=2)
    assert result.generations == math.ceil(5 / 2) == 3
    assert len(result.history) == 3


def test_paper_genome_seeds_generation_zero(tmp_path):
    _, path = run_tune(tmp_path)
    kinds = {}
    first_eval = None
    for line in path.read_text(encoding="utf-8").splitlines():
        entry = json.loads(line)
        kinds.setdefault(entry["kind"], 0)
        kinds[entry["kind"]] += 1
        if entry["kind"] == "eval" and first_eval is None:
            first_eval = entry
    assert kinds["header"] == 1
    assert kinds["baseline"] == 1
    assert kinds["best"] == 1
    assert first_eval["generation"] == 0
    assert first_eval["genome_hash"] == PAPER_GENOME.genome_hash()


def test_ledger_header_schema_versioned(tmp_path):
    _, path = run_tune(tmp_path)
    header = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
    assert header["kind"] == "header"
    assert header["schema_version"] == TUNE_SCHEMA_VERSION
    assert "gene_space" in header


def test_random_algo_draws_budget_genomes(tmp_path):
    result, path = run_tune(tmp_path, "rand.jsonl", algo="random",
                            budget=6, pop_size=2)
    assert result.algo == "random"
    assert result.evaluations <= 6
    evals = [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if json.loads(line)["kind"] == "eval"
    ]
    assert len(evals) == 6
    assert evals[0]["genome_hash"] == PAPER_GENOME.genome_hash()


def test_best_never_loses_to_paper_genome(tmp_path):
    """PAPER_GENOME is always evaluated, so the reported best can
    never be worse than the paper config's own genome fitness."""
    result, path = run_tune(tmp_path)
    paper_fitness = None
    for line in path.read_text(encoding="utf-8").splitlines():
        entry = json.loads(line)
        if (entry["kind"] == "eval"
                and entry["genome_hash"] == PAPER_GENOME.genome_hash()):
            paper_fitness = entry["fitness"]
            break
    assert paper_fitness is not None
    assert result.best_fitness <= paper_fitness
    assert result.best_genome is not None
    assert result.best_hash == result.best_genome.genome_hash()


def test_tune_argument_validation(tmp_path):
    with pytest.raises(ValueError, match="target"):
        tune([], budget=2)
    with pytest.raises(ValueError, match="algorithm"):
        tune([synth_target()], algo="anneal")
    with pytest.raises(ValueError, match="budget"):
        tune([synth_target()], budget=0)
    with pytest.raises(ValueError, match="pop_size"):
        tune([synth_target()], pop_size=1)


# ----------------------------------------------------------------- reports


def test_reports_load_as_aligned_cell_grids(tmp_path):
    result, _ = run_tune(tmp_path)
    baseline, tuned = write_tune_reports(result, tmp_path / "out")
    src_base = load_cells(str(baseline))
    src_tuned = load_cells(str(tuned))
    assert set(src_base.cells) == set(src_tuned.cells)
    for label in src_base.cells:
        assert "/tuned@" in label
    payload = json.loads(tuned.read_text(encoding="utf-8"))
    assert payload["tune"]["genome"] == result.best_genome.as_dict()
    assert payload["tune"]["best_hash"] == result.best_hash
    assert set(payload["tune"]["true_levels"]) == set(result.targets)


def test_tune_summary_shape(tmp_path):
    result, _ = run_tune(tmp_path)
    summary = tune_summary(result)
    assert summary["command"] == "tune"
    assert summary["targets"] == result.targets
    assert summary["best_genome"] == result.best_genome.as_dict()
    assert summary["improved"] == (
        summary["best_fitness"] < summary["baseline_fitness"]
    )
    json.dumps(summary)  # JSON-serializable end to end


# --------------------------------------------------------------------- CLI


class TestTuneCLI:
    def test_list_strategies(self, capsys):
        assert main(["list", "--strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("basic_block", "task_size", "cost_model", "tunable"):
            assert name in out

    def test_list_strategies_json(self, capsys):
        assert main(["list", "--strategies", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in payload["strategies"]]
        assert "cost_model" in names and "task_size" in names

    def test_tune_synth_json(self, capsys, tmp_path):
        argv = [
            "tune", "--synth", "default", "--budget", "4", "--pop", "2",
            "--seed", "1", "--jobs", "1",
            "--ledger", str(tmp_path / "cli.jsonl"), "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "tune"
        assert payload["algo"] == "ga"
        assert payload["best_genome"]["strategy"] in GENE_SPACE["strategy"]

    def test_tune_refuses_overwrite_without_resume(self, capsys, tmp_path):
        ledger = str(tmp_path / "cli.jsonl")
        argv = [
            "tune", "--synth", "default", "--budget", "4", "--pop", "2",
            "--jobs", "1", "--ledger", ledger,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(argv)
        assert main(argv + ["--resume"]) == 0

    def test_tune_writes_reports(self, capsys, tmp_path):
        out_dir = tmp_path / "reports"
        argv = [
            "tune", "--synth", "default", "--budget", "4", "--pop", "2",
            "--jobs", "1", "--ledger", str(tmp_path / "cli.jsonl"),
            "--out", str(out_dir), "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert (out_dir / "baseline.json").exists()
        assert (out_dir / "tuned.json").exists()
        assert payload["reports"]["tuned"].endswith("tuned.json")
