"""Unit tests for the trace-based profiler."""

import pytest

from repro.ir.cfg import build_cfg
from repro.ir.dataflow import def_use_chains
from repro.ir.interp import run_program
from repro.profiling import profile_program, profile_trace


class TestBlockAndEdgeCounts:
    def test_block_counts(self, diamond_loop):
        profile = profile_program(diamond_loop)
        assert profile.block_count(("main", "entry")) == 1
        assert profile.block_count(("main", "body_1")) == 50
        # then runs on multiples of 3 in [0, 50): 17 times.
        assert profile.block_count(("main", "then_2")) == 17
        assert profile.block_count(("main", "other_3")) == 33
        assert profile.block_count(("main", "done_5")) == 1

    def test_edge_counts(self, diamond_loop):
        profile = profile_program(diamond_loop)
        assert profile.edge_count(("main", "body_1"), ("main", "then_2")) == 17
        assert profile.edge_count(("main", "join_4"), ("main", "body_1")) == 49
        assert profile.edge_count(("main", "join_4"), ("main", "done_5")) == 1
        assert profile.edge_count(("main", "entry"), ("main", "done_5")) == 0

    def test_call_continuation_edge_attributed_to_call_block(
        self, call_program
    ):
        profile = profile_program(call_program)
        # body calls helper; the return lands in cont: the
        # intra-function edge body -> cont must be counted.
        body = next(
            blk.label for blk in call_program.main.blocks() if blk.ends_in_call
        )
        cont = call_program.main.block(body).fallthrough
        assert profile.edge_count(("main", body), ("main", cont)) == 20

    def test_total_instructions(self, diamond_loop):
        trace = run_program(diamond_loop)
        profile = profile_trace(trace)
        assert profile.total_instructions == len(trace)


class TestCallProfiles:
    def test_invocation_counts(self, call_program):
        profile = profile_program(call_program)
        assert profile.call_counts["helper"] == 20
        assert profile.call_counts["main"] == 1

    def test_mean_dynamic_call_size(self, call_program):
        profile = profile_program(call_program)
        mean = profile.mean_dynamic_call_size("helper")
        assert mean == pytest.approx(2.0)  # addi + ret

    def test_inclusive_sizes(self, big_call_program):
        profile = profile_program(big_call_program)
        mean = profile.mean_dynamic_call_size("helper")
        assert mean > 100  # 40-iteration loop

    def test_never_called_returns_none(self, diamond_loop):
        profile = profile_program(diamond_loop)
        assert profile.mean_dynamic_call_size("ghost") is None


class TestDefUseFrequencies:
    def test_frequencies_match_execution(self, diamond_loop):
        profile = profile_program(diamond_loop)
        cfg = build_cfg(diamond_loop.main)
        edges = def_use_chains(diamond_loop.main, cfg)
        # r3 def in then_2 reaching done_5's store: happens only when
        # the LAST iteration took the then arm; i=49 -> 49%3 != 0, so
        # the last writer at done is other_3, never then_2.
        then_done = next(
            e for e in edges
            if e.def_block == "then_2" and e.use_block == "done_5"
        )
        assert profile.defuse_count("main", then_done) == 0
        other_done = next(
            e for e in edges
            if e.def_block == "other_3" and e.use_block == "done_5"
        )
        assert profile.defuse_count("main", other_done) == 1

    def test_loop_carried_frequency(self, diamond_loop):
        profile = profile_program(diamond_loop)
        cfg = build_cfg(diamond_loop.main)
        edges = def_use_chains(diamond_loop.main, cfg)
        # join_4 increments r1; body_1's rem reads it on the next
        # iteration: 49 traversals of the back edge.
        carried = next(
            e for e in edges
            if e.def_block == "join_4" and e.use_block == "body_1"
            and e.register == "r1"
        )
        assert profile.defuse_count("main", carried) == 49
