"""Fast-engine equivalence: event-driven core vs the reference loop.

The fast engine's only licence to exist is bit-identity: every
(benchmark, level, machine) cell must produce exactly the same
``SimResult`` — cycles, committed instructions, squash counts, the
full per-reason cycle breakdown — as the cycle-by-cycle reference
loop.  These tests sweep every benchmark at every heuristic level,
vary the machine shape and the forwarding policy, and run the
reliability subsystem's fault sweeps against the fast engine, so a
skip-logic bug cannot hide behind aggregate statistics.
"""

import pytest

from repro.compiler import HeuristicLevel
from repro.experiments.runner import run_benchmark
from repro.harness.spec import RunSpec
from repro.reliability import verify_grid, verify_workload
from repro.sim import SimConfig
from repro.sim.config import ForwardPolicy
from repro.sim.machine import SimulationStuck
from repro.workloads import all_benchmarks

SMALL = 0.1

ALL_BENCHMARKS = [bm.name for bm in all_benchmarks()]
ALL_LEVELS = list(HeuristicLevel)

#: every RunRecord field that is a pure function of the simulation
#: (breakdown is compared separately for a readable diff)
_RESULT_FIELDS = (
    "cycles",
    "instructions",
    "ipc",
    "dynamic_tasks",
    "task_prediction_accuracy",
    "branch_prediction_accuracy",
    "control_squashes",
    "memory_squashes",
    "mean_window_span_measured",
)


def assert_equivalent(name, level, **kwargs):
    """Run one cell on both engines and demand identical results."""
    fast = run_benchmark(name, level, **kwargs)
    sim = kwargs.pop("sim", None) or SimConfig()
    reference = run_benchmark(
        name, level, sim=SimConfig(
            **{**sim.__dict__, "engine": "reference"}
        ), **kwargs,
    )
    for field in _RESULT_FIELDS:
        assert getattr(fast, field) == getattr(reference, field), (
            f"{name}/{level.value}: fast.{field}="
            f"{getattr(fast, field)} != reference.{field}="
            f"{getattr(reference, field)}"
        )
    assert fast.breakdown == reference.breakdown, (
        f"{name}/{level.value}: cycle breakdowns differ"
    )


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
@pytest.mark.parametrize(
    "level", ALL_LEVELS, ids=[lvl.value for lvl in ALL_LEVELS]
)
def test_fast_matches_reference_every_cell(name, level):
    """Bit-identity on every (benchmark, level) cell, 4 PUs OoO."""
    assert_equivalent(name, level, n_pus=4, out_of_order=True, scale=SMALL)


@pytest.mark.parametrize("n_pus,out_of_order",
                         [(8, True), (4, False), (8, False), (2, True)])
def test_fast_matches_reference_machine_shapes(n_pus, out_of_order):
    """Bit-identity across PU counts and issue disciplines."""
    assert_equivalent(
        "compress", HeuristicLevel.TASK_SIZE,
        n_pus=n_pus, out_of_order=out_of_order, scale=SMALL,
    )


@pytest.mark.parametrize("policy", list(ForwardPolicy),
                         ids=[p.value for p in ForwardPolicy])
def test_fast_matches_reference_forward_policies(policy):
    """Bit-identity under every register forwarding policy."""
    assert_equivalent(
        "tomcatv", HeuristicLevel.DATA_DEPENDENCE,
        n_pus=8, out_of_order=True, scale=SMALL,
        sim=SimConfig(forward_policy=policy),
    )


@pytest.mark.parametrize("name,level", [
    ("compress", HeuristicLevel.DATA_DEPENDENCE),
    ("m88ksim", HeuristicLevel.CONTROL_FLOW),
    ("tomcatv", HeuristicLevel.TASK_SIZE),
])
def test_fast_bulk_charging_sums_per_category(name, level):
    """Bulk-charged skipped cycles land in the right Figure-2 buckets.

    The fast engine charges a whole skipped span to each PU's current
    stall category in one addition; this checks the per-category
    totals — not just the aggregate — against the reference engine's
    cycle-by-cycle accounting, and that both engines attribute every
    PU-cycle (categories + squash penalties + idle sum to the same
    grand total).
    """
    fast = run_benchmark(name, level, n_pus=4, scale=SMALL)
    reference = run_benchmark(
        name, level, n_pus=4, scale=SMALL,
        sim=SimConfig(engine="reference"),
    )
    fast_dict = fast.breakdown.as_dict()
    ref_dict = reference.breakdown.as_dict()
    for category in ref_dict:
        assert fast_dict[category] == ref_dict[category], (
            f"{name}/{level.value}: category {category}: "
            f"fast={fast_dict[category]} reference={ref_dict[category]}"
        )
    assert (
        fast.breakdown.total_pu_cycles
        == reference.breakdown.total_pu_cycles
    )


def test_fault_sweep_on_fast_engine():
    """Seeded fault injection exercises recovery on the fast path.

    A fault plan disables cycle skipping (events are injected from
    outside the machine's event horizon), but the run still goes
    through the fast engine's probe loop — the oracle and invariant
    monitors must stay green.
    """
    report = verify_workload(
        "compress", HeuristicLevel.CONTROL_FLOW, n_pus=4,
        scale=SMALL, faults=10, seed=7,
    )
    assert report.ok, report.summary()
    assert report.faults_injected > 0


def test_verify_grid_defaults_to_fast_engine():
    """repro verify runs the oracle against the fast engine."""
    reports = verify_grid(
        benchmarks=["m88ksim"],
        levels=[HeuristicLevel.BASIC_BLOCK, HeuristicLevel.TASK_SIZE],
        scale=SMALL, faults=3, seed=11,
    )
    assert len(reports) == 2
    assert all(r.ok for r in reports), [r.summary() for r in reports]


def test_verify_grid_reference_engine_matches():
    """The reference engine passes the same oracle checks."""
    reports = verify_grid(
        benchmarks=["m88ksim"], levels=[HeuristicLevel.TASK_SIZE],
        scale=SMALL, engine="reference",
    )
    assert all(r.ok for r in reports), [r.summary() for r in reports]


def test_stuck_exception_names_the_workload():
    """SimulationStuck must say which run died, where, and on what."""
    with pytest.raises(SimulationStuck) as exc_info:
        run_benchmark(
            "compress", HeuristicLevel.BASIC_BLOCK, n_pus=4,
            scale=SMALL, sim=SimConfig(max_cycles=50),
        )
    message = str(exc_info.value)
    assert "compress/basic_block/4ooo" in message
    assert "cycle" in message
    assert "engine=" in message
    assert "retired" in message


def test_stuck_exception_reference_engine():
    with pytest.raises(SimulationStuck) as exc_info:
        run_benchmark(
            "compress", HeuristicLevel.BASIC_BLOCK, n_pus=4,
            scale=SMALL,
            sim=SimConfig(max_cycles=50, engine="reference"),
        )
    assert "engine=reference" in str(exc_info.value)


def test_engine_salts_the_cache_key():
    """Fast and reference runs must never alias one cache entry."""
    base = RunSpec(benchmark="compress", level=HeuristicLevel.BASIC_BLOCK)
    fast = RunSpec(
        benchmark="compress", level=HeuristicLevel.BASIC_BLOCK,
        sim=SimConfig(engine="fast"),
    )
    reference = RunSpec(
        benchmark="compress", level=HeuristicLevel.BASIC_BLOCK,
        sim=SimConfig(engine="reference"),
    )
    # default sim is the fast engine, spelled out or not
    assert base.spec_hash() == fast.spec_hash()
    assert base.spec_hash() != reference.spec_hash()


def test_engine_rejects_unknown_value():
    with pytest.raises(ValueError):
        SimConfig(engine="warp")
