"""Unit and property tests for the metrics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    geometric_mean,
    improvement_percent,
    normalized_branch_misprediction,
    window_span,
)


class TestWindowSpan:
    def test_perfect_prediction_is_linear(self):
        assert window_span(10.0, 1.0, 8) == pytest.approx(80.0)

    def test_zero_prediction_is_one_task(self):
        assert window_span(10.0, 0.0, 8) == pytest.approx(10.0)

    def test_paper_like_value(self):
        # A 15-instruction task at 96% accuracy on 8 PUs spans ~105.
        span = window_span(15.0, 0.96, 8)
        assert 100 < span < 120

    @given(
        size=st.floats(0.1, 100),
        pred=st.floats(0.0, 1.0),
        pus=st.integers(1, 16),
    )
    def test_bounds(self, size, pred, pus):
        span = window_span(size, pred, pus)
        assert size - 1e-9 <= span <= size * pus + 1e-9

    @given(size=st.floats(0.1, 100), pus=st.integers(1, 16))
    def test_monotone_in_prediction(self, size, pus):
        low = window_span(size, 0.5, pus)
        high = window_span(size, 0.9, pus)
        assert high >= low

    def test_input_validation(self):
        with pytest.raises(ValueError):
            window_span(10, 1.5, 4)
        with pytest.raises(ValueError):
            window_span(-1, 0.5, 4)
        with pytest.raises(ValueError):
            window_span(10, 0.5, 0)


class TestNormalizedMisprediction:
    def test_single_branch_is_identity(self):
        assert normalized_branch_misprediction(0.1, 1.0) == pytest.approx(0.1)

    def test_many_branches_shrink_the_rate(self):
        per_branch = normalized_branch_misprediction(0.2, 4.0)
        assert per_branch < 0.2
        # Inverse check: (1 - m)^B == 1 - m_task.
        assert (1 - per_branch) ** 4 == pytest.approx(0.8)

    def test_zero_misprediction(self):
        assert normalized_branch_misprediction(0.0, 5.0) == 0.0

    def test_degenerate_branch_count(self):
        assert normalized_branch_misprediction(0.3, 0.0) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_branch_misprediction(1.5, 2.0)


class TestImprovementAndGeomean:
    def test_improvement(self):
        assert improvement_percent(1.3, 1.0) == pytest.approx(30.0)
        assert improvement_percent(0.9, 1.0) == pytest.approx(-10.0)
        with pytest.raises(ValueError):
            improvement_percent(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    @given(st.lists(st.floats(0.1, 10), min_size=1, max_size=20))
    def test_geomean_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
