"""Round-trip and error tests for the assembly text format."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.ir.asmtext import AsmSyntaxError, parse_program, program_to_text
from repro.ir.interp import Interpreter, run_program
from repro.workloads import get_benchmark
from tests.conftest import (
    build_call_program,
    build_diamond_loop,
    build_straightline,
)
from tests.test_property_pipeline import build_random_program, programs


def roundtrip(program):
    return parse_program(program_to_text(program))


def final_memory(program):
    interp = Interpreter(program, max_instructions=500_000)
    interp.run()
    return interp.memory


class TestRoundTrip:
    @pytest.mark.parametrize(
        "build", [build_diamond_loop, build_straightline,
                  lambda: build_call_program("small"),
                  lambda: build_call_program("large")]
    )
    def test_fixture_programs(self, build):
        program = build()
        again = roundtrip(program)
        assert program_to_text(again) == program_to_text(program)
        assert final_memory(again) == final_memory(program)

    @pytest.mark.parametrize("name", ["compress", "li", "tomcatv", "fpppp"])
    def test_benchmarks_roundtrip(self, name):
        program = get_benchmark(name).build(0.1)
        again = roundtrip(program)
        assert program_to_text(again) == program_to_text(program)
        assert len(run_program(again)) == len(run_program(program))

    def test_memory_image_preserved(self):
        program = get_benchmark("compress").build(0.1)
        again = roundtrip(program)
        assert again.memory_image == program.memory_image

    def test_main_name_preserved(self, diamond_loop):
        diamond_loop.main_name = "main"
        text = program_to_text(diamond_loop)
        assert text.startswith(".main main")

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stmts=programs())
    def test_random_programs_roundtrip(self, stmts):
        program = build_random_program(stmts)
        again = roundtrip(program)
        assert program_to_text(again) == program_to_text(program)
        assert final_memory(again) == final_memory(program)


class TestSyntax:
    def test_comments_and_blank_lines(self):
        text = """
.main main
.func main
# a full-line comment
entry:
    li      r1, #3   ; trailing comment
    halt
"""
        program = parse_program(text)
        assert program.main.entry.instructions[0].imm == 3

    def test_branch_with_fallthrough(self):
        text = """
.func main
entry:
    beqz    r1, @a, @b
a:
    halt
b:
    jump    @a
"""
        program = parse_program(text)
        assert program.main.entry.fallthrough == "b"
        assert program.main.entry.terminator.target == "a"

    def test_negative_memory_offset(self):
        text = """
.func main
entry:
    load    r1, [r2 + -4]
    store   r1, [r2 + 8]
    halt
"""
        program = parse_program(text)
        load, store, _halt = program.main.entry.instructions
        assert load.imm == -4
        assert store.imm == 8

    def test_float_immediate(self):
        text = """
.func main
entry:
    fli     f1, #0.25
    halt
"""
        program = parse_program(text)
        assert program.main.entry.instructions[0].imm == 0.25

    def test_memory_directive(self):
        text = """
.func main
entry:
    halt
.memory 100 42
.memory 101 2.5
"""
        program = parse_program(text)
        assert program.memory_image == {100: 42, 101: 2.5}


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmSyntaxError, match="unknown mnemonic"):
            parse_program(".func main\nentry:\n    frobnicate r1\n    halt\n")

    def test_instruction_outside_block(self):
        with pytest.raises(AsmSyntaxError, match="outside block"):
            parse_program(".func main\n    li r1, #1\n")

    def test_label_outside_function(self):
        with pytest.raises(AsmSyntaxError, match="outside .func"):
            parse_program("entry:\n    halt\n")

    def test_bad_memory_operand(self):
        with pytest.raises(AsmSyntaxError, match="memory operand"):
            parse_program(".func main\nentry:\n    load r1, r2\n    halt\n")

    def test_validation_still_applies(self):
        # Parses but fails program validation (unknown jump target).
        with pytest.raises(ValueError, match="unknown block"):
            parse_program(".func main\nentry:\n    jump @ghost\n")
