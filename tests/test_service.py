"""Campaign service core: requests, expansion, state machine, journal."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.compiler import HeuristicLevel
from repro.harness.cache import ArtifactCache
from repro.harness.scheduler import run_specs, shard_specs
from repro.service import (
    CampaignService,
    Job,
    JobError,
    JobQueue,
    JobRequest,
    ServiceJournal,
    expand_specs,
    replay_journal,
)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


MICRO = {"benchmarks": ["compress"], "scale": 0.05,
         "levels": ["basic_block"]}


# -- requests and expansion -------------------------------------------


def test_request_roundtrip_and_hash():
    req = JobRequest.from_payload({"kind": "figure5", "params": MICRO})
    assert req.payload() == {"kind": "figure5", "params": MICRO}
    # content hash ignores key order but not values
    req2 = JobRequest(kind="figure5", params=dict(reversed(list(
        MICRO.items()
    ))))
    assert req.content_hash() == req2.content_hash()
    req3 = JobRequest(kind="figure5", params={**MICRO, "scale": 0.1})
    assert req.content_hash() != req3.content_hash()


@pytest.mark.parametrize("payload", [
    "not a dict",
    {"kind": "nope"},
    {"kind": "figure5", "params": "nope"},
    {"kind": "figure5", "params": {"benchmarks": ["unknown-bm"]}},
    {"kind": "figure5", "params": {"levels": ["nope"]}},
    {"kind": "figure5", "params": {"configs": "nope"}},
    {"kind": "ablation", "params": {"sweep": "nope",
                                    "benchmarks": ["compress"]}},
    {"kind": "ablation", "params": {"sweep": "max_targets"}},
    {"kind": "fuzz", "params": {}},
    {"kind": "fuzz", "params": {"budget": 0}},
])
def test_bad_requests_rejected(payload):
    with pytest.raises(JobError):
        JobRequest.from_payload(payload)


def test_expansion_matches_figure5_driver():
    from repro.experiments.figure5 import figure5_specs

    req = JobRequest.from_payload({"kind": "figure5", "params": MICRO})
    _, direct = figure5_specs(
        benchmarks=["compress"],
        levels=[HeuristicLevel.BASIC_BLOCK],
        scale=0.05,
    )
    assert [s.spec_hash() for s in expand_specs(req)] == [
        s.spec_hash() for s in direct
    ]


def test_expansion_matches_table1_driver():
    from repro.experiments.table1 import table1_specs

    req = JobRequest.from_payload({
        "kind": "table1",
        "params": {"benchmarks": ["compress", "ijpeg"], "scale": 0.05},
    })
    _, direct = table1_specs(benchmarks=["compress", "ijpeg"],
                             scale=0.05)
    assert [s.spec_hash() for s in expand_specs(req)] == [
        s.spec_hash() for s in direct
    ]


def test_expansion_matches_fuzz_specs():
    from repro.synth.campaign import fuzz_specs

    req = JobRequest.from_payload({
        "kind": "fuzz", "params": {"budget": 2, "seed": 7},
    })
    direct, _ = fuzz_specs(budget=2, seed=7)
    assert [s.spec_hash() for s in expand_specs(req)] == [
        s.spec_hash() for s in direct
    ]


def test_sharding_partitions_and_is_stable():
    req = JobRequest.from_payload({"kind": "figure5", "params": {
        "benchmarks": ["compress", "m88ksim"], "scale": 0.05,
    }})
    specs = expand_specs(req)
    shards = shard_specs(specs, 3)
    flat = sorted(s.spec_hash() for shard in shards for s in shard)
    assert flat == sorted(s.spec_hash() for s in specs)
    # pure function of content hash: same placement on a second call
    assert [
        [s.spec_hash() for s in shard] for shard in shard_specs(specs, 3)
    ] == [[s.spec_hash() for s in shard] for shard in shards]
    with pytest.raises(ValueError):
        shard_specs(specs, 0)


# -- the job state machine --------------------------------------------


def _job(state="queued"):
    job = Job(job_id="t-1", request=JobRequest(kind="figure5",
                                               params=dict(MICRO)))
    job.state = state
    return job


def test_job_transitions_legal_path():
    job = _job()
    job.transition("running")
    job.transition("done")
    assert job.terminal


@pytest.mark.parametrize("start,target", [
    ("queued", "done"),
    ("done", "running"),
    ("failed", "queued"),
    ("cancelled", "done"),
    ("running", "queued"),
    ("running", "bogus"),
])
def test_job_transitions_illegal(start, target):
    with pytest.raises(ValueError):
        _job(start).transition(target)


# -- journal + replay -------------------------------------------------


def _submit_events(journal, job_id, seq, state_events=()):
    job = Job(job_id=job_id,
              request=JobRequest(kind="figure5", params=dict(MICRO)),
              cells=4)
    journal.submitted(job, seq)
    for state, detail in state_events:
        job.state = state
        journal.state(job, **detail)
    return job


def test_journal_replay_reconstructs_states(tmp_path):
    journal = ServiceJournal(tmp_path / "svc")
    _submit_events(journal, "a-1", 1, [
        ("running", {}), ("done", {"misses": 4, "hits": 0}),
    ])
    _submit_events(journal, "b-2", 2, [("running", {})])
    _submit_events(journal, "c-3", 3, [])
    replay = replay_journal(journal.path)
    assert replay.order == ["a-1", "b-2", "c-3"]
    assert replay.last_seq == 3
    assert replay.jobs["a-1"].state == "done"
    assert replay.jobs["a-1"].misses == 4
    assert replay.jobs["b-2"].state == "running"
    assert replay.jobs["c-3"].state == "queued"
    assert [job.job_id for job in replay.unfinished] == ["b-2", "c-3"]


def test_journal_replay_skips_torn_tail(tmp_path):
    journal = ServiceJournal(tmp_path / "svc")
    _submit_events(journal, "a-1", 1, [("running", {})])
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "state", "job_id": "a-1", "sta')
    replay = replay_journal(journal.path)
    assert replay.jobs["a-1"].state == "running"


def test_journal_replay_ignores_illegal_edges(tmp_path):
    journal = ServiceJournal(tmp_path / "svc")
    _submit_events(journal, "a-1", 1, [
        ("running", {}), ("done", {}),
    ])
    # a (hand-edited) event that would walk back out of a terminal
    # state must not crash replay nor change the final state
    from repro.harness.ledger import append_jsonl_line

    append_jsonl_line(journal.path, {
        "event": "state", "job_id": "a-1", "state": "running",
    })
    replay = replay_journal(journal.path)
    assert replay.jobs["a-1"].state == "done"


def test_journal_replay_missing_file(tmp_path):
    replay = replay_journal(tmp_path / "absent" / "journal.jsonl")
    assert replay.jobs == {}
    assert replay.last_seq == 0


# -- the queue, driven inline -----------------------------------------


def _run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


def test_queue_runs_job_and_caches_resubmit(tmp_path):
    async def scenario():
        cache = ArtifactCache(root=tmp_path / "cache")
        journal = ServiceJournal(tmp_path / "svc")
        queue = JobQueue(cache, journal, workers=2, executor="thread")
        await queue.start()
        try:
            req = JobRequest.from_payload(
                {"kind": "figure5", "params": MICRO}
            )
            job = await queue.submit(req)
            job = await queue.wait(job.job_id, timeout=180)
            assert job.state == "done"
            assert job.misses == 4 and job.hits == 0
            first = journal.read_result(job.job_id)
            again = await queue.submit(req)
            again = await queue.wait(again.job_id, timeout=60)
            assert again.state == "done"
            assert again.misses == 0 and again.hits == 4
            assert journal.read_result(again.job_id) == first
            return first
        finally:
            await queue.close()

    result = _run(scenario())
    assert set(result) == {"records_json", "report"}
    parsed = json.loads(result["records_json"])
    assert len(parsed["records"]) == 4


def test_queue_cancel_queued_job(tmp_path):
    async def scenario():
        cache = ArtifactCache(root=tmp_path / "cache")
        journal = ServiceJournal(tmp_path / "svc")
        queue = JobQueue(cache, journal, workers=1, executor="inline")
        # no dispatcher: submit, cancel before anything runs
        req = JobRequest.from_payload({"kind": "figure5",
                                       "params": MICRO})
        job = await queue.submit(req)
        assert await queue.cancel(job.job_id) is True
        assert queue.jobs[job.job_id].state == "cancelled"
        # a second cancel is a no-op on a terminal job
        assert await queue.cancel(job.job_id) is False
        assert await queue.cancel("absent") is False

    _run(scenario())


def test_queue_quarantines_persistently_failing_specs(tmp_path):
    """Cells that fail in workers *and* in serial assembly are
    quarantined by bisection, and the job completes with a partial
    result instead of failing — one poison spec costs one cell."""
    async def scenario():
        cache = ArtifactCache(root=tmp_path / "cache")
        journal = ServiceJournal(tmp_path / "svc")
        queue = JobQueue(cache, journal, workers=1, executor="thread",
                         retries=0, backoff=0.0, shard_retries=1)
        await queue.start()
        try:
            # a synth benchmark with a bogus preset passes request
            # validation per-name but fails inside the worker
            req = JobRequest(kind="figure5", params={
                "benchmarks": ["synth:nope:1"], "scale": 0.05,
                "levels": ["basic_block"],
            })
            job = await queue.submit(req)
            job = await queue.wait(job.job_id, timeout=120)
            assert job.state == "done"
            assert len(job.poisoned) == job.cells
            quarantined = queue.registry.counter(
                "service.specs_quarantined"
            ).value
            assert quarantined == job.cells
            result = journal.read_result(job.job_id)
            assert result["partial"] is True
            assert sorted(result["poisoned"]) == sorted(job.poisoned)
            # the quarantine survives a journal replay
            replayed = replay_journal(journal.path).jobs[job.job_id]
            assert sorted(replayed.poisoned) == sorted(job.poisoned)
        finally:
            await queue.close()

    _run(scenario())


def test_service_restart_resumes_unfinished_job(tmp_path):
    """Kill-restart mid-job: the journal re-enqueues it and completed
    cells resolve as cache hits — the service-level --resume."""
    cache_root = tmp_path / "cache"
    journal_root = tmp_path / "svc"
    req = JobRequest.from_payload({"kind": "figure5", "params": MICRO})

    # first life: journal the submission and a running transition,
    # then "crash" (no terminal event, result never written)
    journal = ServiceJournal(journal_root)
    cache = ArtifactCache(root=cache_root)
    job = Job(job_id="figure5-dead-1", request=req, cells=4,
              submitted_ts=1.0)
    journal.submitted(job, 1)
    job.transition("running")
    journal.state(job)
    # the crashed run had already executed half the grid
    specs = expand_specs(req)
    run_specs(specs[:2], jobs=1, cache=cache)

    # second life: a fresh service over the same journal + cache
    service = CampaignService(
        cache=ArtifactCache(root=cache_root),
        journal_root=journal_root, port=0, workers=2,
        executor="thread",
    )
    with service:
        assert service.resumed == 1
        resumed = service.queue.jobs["figure5-dead-1"]
        assert resumed.resumed is True
        fut = asyncio.run_coroutine_threadsafe(
            service.queue.wait("figure5-dead-1", timeout=180),
            service._loop,
        )
        finished = fut.result(200)
        assert finished.state == "done"
        # only the two cells the first life missed were executed
        assert finished.misses == 2
        assert finished.hits == 2
        result = service.journal.read_result("figure5-dead-1")
    assert result is not None
    assert len(json.loads(result["records_json"])["records"]) == 4
    # a next submission continues the seq counter past the dead job
    replay = replay_journal(journal.path)
    assert replay.last_seq == 1
    assert replay.jobs["figure5-dead-1"].state == "done"
