"""Tests of the experiment harnesses (small scales for speed)."""

import pytest

from repro.compiler import HeuristicLevel
from repro.experiments import clear_cache, run_benchmark
from repro.experiments.ablations import (
    format_sweep,
    sweep_forward_policy,
    sweep_max_targets,
    sweep_sync_table,
    sweep_thresholds,
)
from repro.experiments.breakdown import format_breakdown, run_breakdown
from repro.experiments.figure5 import Figure5Result, format_figure5, run_figure5
from repro.experiments.runner import compile_benchmark
from repro.experiments.table1 import format_table1, run_table1

SMALL = 0.15


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunner:
    def test_run_record_fields(self):
        rec = run_benchmark(
            "compress", HeuristicLevel.CONTROL_FLOW, n_pus=4, scale=SMALL
        )
        assert rec.benchmark == "compress" and rec.suite == "int"
        assert rec.ipc > 0
        assert rec.instructions > 0
        assert rec.mean_task_size > 1
        assert 0 <= rec.task_misprediction_percent <= 100
        assert rec.window_span_formula >= rec.mean_task_size
        assert rec.branch_normalized_misprediction_percent <= (
            rec.task_misprediction_percent + 1e-9
        )

    def test_selection_fields_never_alias_cache_entries(self):
        # Regression: the key once hand-picked three SelectionConfig
        # fields, so configs differing only in the others (max_unroll,
        # hoist_induction, ...) silently shared a cached partition.
        from dataclasses import replace

        from repro.compiler import SelectionConfig

        base = SelectionConfig(level=HeuristicLevel.TASK_SIZE)
        c_base = compile_benchmark(
            "compress", HeuristicLevel.TASK_SIZE, SMALL, selection=base
        )
        for change in (
            {"max_unroll": 1},
            {"hoist_induction": False},
            {"schedule_communication": False},
            {"max_dependences": 3},
        ):
            variant = compile_benchmark(
                "compress",
                HeuristicLevel.TASK_SIZE,
                SMALL,
                selection=replace(base, **change),
            )
            assert variant is not c_base, change

    def test_compilation_cache_reused(self):
        c1 = compile_benchmark("compress", HeuristicLevel.CONTROL_FLOW, SMALL)
        c2 = compile_benchmark("compress", HeuristicLevel.CONTROL_FLOW, SMALL)
        assert c1 is c2
        clear_cache()
        c3 = compile_benchmark("compress", HeuristicLevel.CONTROL_FLOW, SMALL)
        assert c3 is not c1

    def test_pu_sweep_shares_compilation(self):
        r4 = run_benchmark(
            "compress", HeuristicLevel.CONTROL_FLOW, n_pus=4, scale=SMALL
        )
        r8 = run_benchmark(
            "compress", HeuristicLevel.CONTROL_FLOW, n_pus=8, scale=SMALL
        )
        assert r4.instructions == r8.instructions
        assert r4.mean_task_size == r8.mean_task_size


class TestFigure5:
    def test_grid_and_report(self):
        result = run_figure5(
            benchmarks=["compress", "hydro2d"],
            configs=[(4, True)],
            scale=SMALL,
        )
        assert isinstance(result, Figure5Result)
        gain = result.improvement(
            "compress", HeuristicLevel.CONTROL_FLOW, (4, True)
        )
        assert gain > 0  # heuristics beat basic blocks
        text = format_figure5(result, configs=[(4, True)])
        assert "Figure 5" in text and "compress" in text
        lo, hi = result.suite_improvement_range(
            "int", HeuristicLevel.CONTROL_FLOW, (4, True)
        )
        assert lo <= hi
        assert result.suite_geomean_ratio(
            "int", HeuristicLevel.CONTROL_FLOW, (4, True)
        ) > 1.0


class TestTable1:
    def test_table_and_report(self):
        result = run_table1(benchmarks=["compress"], n_pus=8, scale=SMALL)
        bb = result.record("compress", HeuristicLevel.BASIC_BLOCK)
        cf = result.record("compress", HeuristicLevel.CONTROL_FLOW)
        dd = result.record("compress", HeuristicLevel.DATA_DEPENDENCE)
        assert cf.mean_task_size > bb.mean_task_size
        assert dd.window_span_formula > bb.window_span_formula
        text = format_table1(result)
        assert "compress" in text and "#dyn" in text


class TestBreakdownHarness:
    def test_fractions_sum_to_one(self):
        result = run_breakdown(
            ["compress"], n_pus=4,
            levels=[HeuristicLevel.BASIC_BLOCK], scale=SMALL,
        )
        fractions = result.fractions("compress", HeuristicLevel.BASIC_BLOCK)
        assert sum(fractions.values()) == pytest.approx(1.0)
        text = format_breakdown(result)
        assert "useful" in text


class TestAblations:
    def test_max_targets_sweep(self):
        records = sweep_max_targets(["compress"], values=(1, 4), scale=SMALL)
        narrow = records[("compress", 1)]
        wide = records[("compress", 4)]
        # One-target tasks are basic-block-like: smaller.
        assert narrow.mean_task_size <= wide.mean_task_size
        assert "ablation" in format_sweep(records, "N")

    def test_threshold_sweep(self):
        records = sweep_thresholds(["compress"], values=(10, 60), scale=SMALL)
        small_t = records[("compress", 10)]
        large_t = records[("compress", 60)]
        assert large_t.mean_task_size >= small_t.mean_task_size

    def test_sync_table_sweep(self):
        records = sweep_sync_table(["m88ksim"], scale=SMALL)
        with_sync = records[("m88ksim", True)]
        without = records[("m88ksim", False)]
        assert with_sync.memory_squashes <= without.memory_squashes

    def test_forward_policy_sweep(self):
        from repro.sim.config import ForwardPolicy

        records = sweep_forward_policy(["compress"], scale=SMALL)
        eager = records[("compress", ForwardPolicy.EAGER)]
        lazy = records[("compress", ForwardPolicy.LAZY)]
        assert eager.cycles <= lazy.cycles
