"""Unit tests for the Task / TaskPartition model."""

import pytest

from repro.compiler.task import Target, TargetKind, TaskPartition


def _partition(diamond_loop):
    return TaskPartition(diamond_loop)


class TestTarget:
    def test_ordering_is_deterministic(self):
        targets = [
            Target(TargetKind.RETURN),
            Target(TargetKind.BLOCK, ("main", "a")),
            Target(TargetKind.CALL, ("f", "entry")),
            Target(TargetKind.HALT),
        ]
        ordered = sorted(targets)
        assert ordered == sorted(reversed(targets))
        assert ordered[0].kind is TargetKind.BLOCK

    def test_str_forms(self):
        assert str(Target(TargetKind.RETURN)) == "return"
        assert "main:a" in str(Target(TargetKind.BLOCK, ("main", "a")))


class TestTaskValidation:
    def test_valid_single_block_task(self, diamond_loop):
        part = _partition(diamond_loop)
        task = part.new_task(
            function="main",
            root=("main", "entry"),
            blocks={("main", "entry")},
            internal_edges=set(),
            targets=[Target(TargetKind.BLOCK, ("main", "body_1"))],
        )
        task.validate(diamond_loop)

    def test_root_must_be_member(self, diamond_loop):
        part = _partition(diamond_loop)
        task = part.new_task(
            function="main",
            root=("main", "entry"),
            blocks={("main", "body_1")},
            internal_edges=set(),
            targets=[],
        )
        with pytest.raises(ValueError, match="root not a member"):
            task.validate(diamond_loop)

    def test_unreachable_member_rejected(self, diamond_loop):
        part = _partition(diamond_loop)
        task = part.new_task(
            function="main",
            root=("main", "entry"),
            blocks={("main", "entry"), ("main", "done_5")},
            internal_edges=set(),
            targets=[],
        )
        with pytest.raises(ValueError, match="unreachable"):
            task.validate(diamond_loop)

    def test_internal_cycle_rejected(self, diamond_loop):
        part = _partition(diamond_loop)
        task = part.new_task(
            function="main",
            root=("main", "body_1"),
            blocks={("main", "body_1"), ("main", "then_2")},
            internal_edges={
                (("main", "body_1"), ("main", "then_2")),
                (("main", "then_2"), ("main", "body_1")),
            },
            targets=[],
        )
        with pytest.raises(ValueError, match="cycle"):
            task.validate(diamond_loop)

    def test_edge_outside_members_rejected(self, diamond_loop):
        part = _partition(diamond_loop)
        task = part.new_task(
            function="main",
            root=("main", "entry"),
            blocks={("main", "entry")},
            internal_edges={(("main", "entry"), ("main", "body_1"))},
            targets=[],
        )
        with pytest.raises(ValueError, match="leaves the member set"):
            task.validate(diamond_loop)


class TestPartition:
    def test_duplicate_root_rejected(self, diamond_loop):
        part = _partition(diamond_loop)
        part.new_task("main", ("main", "entry"), {("main", "entry")}, set(), [])
        with pytest.raises(ValueError, match="already rooted"):
            part.new_task(
                "main", ("main", "entry"), {("main", "entry")}, set(), []
            )

    def test_validate_requires_rooted_targets(self, diamond_loop):
        part = _partition(diamond_loop)
        part.new_task(
            "main",
            ("main", "entry"),
            {("main", "entry")},
            set(),
            [Target(TargetKind.BLOCK, ("main", "body_1"))],
        )
        with pytest.raises(ValueError, match="no rooted task"):
            part.validate()

    def test_validate_requires_entry_root(self, diamond_loop):
        part = _partition(diamond_loop)
        part.new_task(
            "main", ("main", "body_1"), {("main", "body_1")}, set(), []
        )
        with pytest.raises(ValueError, match="program entry"):
            part.validate()

    def test_tasks_containing(self, diamond_loop):
        part = _partition(diamond_loop)
        t1 = part.new_task(
            "main", ("main", "entry"), {("main", "entry")}, set(), []
        )
        t2 = part.new_task(
            "main",
            ("main", "body_1"),
            {("main", "body_1"), ("main", "then_2")},
            {(("main", "body_1"), ("main", "then_2"))},
            [],
        )
        assert part.tasks_containing(("main", "then_2")) == [t2]
        assert part.tasks_containing(("main", "entry")) == [t1]

    def test_replace_task(self, diamond_loop):
        part = _partition(diamond_loop)
        task = part.new_task(
            "main", ("main", "entry"), {("main", "entry")}, set(), []
        )
        import dataclasses

        updated = dataclasses.replace(task, targets=(Target(TargetKind.HALT),))
        part.replace_task(updated)
        assert part.task_at(("main", "entry")).targets == (
            Target(TargetKind.HALT),
        )
        with pytest.raises(ValueError, match="no task rooted"):
            part.replace_task(
                dataclasses.replace(updated, root=("main", "body_1"))
            )
