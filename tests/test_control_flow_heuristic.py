"""Unit tests for terminal rules and greedy task growth."""

from repro.compiler.control_flow import GrowthContext, GrowthPolicy
from repro.compiler.heuristics import HeuristicLevel, SelectionConfig
from repro.compiler.task import TargetKind
from repro.ir import IRBuilder
from repro.ir.cfg import build_cfg
from tests.conftest import build_call_program, build_diamond_loop


def make_context(program, func="main", level=HeuristicLevel.CONTROL_FLOW,
                 absorbed=None, **cfg_kwargs):
    config = SelectionConfig(level=level, **cfg_kwargs)
    return GrowthContext(
        program, func, build_cfg(program.function(func)), config,
        absorbed_functions=absorbed or set(),
    )


def call_block_label(program, func="main"):
    """Label of the first block ending in a CALL."""
    return next(
        blk.label for blk in program.function(func).blocks()
        if blk.ends_in_call
    )


def halt_block_label(program, func="main"):
    """Label of the first block ending in HALT."""
    return next(
        blk.label for blk in program.function(func).blocks()
        if blk.ends_in_halt
    )


class TestTerminalRules:
    def test_call_block_is_terminal(self):
        prog = build_call_program("large")
        ctx = make_context(prog)
        assert ctx.is_terminal_node(call_block_label(prog))

    def test_absorbed_call_block_is_not_terminal(self):
        prog = build_call_program("small")
        ctx = make_context(prog, absorbed={"helper"})
        label = call_block_label(prog)
        assert not ctx.is_terminal_node(label)
        assert ctx.call_is_absorbed(label)

    def test_return_and_halt_blocks_terminal(self):
        prog = build_call_program("small")
        helper_ctx = make_context(prog, func="helper")
        assert helper_ctx.is_terminal_node("entry")  # helper entry RETs
        main_ctx = make_context(prog)
        assert main_ctx.is_terminal_node(halt_block_label(prog))

    def test_back_edge_terminal(self):
        prog = build_diamond_loop()
        ctx = make_context(prog)
        assert ctx.is_terminal_edge("join_4", "body_1")
        assert not ctx.is_terminal_edge("body_1", "then_2")

    def test_loop_entry_edge_terminal(self):
        prog = build_diamond_loop()
        ctx = make_context(prog)
        assert ctx.is_terminal_edge("entry", "body_1")

    def test_loop_exit_edge_terminal(self):
        prog = build_diamond_loop()
        ctx = make_context(prog)
        assert ctx.is_terminal_edge("join_4", "done_5")


class TestTargets:
    def test_single_block_targets(self):
        prog = build_diamond_loop()
        ctx = make_context(prog)
        targets = ctx.compute_targets({"body_1"})
        kinds = {t.kind for t in targets}
        assert kinds == {TargetKind.BLOCK}
        assert {t.block[1] for t in targets} == {"then_2", "other_3"}

    def test_loop_body_targets_include_header_and_exit(self):
        prog = build_diamond_loop()
        ctx = make_context(prog)
        members = {"body_1", "then_2", "other_3", "join_4"}
        targets = ctx.compute_targets(members)
        names = {t.block[1] for t in targets}
        assert names == {"body_1", "done_5"}

    def test_call_and_halt_target_kinds(self):
        prog = build_call_program("large")
        ctx = make_context(prog)
        targets = ctx.compute_targets({call_block_label(prog)})
        assert [t.kind for t in targets] == [TargetKind.CALL]
        assert targets[0].block == ("helper", "entry")
        halt = ctx.compute_targets({halt_block_label(prog)})
        assert [t.kind for t in halt] == [TargetKind.HALT]

    def test_return_target_kind(self):
        prog = build_call_program("small")
        ctx = make_context(prog, func="helper")
        targets = ctx.compute_targets({"entry"})
        assert [t.kind for t in targets] == [TargetKind.RETURN]


class TestGrowth:
    def test_basic_block_level_never_grows(self):
        prog = build_diamond_loop()
        ctx = make_context(prog, level=HeuristicLevel.BASIC_BLOCK)
        assert ctx.grow("body_1") == {"body_1"}

    def test_growth_reconverges_through_diamond(self):
        prog = build_diamond_loop()
        ctx = make_context(prog)
        members = ctx.grow("body_1")
        assert members == {"body_1", "then_2", "other_3", "join_4"}

    def test_growth_stops_at_terminal_edges(self):
        prog = build_diamond_loop()
        ctx = make_context(prog)
        members = ctx.grow("entry")
        assert members == {"entry"}  # loop entry edge is terminal

    def test_feasible_prefix_respects_target_limit(self):
        # A switch whose 5 cases each call a *different* function:
        # every included case adds one CALL target, so with
        # max_targets=2 the grower must roll back to a short prefix
        # while max_targets=8 keeps everything.
        b = IRBuilder()
        for i in range(5):
            with b.function(f"f{i}"):
                b.ret()
        with b.function("main"):
            b.li("r1", 0)
            cases = [b.new_label(f"case{i}") for i in range(5)]
            tests = [b.new_label(f"test{i}") for i in range(4)]
            done = b.new_label("done")
            b.seqi("r9", "r1", 0)
            b.bnez("r9", cases[0], fallthrough=tests[0])
            for i in range(4):
                with b.block(tests[i]):
                    b.seqi("r9", "r1", i + 1)
                    nxt = tests[i + 1] if i + 1 < 4 else cases[4]
                    b.bnez("r9", cases[i + 1], fallthrough=nxt)
            for i, case in enumerate(cases):
                with b.block(case):
                    b.call(f"f{i}", fallthrough=done if i == 0 else cases[0])
            with b.block(done):
                b.halt()
        prog = b.build()
        narrow = make_context(prog, max_targets=2)
        members = narrow.grow("entry")
        assert len(narrow.compute_targets(members)) <= 2
        wide = make_context(prog, max_targets=8)
        wide_members = wide.grow("entry")
        assert len(wide_members) > len(members)
        assert len(wide.compute_targets(wide_members)) > 2

    def test_policy_can_veto_growth(self):
        prog = build_diamond_loop()
        ctx = make_context(prog)

        class Nothing(GrowthPolicy):
            def allow(self, parent, child):
                return False

        assert ctx.grow("body_1", policy=Nothing()) == {"body_1"}

    def test_internal_edges_match_members(self):
        prog = build_diamond_loop()
        ctx = make_context(prog)
        members = ctx.grow("body_1")
        edges = ctx.compute_internal_edges(members)
        labels = {(s[1], d[1]) for s, d in edges}
        assert ("body_1", "then_2") in labels
        assert ("join_4", "body_1") not in labels  # back edge
