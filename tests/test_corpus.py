"""The permanent fuzzing corpus: minimized generated programs.

Each ``tests/corpus/*.asm`` file is a delta-debugged reproducer (see
its header comment for what feature it pins and which
``synth:<preset>:<seed>`` program it was minimized from).  The corpus
is a regression net at the opposite end of the spectrum from the big
registry workloads: each program is a handful of blocks exercising
one shape the generator targets — loops, calls, diamonds, aliasing
memory, FP, long def-use chains — and every one is pushed through the
full differential check (all heuristic levels x all three engines x
the commit-log oracle) on every test run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.ir import parse_program, program_to_text, well_formed
from repro.ir.interp import run_program
from repro.synth import check_program

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.asm"))


def _load(path: Path):
    return parse_program(path.read_text(encoding="utf-8"))


def test_corpus_is_populated():
    assert len(CORPUS) >= 10, (
        f"expected at least 10 minimized corpus programs in "
        f"{CORPUS_DIR}, found {len(CORPUS)}"
    )


@pytest.mark.parametrize(
    "path", CORPUS, ids=[p.stem for p in CORPUS]
)
def test_corpus_program_is_valid(path):
    program = _load(path)
    program.validate()
    assert well_formed(program) == []
    trace = run_program(program, max_instructions=200_000)
    assert len(trace) > 0
    # text round-trip is exact (headers aside)
    text = program_to_text(program)
    assert program_to_text(parse_program(text)) == text


@pytest.mark.parametrize(
    "path", CORPUS, ids=[p.stem for p in CORPUS]
)
def test_corpus_program_passes_differential_check(path):
    divergences = check_program(
        _load(path), engines=("fast", "batched", "reference")
    )
    assert divergences == [], divergences
