"""End-to-end invariants across real benchmarks and all levels.

These are the repository's acceptance tests: a representative subset
of the SPEC95 stand-ins must flow through compilation, tracing, task
streaming, and timing simulation at every heuristic level, preserve
functional results, and reproduce the paper's headline orderings.
"""

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.experiments import clear_cache, run_benchmark
from repro.ir.interp import Interpreter
from repro.workloads import get_benchmark

SUBSET = ["compress", "li", "m88ksim", "tomcatv", "hydro2d"]
SMALL = 0.15
LEVELS = list(HeuristicLevel)


@pytest.fixture(scope="module", autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.mark.parametrize("name", SUBSET)
def test_all_levels_preserve_results(name):
    reference = None
    for level in LEVELS:
        part = select_tasks(
            get_benchmark(name).build(SMALL), SelectionConfig(level=level)
        )
        interp = Interpreter(part.program)
        interp.run()
        state = sorted(interp.memory.items())
        if reference is None:
            reference = state
        else:
            assert state == reference, f"{name} diverged at {level}"


@pytest.mark.parametrize("name", SUBSET)
def test_heuristics_beat_basic_blocks(name):
    # li's effect needs its full-size recursion tree; micro-scale runs
    # are cold-start dominated.
    scale = 1.0 if name == "li" else SMALL
    bb = run_benchmark(name, HeuristicLevel.BASIC_BLOCK, n_pus=4, scale=scale)
    cf = run_benchmark(name, HeuristicLevel.CONTROL_FLOW, n_pus=4, scale=scale)
    assert cf.ipc > bb.ipc, (
        f"{name}: control flow tasks ({cf.ipc:.2f}) must beat basic "
        f"blocks ({bb.ipc:.2f})"
    )


@pytest.mark.parametrize("name", SUBSET)
def test_heuristic_tasks_are_larger(name):
    bb = run_benchmark(name, HeuristicLevel.BASIC_BLOCK, n_pus=4, scale=SMALL)
    dd = run_benchmark(
        name, HeuristicLevel.DATA_DEPENDENCE, n_pus=4, scale=SMALL
    )
    assert dd.mean_task_size > bb.mean_task_size


@pytest.mark.parametrize("name", ["compress", "tomcatv"])
def test_eight_pus_not_slower_than_four(name):
    four = run_benchmark(
        name, HeuristicLevel.DATA_DEPENDENCE, n_pus=4, scale=SMALL
    )
    eight = run_benchmark(
        name, HeuristicLevel.DATA_DEPENDENCE, n_pus=8, scale=SMALL
    )
    assert eight.cycles <= four.cycles * 1.02


def test_window_span_ordering_matches_paper():
    """DD window spans exceed BB spans (Table 1's key contrast)."""
    for name in ("compress", "tomcatv"):
        bb = run_benchmark(
            name, HeuristicLevel.BASIC_BLOCK, n_pus=8, scale=SMALL
        )
        dd = run_benchmark(
            name, HeuristicLevel.DATA_DEPENDENCE, n_pus=8, scale=SMALL
        )
        assert dd.window_span_formula > bb.window_span_formula


def test_fp_benchmark_outscales_int_on_window_span():
    """FP loop codes build much larger windows than irregular int code."""
    fp = run_benchmark(
        "tomcatv", HeuristicLevel.DATA_DEPENDENCE, n_pus=8, scale=SMALL
    )
    li = run_benchmark(
        "li", HeuristicLevel.DATA_DEPENDENCE, n_pus=8, scale=SMALL
    )
    assert fp.window_span_formula > li.window_span_formula


def test_in_order_gains_more_from_heuristics():
    """Relative CF/BB gain is at least as large in-order (Section 4.3.1)."""
    name = "hydro2d"
    bb_o = run_benchmark(name, HeuristicLevel.BASIC_BLOCK, 4, True, SMALL)
    cf_o = run_benchmark(name, HeuristicLevel.CONTROL_FLOW, 4, True, SMALL)
    bb_i = run_benchmark(name, HeuristicLevel.BASIC_BLOCK, 4, False, SMALL)
    cf_i = run_benchmark(name, HeuristicLevel.CONTROL_FLOW, 4, False, SMALL)
    gain_ooo = cf_o.ipc / bb_o.ipc
    gain_ino = cf_i.ipc / bb_i.ipc
    assert gain_ino >= gain_ooo * 0.9
