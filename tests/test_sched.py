"""Unit tests for register communication scheduling."""

from repro.compiler.sched import (
    carried_registers,
    schedule_register_communication,
)
from repro.compiler.transforms import clone_program
from repro.ir import IRBuilder
from repro.ir.instructions import Opcode
from repro.ir.interp import Interpreter
from tests.conftest import build_diamond_loop


def build_chain_loop():
    """A loop whose carried chain (r16) sits *behind* independent work."""
    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 0)
        b.li("r2", 30)
        b.li("r16", 1)  # the carried chain value
        b.li("r20", 0)  # independent accumulator
        body = b.new_label("body")
        done = b.new_label("done")
        b.jump(body)
        with b.block(body):
            # Independent work first (would delay the chain in-order).
            b.muli("r21", "r1", 7)
            b.xori("r21", "r21", 3)
            b.add("r20", "r20", "r21")
            # The carried chain, originally late in the block.
            b.muli("r16", "r16", 3)
            b.remi("r16", "r16", 1009)
            b.addi("r1", "r1", 1)
            b.slt("r9", "r1", "r2")
            b.bnez("r9", body, fallthrough=done)
        with b.block(done):
            b.store("r16", "r0", 100)
            b.store("r20", "r0", 101)
            b.halt()
    return b.build()


def run_memory(program):
    interp = Interpreter(program)
    interp.run()
    return interp.memory


class TestCarriedRegisters:
    def test_loop_carried_detected(self):
        prog = build_chain_loop()
        carried = carried_registers(prog.main)
        assert "r16" in carried["body_1"]
        assert "r1" in carried["body_1"]
        # r21 is recomputed each iteration, never carried.
        assert "r21" not in carried["body_1"]

    def test_non_loop_blocks_have_none(self):
        prog = build_chain_loop()
        carried = carried_registers(prog.main)
        assert carried["entry"] == set()
        assert carried["done_2"] == set()


class TestScheduling:
    def test_chain_hoisted_to_front(self):
        prog = clone_program(build_chain_loop())
        changed = schedule_register_communication(prog)
        assert changed >= 1
        body = prog.main.block("body_1")
        # The first instructions now belong to the carried chains
        # (r16 muli/remi, r1 addi), independent work follows.
        first_dsts = [ins.dst for ins in body.instructions[:4]]
        assert "r16" in first_dsts
        mul_pos = next(
            i for i, ins in enumerate(body.instructions)
            if ins.dst == "r16" and ins.opcode is Opcode.MUL
        )
        # The accumulator update (independent of the chain) sinks
        # behind the hoisted r16 chain.
        indep_pos = next(
            i for i, ins in enumerate(body.instructions) if ins.dst == "r20"
        )
        assert mul_pos < indep_pos

    def test_semantics_preserved(self):
        base = run_memory(build_chain_loop())
        prog = clone_program(build_chain_loop())
        schedule_register_communication(prog)
        assert run_memory(prog) == base

    def test_diamond_loop_semantics_preserved(self, diamond_loop):
        base = run_memory(diamond_loop)
        prog = clone_program(diamond_loop)
        schedule_register_communication(prog)
        assert run_memory(prog) == base

    def test_memory_order_not_violated(self):
        # A store/load pair to the same address around the chain: the
        # hazard closure must keep their relative order.
        b = IRBuilder()
        with b.function("main"):
            b.li("r1", 0)
            b.li("r2", 10)
            b.li("r16", 1)
            body = b.new_label("body")
            done = b.new_label("done")
            b.jump(body)
            with b.block(body):
                b.store("r1", "r0", 500)
                b.load("r21", "r0", 500)
                b.muli("r16", "r16", 3)
                b.remi("r16", "r16", 97)
                b.add("r16", "r16", "r21")
                b.addi("r1", "r1", 1)
                b.slt("r9", "r1", "r2")
                b.bnez("r9", body, fallthrough=done)
            with b.block(done):
                b.store("r16", "r0", 100)
                b.halt()
        base_prog = b.build()
        base = run_memory(base_prog)
        prog = clone_program(base_prog)
        schedule_register_communication(prog)
        assert run_memory(prog) == base

    def test_terminator_stays_last(self):
        prog = clone_program(build_chain_loop())
        schedule_register_communication(prog)
        body = prog.main.block("body_1")
        assert body.terminator is not None
        assert body.terminator.opcode is Opcode.BNEZ

    def test_idempotent_on_scheduled_code(self):
        prog = clone_program(build_chain_loop())
        schedule_register_communication(prog)
        snapshot = str(prog)
        schedule_register_communication(prog)
        assert str(prog) == snapshot
