"""Property-based whole-pipeline tests on randomly generated programs.

Hypothesis builds random structured programs (nested sequences,
if-diamonds, and counted loops over a small register machine) and the
suite checks the end-to-end invariants that every layer must uphold:

* all four heuristic levels produce valid partitions;
* the dynamic task stream reconstructs the trace exactly (contiguous
  spans, instances entered at roots);
* IR transforms (unrolling with induction expansion, hoisting) never
  change program results;
* the timing simulator commits exactly the functional trace.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.ir import IRBuilder
from repro.ir.interp import Interpreter
from repro.sim import SimConfig, build_task_stream, simulate

# --------------------------------------------------------------- generator

_ops = st.sampled_from(["add", "sub", "xor", "mul"])
_regs = st.sampled_from([f"r{i}" for i in range(1, 8)])


@st.composite
def statements(draw, depth=0):
    """One structured statement: straight code, a diamond, or a loop."""
    kind = draw(
        st.sampled_from(
            ["code", "code", "if", "loop"] if depth < 2 else ["code"]
        )
    )
    if kind == "code":
        n = draw(st.integers(1, 4))
        body = []
        for _ in range(n):
            body.append(
                (draw(_ops), draw(_regs), draw(_regs), draw(_regs))
            )
        mem = draw(st.booleans())
        return ("code", body, mem)
    if kind == "if":
        cond = draw(_regs)
        then = draw(statements(depth=depth + 1))
        other = draw(st.none() | statements(depth=depth + 1))
        return ("if", cond, then, other)
    trips = draw(st.integers(0, 6))
    inner = draw(statements(depth=depth + 1))
    return ("loop", trips, inner)


@st.composite
def programs(draw):
    stmts = draw(st.lists(statements(), min_size=1, max_size=4))
    return stmts


_loop_counters = iter(range(10_000))


def _emit(b: IRBuilder, stmt, loop_depth=0) -> None:
    kind = stmt[0]
    if kind == "code":
        _, body, mem = stmt
        for op, dst, a, c in body:
            getattr(b, op)(dst, a, c)
        if mem:
            b.andi("r7", "r7", 63)
            b.addi("r7", "r7", 500)
            b.store("r1", "r7", 0)
            b.load("r2", "r7", 0)
    elif kind == "if":
        _, cond, then, other = stmt
        then_lbl = b.new_label("p_then")
        join_lbl = b.new_label("p_join")
        if other is not None:
            else_lbl = b.new_label("p_else")
            b.bnez(cond, then_lbl, fallthrough=else_lbl)
            with b.block(else_lbl):
                _emit(b, other, loop_depth)
                b.jump(join_lbl)
        else:
            b.bnez(cond, then_lbl, fallthrough=join_lbl)
        with b.block(then_lbl):
            _emit(b, then, loop_depth)
            b.jump(join_lbl)
        b.open_block(join_lbl)
    else:
        _, trips, inner = stmt
        var = f"r{14 + loop_depth}"     # distinct per nesting level
        bound = f"r{20 + loop_depth}"
        head = b.new_label("p_head")
        body_lbl = b.new_label("p_body")
        exit_lbl = b.new_label("p_exit")
        b.li(var, 0)
        b.li(bound, trips)
        b.jump(head)
        with b.block(head):
            b.slt("r13", var, bound)
            b.beqz("r13", exit_lbl, fallthrough=body_lbl)
        with b.block(body_lbl):
            _emit(b, inner, loop_depth + 1)
            b.addi(var, var, 1)
            b.jump(head)
        b.open_block(exit_lbl)


def build_random_program(stmts):
    b = IRBuilder()
    with b.function("main"):
        for i in range(1, 8):
            b.li(f"r{i}", i * 3 + 1)
        for stmt in stmts:
            _emit(b, stmt)
        for i in range(1, 8):
            b.store(f"r{i}", "r0", 900 + i)
        b.halt()
    return b.build()


def final_memory(program):
    interp = Interpreter(program, max_instructions=200_000)
    interp.run()
    return interp.memory


# -------------------------------------------------------------- properties

LEVELS = list(HeuristicLevel)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(stmts=programs(), level=st.sampled_from(LEVELS))
def test_pipeline_invariants_on_random_programs(stmts, level):
    program = build_random_program(stmts)
    reference = final_memory(program)

    partition = select_tasks(program, SelectionConfig(level=level))
    partition.validate()

    # Transforms preserved semantics.
    assert final_memory(partition.program) == reference

    interp = Interpreter(partition.program, max_instructions=200_000)
    trace = interp.run()
    stream = build_task_stream(trace, partition)

    # Spans tile the trace and every instance starts at its root.
    assert stream.tasks[0].start == 0
    assert stream.tasks[-1].end == len(trace)
    for prev, cur in zip(stream.tasks, stream.tasks[1:]):
        assert prev.end == cur.start
    for dyn in stream:
        first = trace[dyn.start]
        if not stream.absorbed_flags[dyn.start]:
            assert first.block == dyn.task.root

    # Timing simulation commits exactly the functional work.
    result = simulate(stream, SimConfig(n_pus=4))
    assert result.committed_instructions == len(trace)
    assert result.cycles > 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stmts=programs())
def test_all_levels_agree_on_results(stmts):
    program = build_random_program(stmts)
    memories = []
    for level in LEVELS:
        partition = select_tasks(program, SelectionConfig(level=level))
        memories.append(final_memory(partition.program))
    assert all(m == memories[0] for m in memories[1:])
