"""Unit tests for loop unrolling, induction expansion, and hoisting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.transforms import (
    clone_program,
    hoist_induction_increments,
    loop_static_size,
    unroll_small_loops,
)
from repro.ir import IRBuilder
from repro.ir.cfg import build_cfg
from repro.ir.interp import Interpreter
from tests.conftest import build_diamond_loop


def run_memory(program):
    interp = Interpreter(program)
    interp.run()
    return interp.memory


def build_counter_loop(trips: int, use_var_in_body: bool = True):
    """sum += f(i) over i in [0, trips) with the increment at the bottom."""
    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 0)
        b.li("r2", trips)
        b.li("r3", 0)
        head = b.new_label("head")
        body = b.new_label("body")
        done = b.new_label("done")
        b.jump(head)
        with b.block(head):
            b.slt("r9", "r1", "r2")
            b.beqz("r9", done, fallthrough=body)
        with b.block(body):
            if use_var_in_body:
                b.muli("r8", "r1", 3)
                b.add("r3", "r3", "r8")
            else:
                b.addi("r3", "r3", 2)
            b.addi("r1", "r1", 1)
            b.jump(head)
        with b.block(done):
            b.store("r3", "r0", 100)
            b.halt()
    return b.build()


class TestClone:
    def test_clone_is_independent(self, diamond_loop):
        clone = clone_program(diamond_loop)
        clone.main.entry.instructions.pop()
        assert clone.main.entry.size != diamond_loop.main.entry.size


class TestUnrolling:
    @pytest.mark.parametrize("trips", [0, 1, 3, 4, 7, 16])
    def test_semantics_preserved_any_trip_count(self, trips):
        base = run_memory(build_counter_loop(trips))
        prog = clone_program(build_counter_loop(trips))
        n = unroll_small_loops(prog, loop_thresh=30, max_unroll=4)
        assert n == 1
        prog.validate()
        assert run_memory(prog) == base

    def test_unroll_replicates_blocks(self):
        prog = clone_program(build_counter_loop(8))
        before = len(prog.main.labels())
        unroll_small_loops(prog, loop_thresh=30, max_unroll=4)
        after = len(prog.main.labels())
        assert after > before
        assert any("#u" in lbl for lbl in prog.main.labels())

    def test_large_loops_not_unrolled(self, diamond_loop):
        prog = clone_program(diamond_loop)
        assert unroll_small_loops(prog, loop_thresh=3) == 0

    def test_induction_expansion_emits_prologue(self):
        prog = clone_program(build_counter_loop(12))
        unroll_small_loops(prog, loop_thresh=30, max_unroll=4)
        cfg = build_cfg(prog.main)
        header = next(lp.header for lp in cfg.loops)
        first = prog.main.block(header).instructions[0]
        # Prologue advances the induction register by factor * step.
        assert first.dst == "r1"
        assert first.imm == 4

    def test_expansion_skipped_when_var_live_at_exit(self):
        # Make the loop variable observable after the loop.
        b = IRBuilder()
        with b.function("main"):
            b.li("r1", 0)
            b.li("r2", 9)
            head, body, done = (
                b.new_label("head"), b.new_label("body"), b.new_label("done")
            )
            b.jump(head)
            with b.block(head):
                b.slt("r9", "r1", "r2")
                b.beqz("r9", done, fallthrough=body)
            with b.block(body):
                b.addi("r3", "r3", 2)
                b.addi("r1", "r1", 1)
                b.jump(head)
            with b.block(done):
                b.store("r1", "r0", 100)  # r1 live here
                b.halt()
        base_prog = b.build()
        base = run_memory(base_prog)
        prog = clone_program(base_prog)
        unroll_small_loops(prog, loop_thresh=30, max_unroll=4)
        assert run_memory(prog) == base
        assert run_memory(prog)[100] == 9

    @settings(max_examples=25, deadline=None)
    @given(
        trips=st.integers(0, 25),
        thresh=st.integers(5, 40),
        factor=st.integers(2, 8),
    )
    def test_unroll_property_semantics(self, trips, thresh, factor):
        base = run_memory(build_counter_loop(trips))
        prog = clone_program(build_counter_loop(trips))
        unroll_small_loops(prog, loop_thresh=thresh, max_unroll=factor)
        prog.validate()
        assert run_memory(prog) == base


class TestHoisting:
    def test_hoist_moves_increment_to_header(self):
        prog = clone_program(build_counter_loop(10))
        assert hoist_induction_increments(prog) == 1
        cfg = build_cfg(prog.main)
        header = next(lp.header for lp in cfg.loops)
        first = prog.main.block(header).instructions[0]
        assert first.dst == "r1" and first.imm == 1

    @pytest.mark.parametrize("trips", [0, 1, 5, 10])
    @pytest.mark.parametrize("use_var", [True, False])
    def test_hoist_preserves_semantics(self, trips, use_var):
        base = run_memory(build_counter_loop(trips, use_var))
        prog = clone_program(build_counter_loop(trips, use_var))
        hoist_induction_increments(prog)
        prog.validate()
        assert run_memory(prog) == base

    def test_hoist_skipped_when_live_at_exit_from_other_block(self):
        # Exit from the head, variable observed after: hoisting is
        # still legal here because the head's test is rewritten to the
        # temp... unless the var is live at the exit target.
        b = IRBuilder()
        with b.function("main"):
            b.li("r1", 0)
            head, body, done = (
                b.new_label("head"), b.new_label("body"), b.new_label("done")
            )
            b.jump(head)
            with b.block(head):
                b.slti("r9", "r1", 7)
                b.beqz("r9", done, fallthrough=body)
            with b.block(body):
                b.addi("r1", "r1", 1)
                b.jump(head)
            with b.block(done):
                b.store("r1", "r0", 100)
                b.halt()
        base_prog = b.build()
        base = run_memory(base_prog)
        prog = clone_program(base_prog)
        hoist_induction_increments(prog)
        assert run_memory(prog) == base

    def test_diamond_loop_hoist_preserves_semantics(self, diamond_loop):
        base = run_memory(diamond_loop)
        prog = clone_program(diamond_loop)
        hoist_induction_increments(prog)
        assert run_memory(prog) == base


class TestLoopSize:
    def test_loop_static_size(self):
        prog = build_counter_loop(5)
        cfg = build_cfg(prog.main)
        loop = cfg.loops[0]
        assert loop_static_size(prog.main, loop) == sum(
            prog.main.block(lbl).size for lbl in loop.body
        )
