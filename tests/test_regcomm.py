"""Unit tests for register communication release analysis."""

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.compiler.regcomm import ReleaseAnalysis, function_write_sets
from repro.ir import IRBuilder
from tests.conftest import build_call_program, build_diamond_loop


class TestFunctionWriteSets:
    def test_direct_writes(self, diamond_loop):
        writes = function_write_sets(diamond_loop)
        assert {"r1", "r2", "r3", "r9"} <= writes["main"]

    def test_transitive_through_calls(self, call_program):
        writes = function_write_sets(call_program)
        assert "r2" in writes["helper"]
        assert "r2" in writes["main"]  # inherited from helper

    def test_recursive_fixpoint_terminates(self):
        b = IRBuilder()
        with b.function("a"):
            b.li("r5", 1)
            cont = b.new_label("ca")
            b.call("b", fallthrough=cont)
            with b.block(cont):
                b.ret()
        with b.function("b"):
            b.li("r6", 1)
            cont = b.new_label("cb")
            b.call("a", fallthrough=cont)
            with b.block(cont):
                b.ret()
        with b.function("main"):
            cont = b.new_label("cm")
            b.call("a", fallthrough=cont)
            with b.block(cont):
                b.halt()
        writes = function_write_sets(b.build())
        assert writes["a"] == writes["b"] == frozenset({"r5", "r6"})


class TestReleasePoints:
    def _analysis(self, level=HeuristicLevel.CONTROL_FLOW):
        # Hoisting would move the increment out of join_4; keep the
        # original shape so block positions are predictable.
        part = select_tasks(
            build_diamond_loop(),
            SelectionConfig(level=level, hoist_induction=False),
        )
        return part, ReleaseAnalysis(part)

    def test_last_def_in_task_is_release(self):
        part, analysis = self._analysis()
        task = part.task_at(("main", "body_1"))
        # join's increment of r1 is the last def of r1 in the task.
        join = part.program.block(("main", "join_4"))
        idx = next(
            i for i, ins in enumerate(join.instructions) if ins.writes == "r1"
        )
        assert analysis.is_release(task, ("main", "join_4"), idx, "r1")

    def test_def_with_later_def_in_block_not_release(self):
        part, analysis = self._analysis()
        task = part.task_at(("main", "body_1"))
        join = part.program.block(("main", "join_4"))
        # r9 is written by slt and then consumed by the branch; any
        # earlier write of r9 in body_1 is superseded along the path.
        body = part.program.block(("main", "body_1"))
        body_r9 = next(
            i for i, ins in enumerate(body.instructions) if ins.writes == "r9"
        )
        assert not analysis.is_release(task, ("main", "body_1"), body_r9, "r9")
        join_r9 = next(
            i for i, ins in enumerate(join.instructions) if ins.writes == "r9"
        )
        assert analysis.is_release(task, ("main", "join_4"), join_r9, "r9")

    def test_def_redefined_in_successor_arm_not_release(self):
        part, analysis = self._analysis()
        task = part.task_at(("main", "body_1"))
        # r3 is defined in then_2 AND other_3; neither is reached from
        # the other, so each arm's def *is* the last on its path.
        for arm in ("then_2", "other_3"):
            blk = part.program.block(("main", arm))
            idx = next(
                i for i, ins in enumerate(blk.instructions)
                if ins.writes == "r3"
            )
            assert analysis.is_release(task, ("main", arm), idx, "r3")

    def test_absorbed_callee_blocks_release(self):
        part = select_tasks(
            build_call_program("small"),
            SelectionConfig(
                level=HeuristicLevel.TASK_SIZE,
                loop_thresh=0,  # no unrolling: keep a single call block
                hoist_induction=False,
            ),
        )
        analysis = ReleaseAnalysis(part)
        task = next(t for t in part.tasks() if t.absorbed_calls)
        call_block = next(iter(t for t in task.absorbed_calls))
        blk = part.program.block(call_block)
        # r4 is set right before the call; helper writes r2 (not r4),
        # so the r4 def in the call block is still a release point...
        idx = next(
            i for i, ins in enumerate(blk.instructions) if ins.writes == "r4"
        )
        assert analysis.is_release(task, call_block, idx, "r4")
        # ...but a hypothetical r2 def before the call would not be:
        # the absorbed helper redefines r2.
        assert not analysis.is_release(task, call_block, idx, "r2")
