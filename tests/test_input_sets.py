"""Tests for named input sets and profile-input sensitivity."""

import pytest

from repro.compiler import HeuristicLevel
from repro.experiments import clear_cache
from repro.experiments.runner import compile_benchmark, run_benchmark
from repro.ir.interp import run_program
from repro.workloads import get_benchmark
from repro.workloads.kernels import INPUT_SETS, host_lcg, input_set


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestInputSets:
    def test_known_sets(self):
        assert {"ref", "train", "alt"} <= set(INPUT_SETS)

    def test_unknown_set_rejected(self):
        with pytest.raises(KeyError, match="known:"):
            with input_set("nonexistent"):
                pass
        with pytest.raises(KeyError):
            get_benchmark("compress").build(0.1, input_set="nope")

    def test_context_offsets_seeds_and_restores(self):
        base = host_lcg(42)()
        with input_set("train"):
            shifted = host_lcg(42)()
        assert shifted != base
        assert host_lcg(42)() == base  # restored

    def test_nested_context_restores(self):
        with input_set("train"):
            with input_set("alt"):
                inner = host_lcg(1)()
            outer = host_lcg(1)()
        assert inner != outer

    @pytest.mark.parametrize("name", ["compress", "go", "tomcatv"])
    def test_static_code_identical_across_sets(self, name):
        ref = get_benchmark(name).build(0.1, input_set="ref")
        train = get_benchmark(name).build(0.1, input_set="train")
        assert str(ref) == str(train)
        assert ref.memory_image != train.memory_image

    def test_different_data_different_execution(self):
        ref = run_program(get_benchmark("compress").build(0.3, "ref"))
        train = run_program(get_benchmark("compress").build(0.3, "train"))
        assert len(ref) != len(train)


class TestProfileInput:
    def test_measured_trace_uses_the_measured_input(self):
        same = compile_benchmark(
            "compress", HeuristicLevel.DATA_DEPENDENCE, 0.3
        )
        cross = compile_benchmark(
            "compress",
            HeuristicLevel.DATA_DEPENDENCE,
            0.3,
            profile_input="train",
        )
        # Both measure the ref input: identical functional work.
        assert len(same.trace) == len(cross.trace)

    def test_partitions_may_differ_but_stay_valid(self):
        cross = compile_benchmark(
            "go", HeuristicLevel.DATA_DEPENDENCE, 0.2, profile_input="train"
        )
        cross.partition.validate()

    def test_run_benchmark_passthrough(self):
        same = run_benchmark(
            "compress", HeuristicLevel.DATA_DEPENDENCE, scale=0.2
        )
        cross = run_benchmark(
            "compress",
            HeuristicLevel.DATA_DEPENDENCE,
            scale=0.2,
            profile_input="train",
        )
        assert same.instructions == cross.instructions
        # Train profiling must not catastrophically hurt performance.
        assert cross.ipc > 0.7 * same.ipc

    def test_sweep_profile_input(self):
        from repro.experiments.ablations import sweep_profile_input

        records = sweep_profile_input(["compress"], scale=0.2)
        assert ("compress", "same-input") in records
        assert ("compress", "train-profiled") in records
