"""Unit and property tests for the prediction hardware models."""

from hypothesis import given
from hypothesis import strategies as st

from repro.predict import (
    GsharePredictor,
    PathPredictor,
    ReturnAddressStack,
    SaturatingCounter,
)


class TestSaturatingCounter:
    def test_threshold_prediction(self):
        c = SaturatingCounter(bits=2, initial=0)
        assert not c.taken
        c.update(True)
        assert not c.taken  # weakly not-taken at 1
        c.update(True)
        assert c.taken

    def test_saturation(self):
        c = SaturatingCounter(bits=2, initial=3)
        for _ in range(5):
            c.update(True)
        assert c.value == 3 and c.is_saturated
        for _ in range(10):
            c.update(False)
        assert c.value == 0 and c.is_saturated

    @given(st.lists(st.booleans(), max_size=200), st.integers(1, 4))
    def test_counter_stays_in_range(self, outcomes, bits):
        c = SaturatingCounter(bits=bits)
        for outcome in outcomes:
            c.update(outcome)
            assert 0 <= c.value <= c.maximum


class TestGshare:
    def test_learns_constant_branch(self):
        g = GsharePredictor()
        for _ in range(100):
            g.update(pc=100, taken=True)  # warm-up: history stabilises
        g.reset_stats()
        for _ in range(100):
            g.update(pc=100, taken=True)
        assert g.predict(100)
        assert g.accuracy > 0.95

    def test_learns_alternating_pattern_via_history(self):
        g = GsharePredictor()
        mispredicts = [g.update(200, taken=(i % 2 == 0)) for i in range(400)]
        # After warm-up the history disambiguates the alternation.
        assert sum(mispredicts[200:]) < 10

    def test_random_pattern_predicts_poorly(self):
        import random

        rng = random.Random(7)
        g = GsharePredictor()
        for _ in range(500):
            g.update(300, taken=rng.random() < 0.5)
        assert g.accuracy < 0.8

    def test_reset_stats_keeps_learned_state(self):
        g = GsharePredictor()
        for _ in range(50):
            g.update(100, taken=True)
        g.reset_stats()
        assert g.predictions == 0
        assert g.predict(100)

    def test_unused_accuracy_is_one(self):
        assert GsharePredictor().accuracy == 1.0


class TestPathPredictor:
    def test_learns_constant_target(self):
        p = PathPredictor()
        for _ in range(30):
            p.update(pc=50, actual_index=2)
            p.push_history(123)
        assert p.predict(50) == 2

    def test_overflow_target_never_predicted(self):
        p = PathPredictor(target_bits=2)
        for _ in range(50):
            mispredicted = p.update(pc=60, actual_index=7)
            assert mispredicted  # 7 >= 4 is unrepresentable

    def test_replacement_requires_zero_confidence(self):
        p = PathPredictor()
        for _ in range(4):
            p.update(pc=70, actual_index=1)
        # Confidence is saturated at 3; one different outcome only
        # weakens, it must not flip the stored target.
        p.update(pc=70, actual_index=2)
        assert p.predict(70) == 1

    def test_alternating_targets_learned_through_path_history(self):
        p = PathPredictor()
        mispredicts = 0
        for i in range(600):
            pc = 80
            actual = i % 2
            mispredicts += int(p.update(pc, actual))
            p.push_history(1000 + actual)
        assert mispredicts < 600 * 0.25

    def test_accuracy_counters(self):
        p = PathPredictor()
        p.update(10, 0)
        assert p.predictions == 1
        p.reset_stats()
        assert p.predictions == 0 and p.accuracy == 1.0


class TestReturnAddressStack:
    def test_lifo(self):
        ras = ReturnAddressStack()
        ras.push("a")
        ras.push("b")
        assert ras.peek() == "b"
        assert ras.pop() == "b"
        assert ras.pop() == "a"
        assert ras.pop() is None

    def test_bounded_depth_drops_oldest(self):
        ras = ReturnAddressStack(depth=3)
        for item in "abcd":
            ras.push(item)
        assert len(ras) == 3
        assert ras.overflows == 1
        assert ras.pop() == "d"
        assert ras.pop() == "c"
        assert ras.pop() == "b"
        assert ras.pop() is None

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=100))
    def test_never_negative(self, ops):
        ras = ReturnAddressStack(depth=8)
        for i, op in enumerate(ops):
            if op == "push":
                ras.push(i)
            else:
                ras.pop()
            assert 0 <= len(ras) <= 8
