"""Chaos seams and the defenses they validate.

Covers the robustness layer end to end: deterministic fault plans,
journal writes surviving an injected ENOSPC, compaction, replay over
corrupted spans, the shard watchdog (killed workers, slow shards),
cancel-while-running, backpressure, drain + resume, and a small
seeded chaos campaign asserting byte-identical convergence.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.harness.cache import ArtifactCache
from repro.service import (
    ChaosPlan,
    Job,
    JobQueue,
    JobRequest,
    PoisonSpecError,
    ServiceDraining,
    ServiceJournal,
    ServiceSaturated,
    expand_specs,
    replay_journal,
    run_chaos_campaign,
)
from repro.service.chaos import poison_worker
from repro.service.journal import PENDING_LIMIT

MICRO = {"benchmarks": ["compress"], "scale": 0.05,
         "levels": ["basic_block"]}

#: every transient-fault rate zeroed; tests opt into one at a time
QUIET = {"kill_worker": 0.0, "shard_exception": 0.0, "slow_shard": 0.0,
         "poison_spec": 0.0, "journal_error": 0.0}


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def _run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


# -- the plan: seeded, order-independent ------------------------------


def test_chaos_plan_is_deterministic():
    site = dict(job_id="j-1", shard_index=0, attempt=0,
                spec_hashes=[f"h{i}" for i in range(8)],
                deadline=5.0, executor="thread", bisecting=False)
    assert (ChaosPlan(7).shard_chaos(**site)
            == ChaosPlan(7).shard_chaos(**site))
    hashes = [f"hash-{i}" for i in range(256)]
    a, c = ChaosPlan(7), ChaosPlan(8)
    assert [a.is_poison(h) for h in hashes] == [
        ChaosPlan(7).is_poison(h) for h in hashes
    ]
    assert [a.is_poison(h) for h in hashes] != [
        c.is_poison(h) for h in hashes
    ]


def test_chaos_plan_transients_fire_only_on_first_attempt():
    plan = ChaosPlan(1, rates={**QUIET, "kill_worker": 1.0})
    site = dict(job_id="j-1", shard_index=0,
                spec_hashes=["h"], deadline=5.0, executor="thread")
    assert plan.shard_chaos(attempt=0, bisecting=False, **site) == {
        "kill": "thread",
    }
    # retries and bisection halves run fault-free: progress guaranteed
    assert plan.shard_chaos(attempt=1, bisecting=False, **site) is None
    assert plan.shard_chaos(attempt=0, bisecting=True, **site) is None


def test_chaos_plan_rejects_unknown_rates():
    with pytest.raises(ValueError):
        ChaosPlan(1, rates={"bogus": 1.0})


def test_poison_worker_raises_only_on_scheduled_hashes(tmp_path):
    req = JobRequest(kind="figure5", params=dict(MICRO))
    specs = expand_specs(req)
    salt = ArtifactCache(root=tmp_path / "c").salt
    base = lambda spec: "ok"  # noqa: E731
    # no poison scheduled: the base worker passes through *unwrapped*
    # (run_specs only warm-starts compile artifacts for the default)
    assert poison_worker(None, base, salt) is base
    victim = specs[0].spec_hash(salt)
    worker = poison_worker([victim], base, salt)
    with pytest.raises(PoisonSpecError):
        worker(specs[0])
    assert worker(specs[1]) == "ok"


# -- journal under a failing disk -------------------------------------


def _micro_job(job_id="a-1", cells=4):
    return Job(job_id=job_id, cells=cells,
               request=JobRequest(kind="figure5", params=dict(MICRO)))


def test_journal_buffers_failed_writes_until_disk_recovers(tmp_path):
    failing = {"on": True}

    def hook(_payload):
        if failing["on"]:
            raise OSError(28, "test: ENOSPC")

    errors = []
    journal = ServiceJournal(tmp_path / "svc", fault_hook=hook,
                             on_write_error=lambda: errors.append(1))
    job = _micro_job()
    journal.submitted(job, 1)
    job.transition("running")
    journal.state(job)
    assert journal.pending_events == 2
    assert journal.write_errors == len(errors) >= 2
    assert replay_journal(journal.path).jobs == {}
    # the disk recovers: the buffer drains in order, nothing lost
    failing["on"] = False
    assert journal.flush() is True
    assert journal.pending_events == 0
    replay = replay_journal(journal.path)
    assert replay.jobs["a-1"].state == "running"
    assert replay.last_seq == 1


def test_journal_pending_buffer_is_bounded(tmp_path):
    def hook(_payload):
        raise OSError(28, "test: dead disk")

    journal = ServiceJournal(tmp_path / "svc", fault_hook=hook)
    for i in range(PENDING_LIMIT + 25):
        journal.note("tick", i=i)
    assert journal.pending_events == PENDING_LIMIT
    assert journal.dropped_events == 25


def test_journal_compaction_preserves_replay(tmp_path):
    journal = ServiceJournal(tmp_path / "svc")
    done = _micro_job("a-1")
    journal.submitted(done, 1)
    for state in ("running", "done"):
        done.transition(state)
        journal.state(done, misses=4, hits=0)
    journal.poisoned(done, "feedfeed", "spec repr")
    stuck = _micro_job("b-2")
    journal.submitted(stuck, 2)
    stuck.transition("running")
    for _ in range(50):
        journal.note("tick")  # observability chatter, replay-inert
        journal.state(stuck)
    before = replay_journal(journal.path)
    size_before = journal.size_bytes()
    assert journal.compact() is True
    assert journal.size_bytes() < size_before
    after = replay_journal(journal.path)
    assert after.order == before.order == ["a-1", "b-2"]
    assert after.last_seq == before.last_seq == 2
    assert after.jobs["a-1"].state == "done"
    assert after.jobs["a-1"].poisoned == ["feedfeed"]
    # running jobs keep only their submission; replay re-enqueues
    assert after.jobs["b-2"].state == "queued"
    assert journal.compactions == 1


def test_journal_replay_survives_corrupted_span(tmp_path):
    journal = ServiceJournal(tmp_path / "svc")
    for seq, job_id in enumerate(["a-1", "b-2", "c-3"], start=1):
        job = _micro_job(job_id)
        journal.submitted(job, seq)
        job.transition("running")
        journal.state(job)
        if job_id != "c-3":
            job.transition("done")
            journal.state(job)
    # stomp a span in the middle of the file (b-2's terminal event)
    # and tear the tail mid-record: neither may poison the rest
    lines = journal.path.read_bytes().splitlines(keepends=True)
    victim = next(
        i for i, line in enumerate(lines)
        if b'"b-2"' in line and b'"done"' in line
    )
    lines[victim] = b"\x00\xfe\x07 garbage \xff not json\n"
    lines.append(b'{"event": "state", "job_id": "c-3", "sta')
    journal.path.write_bytes(b"".join(lines))
    replay = replay_journal(journal.path)
    assert replay.order == ["a-1", "b-2", "c-3"]
    assert replay.jobs["a-1"].state == "done"
    assert replay.jobs["b-2"].state == "running"  # done event lost
    assert replay.jobs["c-3"].state == "running"
    assert [j.job_id for j in replay.unfinished] == ["b-2", "c-3"]


# -- queue defenses ----------------------------------------------------


def test_queue_backpressure_saturates_with_retry_hint(tmp_path):
    async def scenario():
        queue = JobQueue(
            ArtifactCache(root=tmp_path / "cache"),
            ServiceJournal(tmp_path / "svc"),
            workers=1, executor="inline", max_queue_depth=2,
        )
        # no dispatcher: submissions pile up in the queue
        req = JobRequest.from_payload({"kind": "figure5",
                                       "params": MICRO})
        await queue.submit(req)
        await queue.submit(req)
        with pytest.raises(ServiceSaturated) as err:
            await queue.submit(req)
        assert err.value.retry_after >= 1.0
        count = queue.registry.counter("service.jobs_rejected_429")
        assert count.value == 1
        # a full queue reads as degraded in the health state machine
        assert queue.service_state() == "degraded"

    _run(scenario())


def test_queue_rejects_submissions_while_draining(tmp_path):
    async def scenario():
        journal = ServiceJournal(tmp_path / "svc")
        queue = JobQueue(ArtifactCache(root=tmp_path / "cache"),
                         journal, workers=1, executor="inline")
        await queue.start()
        report = await queue.drain(grace=0.0)
        assert report["requeued"] == []
        assert queue.service_state() == "draining"
        with pytest.raises(ServiceDraining):
            await queue.submit(JobRequest.from_payload(
                {"kind": "figure5", "params": MICRO}
            ))
        events = [json.loads(line)["event"]
                  for line in journal.path.read_text().splitlines()]
        assert "drain" in events and "drain_complete" in events
        count = queue.registry.counter("service.drain_events")
        assert count.value == 1

    _run(scenario())


def test_watchdog_replaces_pool_after_killed_worker(tmp_path):
    """A worker dying mid-shard (SIGKILL / BrokenExecutor) costs one
    retry on a fresh pool, never the job."""
    plan = ChaosPlan(3, rates={**QUIET, "kill_worker": 1.0})

    async def scenario():
        journal = ServiceJournal(tmp_path / "svc")
        queue = JobQueue(ArtifactCache(root=tmp_path / "cache"),
                         journal, workers=1, executor="thread",
                         backoff=0.0, shard_retries=2, chaos=plan)
        await queue.start()
        try:
            job = await queue.submit(JobRequest.from_payload(
                {"kind": "figure5", "params": MICRO}
            ))
            job = await queue.wait(job.job_id, timeout=120)
            assert job.state == "done"
            assert job.misses == 4 and not job.poisoned
            assert journal.read_result(job.job_id) is not None
            reg = queue.registry
            assert reg.counter("service.shards_retried").value >= 1
            assert reg.counter("service.pools_replaced").value >= 1
        finally:
            await queue.close()

    _run(scenario())
    assert plan.faults_by_kind()["kill_worker"] >= 1


def test_watchdog_times_out_hung_shard(tmp_path):
    """A shard sleeping past its deadline trips the watchdog; the
    retry (fault-free by construction) converges."""
    plan = ChaosPlan(4, rates={**QUIET, "slow_shard": 1.0},
                     slow_extra=0.3)

    async def scenario():
        journal = ServiceJournal(tmp_path / "svc")
        queue = JobQueue(ArtifactCache(root=tmp_path / "cache"),
                         journal, workers=1, executor="thread",
                         backoff=0.0, shard_deadline_base=0.4,
                         shard_deadline_per_spec=0.0, shard_retries=2,
                         chaos=plan)
        await queue.start()
        try:
            job = await queue.submit(JobRequest.from_payload(
                {"kind": "figure5", "params": MICRO}
            ))
            job = await queue.wait(job.job_id, timeout=120)
            assert job.state == "done"
            assert journal.read_result(job.job_id) is not None
            reg = queue.registry
            assert reg.counter("service.shards_timed_out").value >= 1
            assert reg.counter("service.pools_replaced").value >= 1
        finally:
            await queue.close()

    _run(scenario())
    assert plan.faults_by_kind()["slow_shard"] >= 1


def test_cancel_while_shard_running(tmp_path):
    """Cancelling a *running* job: in-flight shards finish their
    attempt, then the job lands in ``cancelled`` with no result —
    and a replay would not resurrect it."""
    async def scenario():
        journal = ServiceJournal(tmp_path / "svc")
        queue = JobQueue(ArtifactCache(root=tmp_path / "cache"),
                         journal, workers=1, executor="thread")
        await queue.start()
        try:
            # a cold fuzz batch: long enough to catch mid-flight
            job = await queue.submit(JobRequest.from_payload(
                {"kind": "fuzz", "params": {"budget": 6, "seed": 11}}
            ))
            deadline = asyncio.get_event_loop().time() + 30.0
            while queue.jobs[job.job_id].state != "running":
                assert asyncio.get_event_loop().time() < deadline, (
                    "job never started"
                )
                await asyncio.sleep(0.005)
            assert await queue.cancel(job.job_id) is True
            job = await queue.wait(job.job_id, timeout=120)
            assert job.state == "cancelled"
            assert journal.read_result(job.job_id) is None
        finally:
            await queue.close()
        replay = replay_journal(journal.path)
        assert replay.jobs[job.job_id].state == "cancelled"
        assert replay.unfinished == []

    _run(scenario())


def test_drain_requeues_inflight_job_and_restart_finishes_it(tmp_path):
    """The SIGTERM path at queue level: drain abandons an unfinished
    job to the journal; a fresh queue over the same journal resumes
    and completes it."""
    cache_root = tmp_path / "cache"
    journal_root = tmp_path / "svc"
    req = JobRequest.from_payload(
        {"kind": "fuzz", "params": {"budget": 6, "seed": 12}}
    )

    async def first_life():
        queue = JobQueue(ArtifactCache(root=cache_root),
                         ServiceJournal(journal_root),
                         workers=1, executor="thread")
        await queue.start()
        job = await queue.submit(req)
        deadline = asyncio.get_event_loop().time() + 30.0
        while queue.jobs[job.job_id].state != "running":
            assert asyncio.get_event_loop().time() < deadline
            await asyncio.sleep(0.005)
        report = await queue.drain(grace=0.01)
        assert report["requeued"] == [job.job_id]
        return job.job_id

    job_id = _run(first_life())

    async def second_life():
        journal = ServiceJournal(journal_root)
        queue = JobQueue(ArtifactCache(root=cache_root), journal,
                         workers=1, executor="thread")
        resumed = await queue.start()
        assert resumed == 1
        try:
            job = await queue.wait(job_id, timeout=120)
            assert job.state == "done"
            assert job.resumed is True
            result = journal.read_result(job_id)
            assert result is not None and result["ok"] is True
        finally:
            await queue.close()

    _run(second_life())


# -- the campaign itself ----------------------------------------------


@pytest.mark.filterwarnings(
    "ignore:quarantined corrupted cache entry:RuntimeWarning"
)
def test_chaos_campaign_converges(tmp_path):
    report = run_chaos_campaign(budget=4, seed=5, workers=2,
                                max_rounds=4, root=tmp_path / "chaos")
    assert report.ok, report.violations
    assert report.fault_count >= 4
    assert report.jobs_done == report.jobs_submitted
    assert report.restarts == 1
    assert report.resumed_jobs >= 1
    assert "converged" in report.summary()
    assert report.metrics["counters"]["service.jobs_done"] == (
        report.jobs_submitted
    )
