"""Unit tests for dataflow analyses."""

from repro.ir.cfg import build_cfg
from repro.ir.dataflow import (
    block_defs_uses,
    codependent_set,
    def_use_chains,
    live_registers,
    reaching_definitions,
)


def _cfg(program):
    return build_cfg(program.main)


class TestBlockDefsUses:
    def test_last_def_wins(self, straightline):
        defs, uses = block_defs_uses(straightline.main)
        entry_defs = defs["entry"]
        # r1 defined many times; index is the *last* definition.
        assert entry_defs["r1"] == 12

    def test_upward_exposed_uses(self, diamond_loop):
        defs, uses = block_defs_uses(diamond_loop.main)
        # join reads r1 and r3 before (re)defining them? r1 is read by
        # its own increment, r2 by the bound test.
        assert "r1" in uses["join_4"]
        assert "r2" in uses["join_4"]


class TestReachingDefinitions:
    def test_entry_defs_reach_loop(self, diamond_loop):
        cfg = _cfg(diamond_loop)
        reach = reaching_definitions(diamond_loop.main, cfg)
        regs_reaching_body = {site[2] for site in reach["body_1"]}
        assert {"r1", "r2", "r3"} <= regs_reaching_body

    def test_kill_semantics(self, diamond_loop):
        cfg = _cfg(diamond_loop)
        reach = reaching_definitions(diamond_loop.main, cfg)
        # r3 defs from both arms reach the join entry; the entry's
        # initial def of r3 also survives around the back edge? No:
        # both arms redefine r3 on every path... the then-arm defines
        # r3, the else-arm defines r3 — entry's def only survives on
        # the first iteration path where neither arm has run, which
        # does not exist (body always runs an arm before join).
        r3_sites = {site[0] for site in reach["join_4"] if site[2] == "r3"}
        assert r3_sites == {"then_2", "other_3"}


class TestDefUseChains:
    def test_intra_block_chain(self, straightline):
        cfg = _cfg(straightline)
        edges = def_use_chains(straightline.main, cfg)
        intra = [e for e in edges if not e.crosses_blocks]
        # Each addi reads the previous def.
        assert all(e.def_index + 1 == e.use_index for e in intra
                   if e.register == "r1")

    def test_cross_block_chain(self, diamond_loop):
        cfg = _cfg(diamond_loop)
        edges = def_use_chains(diamond_loop.main, cfg)
        cross = {(e.def_block, e.use_block, e.register)
                 for e in edges if e.crosses_blocks}
        # r9 computed in body is consumed by the branch in body itself
        # (intra); r3 from the arms feeds done's store.
        assert ("then_2", "done_5", "r3") in cross
        assert ("other_3", "done_5", "r3") in cross

    def test_deterministic_order(self, diamond_loop):
        cfg = _cfg(diamond_loop)
        assert def_use_chains(diamond_loop.main, cfg) == def_use_chains(
            diamond_loop.main, cfg
        )


class TestLiveness:
    def test_loop_carried_registers_live_at_header(self, diamond_loop):
        cfg = _cfg(diamond_loop)
        live = live_registers(diamond_loop.main, cfg)
        assert {"r1", "r2", "r3"} <= live["body_1"]

    def test_dead_after_final_use(self, diamond_loop):
        cfg = _cfg(diamond_loop)
        live = live_registers(diamond_loop.main, cfg)
        # done only needs r3 (stored); r1/r2 are dead there.
        assert "r3" in live["done_5"]
        assert "r1" not in live["done_5"]
        assert "r2" not in live["done_5"]


class TestCodependentSets:
    def test_intra_block_edge(self, straightline):
        cfg = _cfg(straightline)
        edges = def_use_chains(straightline.main, cfg)
        intra = next(e for e in edges if not e.crosses_blocks)
        assert codependent_set(cfg, intra) == {intra.def_block}

    def test_cross_diamond_edge_includes_both_arms(self, diamond_loop):
        cfg = _cfg(diamond_loop)
        edges = def_use_chains(diamond_loop.main, cfg)
        # body_1 defines r9 used by... take then_2 -> done_5 on r3:
        # paths go through join_4.
        edge = next(
            e for e in edges
            if e.def_block == "then_2" and e.use_block == "done_5"
        )
        codep = codependent_set(cfg, edge)
        assert "join_4" in codep
        assert "then_2" in codep and "done_5" in codep
        # other_3 is not on any then->done path
        assert "other_3" not in codep

    def test_loop_carried_edge_has_empty_codependence(self, diamond_loop):
        cfg = _cfg(diamond_loop)
        edges = def_use_chains(diamond_loop.main, cfg)
        # join defines r1, body's rem uses r1 -> only via back edge.
        carried = [
            e for e in edges
            if e.def_block == "join_4" and e.use_block == "body_1"
        ]
        assert carried
        for e in carried:
            assert codependent_set(cfg, e) == set()
