"""Tests for the centralized comparison and ARB capacity modeling."""

import pytest

from repro.compiler import HeuristicLevel, SelectionConfig, select_tasks
from repro.experiments import clear_cache
from repro.experiments.centralized import (
    centralized_config,
    format_centralized,
    run_centralized_comparison,
)
from repro.ir import IRBuilder
from repro.ir.interp import run_program
from repro.sim import SimConfig, build_task_stream, simulate


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCentralizedConfig:
    def test_aggregates_resources(self):
        config = centralized_config(8)
        assert config.n_pus == 1
        assert config.issue_width == 16
        assert config.rob_size == 128
        assert config.int_units == 16
        assert config.l1d.size_bytes == 128 * 1024

    def test_comparison_and_report(self):
        result = run_centralized_comparison(["compress"], n_pus=4, scale=0.15)
        factor = result.break_even_clock_factor("compress")
        assert factor > 0
        text = format_centralized(result)
        assert "compress" in text and "break-even" in text

    def test_distributed_wins_on_loop_code(self):
        """Task speculation sees past branches a single window cannot."""
        result = run_centralized_comparison(["tomcatv"], n_pus=8, scale=0.3)
        assert result.break_even_clock_factor("tomcatv") < 1.0


class TestArbCapacity:
    def _memory_heavy_program(self):
        """A loop whose body performs many memory operations."""
        b = IRBuilder()
        with b.function("main"):
            b.li("r1", 0)
            b.li("r2", 30)
            body = b.new_label("body")
            done = b.new_label("done")
            b.jump(body)
            with b.block(body):
                b.muli("r8", "r1", 16)
                for k in range(12):
                    b.addi("r9", "r8", 1000 + k)
                    b.store("r1", "r9", 0)
                    b.load("r10", "r9", 0)
                b.addi("r1", "r1", 1)
                b.slt("r9", "r1", "r2")
                b.bnez("r9", body, fallthrough=done)
            with b.block(done):
                b.halt()
        return b.build()

    def _run(self, arb_entries):
        part = select_tasks(
            self._memory_heavy_program(),
            SelectionConfig(level=HeuristicLevel.CONTROL_FLOW),
        )
        trace = run_program(part.program)
        stream = build_task_stream(trace, part)
        return simulate(
            stream,
            SimConfig(n_pus=4, arb_entries_per_pu=arb_entries),
        )

    def test_small_arb_slows_speculative_tasks(self):
        tiny = self._run(2)
        large = self._run(64)
        assert tiny.cycles > large.cycles

    def test_unbounded_matches_large(self):
        unbounded = self._run(0)
        large = self._run(1024)
        assert unbounded.cycles == large.cycles

    def test_completes_under_pressure(self):
        result = self._run(1)
        # The head task bypasses the ARB, so progress is guaranteed.
        assert result.committed_instructions > 0


class TestArbAblationSweep:
    def test_sweep_ordering(self):
        from repro.experiments.ablations import sweep_arb_size

        records = sweep_arb_size(["wave5"], values=(4, 0), scale=0.2)
        constrained = records[("wave5", 4)]
        unbounded = records[("wave5", 0)]
        assert constrained.cycles >= unbounded.cycles
