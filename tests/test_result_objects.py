"""Edge coverage for the result/record value objects."""

from repro.compiler import HeuristicLevel
from repro.experiments import clear_cache, run_benchmark
from repro.sim.breakdown import CycleBreakdown
from repro.sim.machine import SimResult


def make_result(**overrides):
    defaults = dict(
        cycles=100,
        committed_instructions=250,
        dynamic_tasks=10,
        task_predictions=9,
        task_mispredictions=3,
        control_squashes=2,
        memory_squashes=1,
        gshare_accuracy=0.9,
        branch_count=40,
        mean_window_span=33.0,
        breakdown=CycleBreakdown(),
    )
    defaults.update(overrides)
    return SimResult(**defaults)


class TestSimResult:
    def test_ipc(self):
        assert make_result().ipc == 2.5

    def test_zero_cycles_ipc_is_zero(self):
        assert make_result(cycles=0).ipc == 0.0

    def test_prediction_accuracy(self):
        result = make_result()
        assert result.task_prediction_accuracy == 1 - 3 / 9

    def test_no_predictions_is_perfect(self):
        result = make_result(task_predictions=0, task_mispredictions=0)
        assert result.task_prediction_accuracy == 1.0


class TestRunRecordDerived:
    def test_derived_metrics_consistent(self):
        clear_cache()
        rec = run_benchmark(
            "compress", HeuristicLevel.CONTROL_FLOW, n_pus=8, scale=0.15
        )
        # The window span equation at perfect prediction upper-bounds
        # the reported value.
        assert rec.window_span_formula <= rec.mean_task_size * rec.n_pus
        assert rec.window_span_formula >= rec.mean_task_size
        # Percentages round-trip through the accuracy.
        assert rec.task_misprediction_percent == (
            (1 - rec.task_prediction_accuracy) * 100
        )
        clear_cache()

    def test_breakdown_default_is_all_zero(self):
        bd = CycleBreakdown()
        assert bd.total_pu_cycles == 0
        assert all(v == 0 for v in bd.as_dict().values())
