"""Unit tests for the data dependence growth policy."""

from repro.compiler.data_dependence import (
    DependenceBook,
    DependencePolicy,
    ranked_dependences,
)
from repro.compiler.heuristics import HeuristicLevel, SelectionConfig
from repro.ir import IRBuilder
from repro.ir.cfg import build_cfg
from repro.profiling import profile_program
from tests.conftest import build_diamond_loop


def producer_consumer_program():
    """A value produced early and consumed two blocks later; a side
    arm bypasses the consumer and rejoins at the loop tail.

    Labels: head_1, produce_2, middle_3, side_4, consume_5, tail_6,
    done_7.  The ranked dependence (r16: produce -> consume) has
    codependent set {produce, middle, consume}; ``side`` is off-path
    with a single predecessor, ``tail`` is the join.
    """
    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 0)
        b.li("r2", 40)
        head = b.new_label("head")
        produce = b.new_label("produce")
        middle = b.new_label("middle")
        side = b.new_label("side")
        consume = b.new_label("consume")
        tail = b.new_label("tail")
        done = b.new_label("done")
        b.jump(head)
        with b.block(head):
            b.slt("r9", "r1", "r2")
            b.beqz("r9", done, fallthrough=produce)
        with b.block(produce):
            b.muli("r16", "r1", 13)   # the producer
            b.seqi("r9", "r1", 39)
            b.bnez("r9", side, fallthrough=middle)
        with b.block(middle):
            b.addi("r8", "r1", 7)
            b.xori("r8", "r8", 2)
        with b.block(consume):
            b.add("r18", "r16", "r8")  # the consumer
            b.store("r18", "r0", 700)
            b.jump(tail)
        with b.block(side):
            b.li("r17", 999)          # bypasses the consumer
            b.jump(tail)
        with b.block(tail):
            b.addi("r1", "r1", 1)
            b.jump(head)
        with b.block(done):
            b.halt()
    return b.build()


def make_book(program, func="main"):
    config = SelectionConfig(level=HeuristicLevel.DATA_DEPENDENCE)
    profile = profile_program(program)
    cfg = build_cfg(program.function(func))
    return DependenceBook(program.function(func), cfg, profile, config)


class TestRankedDependences:
    def test_sorted_by_frequency(self, diamond_loop):
        config = SelectionConfig(level=HeuristicLevel.DATA_DEPENDENCE)
        profile = profile_program(diamond_loop)
        cfg = build_cfg(diamond_loop.main)
        ranked = ranked_dependences(diamond_loop.main, cfg, profile, config)
        freqs = [dep.frequency for dep in ranked]
        assert freqs == sorted(freqs, reverse=True)

    def test_zero_frequency_dropped(self, diamond_loop):
        config = SelectionConfig(level=HeuristicLevel.DATA_DEPENDENCE)
        profile = profile_program(diamond_loop)
        cfg = build_cfg(diamond_loop.main)
        ranked = ranked_dependences(diamond_loop.main, cfg, profile, config)
        assert all(dep.frequency > 0 for dep in ranked)

    def test_loop_carried_dropped(self, diamond_loop):
        config = SelectionConfig(level=HeuristicLevel.DATA_DEPENDENCE)
        profile = profile_program(diamond_loop)
        cfg = build_cfg(diamond_loop.main)
        ranked = ranked_dependences(diamond_loop.main, cfg, profile, config)
        assert all(dep.codependent for dep in ranked)

    def test_max_dependences_cap(self, diamond_loop):
        config = SelectionConfig(
            level=HeuristicLevel.DATA_DEPENDENCE, max_dependences=1
        )
        profile = profile_program(diamond_loop)
        cfg = build_cfg(diamond_loop.main)
        ranked = ranked_dependences(diamond_loop.main, cfg, profile, config)
        assert len(ranked) == 1


class TestPolicyLifecycle:
    def test_free_growth_before_any_dependence(self):
        prog = producer_consumer_program()
        policy = make_book(prog).policy()
        policy.on_include("head_1")
        assert policy.allow("head_1", "produce_2")

    def test_steers_toward_open_consumer(self):
        prog = producer_consumer_program()
        policy = make_book(prog).policy()
        policy.on_include("head_1")
        policy.on_include("produce_2")  # opens r16 -> consume
        # middle is on the path to the consumer.
        assert policy.allow("produce_2", "middle_3")
        policy.on_include("middle_3")
        assert policy.allow("middle_3", "consume_5")

    def test_off_path_arm_rejected(self):
        prog = producer_consumer_program()
        policy = make_book(prog).policy()
        policy.on_include("head_1")
        policy.on_include("produce_2")
        # side_4 is not on any producer->consumer path and has a
        # single predecessor: steering rejects it.
        assert not policy.allow("produce_2", "side_4")

    def test_join_blocks_always_admitted(self):
        prog = producer_consumer_program()
        book = make_book(prog)
        policy = book.policy()
        policy.on_include("head_1")
        policy.on_include("produce_2")
        policy.on_include("middle_3")
        policy.on_include("consume_5")  # closes the dependence
        assert not policy.open
        assert policy.closed_any
        # tail_6 has two CFG preds (consume and side): it is a join
        # and stays admitted even after closure.
        assert len(book.cfg.preds["tail_6"]) >= 2
        assert policy.allow("consume_5", "tail_6")

    def test_termination_after_closure(self):
        prog = producer_consumer_program()
        policy = make_book(prog).policy()
        for label in ("head_1", "produce_2", "middle_3", "consume_5"):
            policy.on_include(label)
        # Nothing open, something closed: single-pred blocks rejected.
        assert not policy.allow("consume_5", "side_4")
