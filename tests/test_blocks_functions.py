"""Unit tests for basic blocks, functions, and programs."""

import pytest

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.program import Program


def _ins(op, **kw):
    return Instruction(op, **kw)


class TestBasicBlock:
    def test_fallthrough_only_successors(self):
        blk = BasicBlock("a", [_ins(Opcode.ADD, dst="r1", srcs=("r1", "r2"))],
                         fallthrough="b")
        assert blk.terminator is None
        assert blk.successor_labels() == ["b"]

    def test_branch_successors_taken_first(self):
        blk = BasicBlock(
            "a", [_ins(Opcode.BEQZ, srcs=("r1",), target="t")], fallthrough="f"
        )
        assert blk.successor_labels() == ["t", "f"]

    def test_branch_with_same_target_and_fallthrough_dedups(self):
        blk = BasicBlock(
            "a", [_ins(Opcode.BNEZ, srcs=("r1",), target="x")], fallthrough="x"
        )
        assert blk.successor_labels() == ["x"]

    def test_jump_successor(self):
        blk = BasicBlock("a", [_ins(Opcode.JUMP, target="t")])
        assert blk.successor_labels() == ["t"]

    def test_call_successor_is_continuation(self):
        blk = BasicBlock(
            "a", [_ins(Opcode.CALL, target="f")], fallthrough="cont"
        )
        assert blk.ends_in_call
        assert blk.successor_labels() == ["cont"]

    def test_ret_and_halt_have_no_successors(self):
        assert BasicBlock("a", [_ins(Opcode.RET)]).successor_labels() == []
        assert BasicBlock("a", [_ins(Opcode.HALT)]).successor_labels() == []

    def test_terminator_kind_flags(self):
        assert BasicBlock("a", [_ins(Opcode.RET)]).ends_in_return
        assert BasicBlock("a", [_ins(Opcode.HALT)]).ends_in_halt

    def test_validate_rejects_mid_block_control(self):
        blk = BasicBlock(
            "a",
            [_ins(Opcode.JUMP, target="x"),
             _ins(Opcode.ADD, dst="r1", srcs=("r1", "r1"))],
        )
        with pytest.raises(ValueError, match="before terminator"):
            blk.validate()

    def test_validate_rejects_branch_without_fallthrough(self):
        blk = BasicBlock("a", [_ins(Opcode.BEQZ, srcs=("r1",), target="t")])
        with pytest.raises(ValueError, match="without fallthrough"):
            blk.validate()

    def test_validate_rejects_dangling_block(self):
        blk = BasicBlock("a", [_ins(Opcode.ADD, dst="r1", srcs=("r1", "r1"))])
        with pytest.raises(ValueError, match="no terminator"):
            blk.validate()

    def test_control_transfer_count(self):
        blk = BasicBlock(
            "a",
            [_ins(Opcode.ADD, dst="r1", srcs=("r1", "r1")),
             _ins(Opcode.JUMP, target="x")],
        )
        assert blk.count_control_transfers() == 1
        assert blk.size == 2


class TestFunction:
    def test_first_block_becomes_entry(self):
        fn = Function("f")
        fn.add_block(BasicBlock("start", [_ins(Opcode.RET)]))
        assert fn.entry_label == "start"
        assert fn.entry.label == "start"

    def test_duplicate_label_rejected(self):
        fn = Function("f")
        fn.add_block(BasicBlock("a", [_ins(Opcode.RET)]))
        with pytest.raises(ValueError, match="duplicate"):
            fn.add_block(BasicBlock("a", [_ins(Opcode.RET)]))

    def test_remove_block(self):
        fn = Function("f")
        fn.add_block(BasicBlock("a", [_ins(Opcode.RET)]))
        fn.add_block(BasicBlock("b", [_ins(Opcode.RET)]))
        fn.remove_block("b")
        assert not fn.has_block("b")
        with pytest.raises(ValueError):
            fn.remove_block("a")  # entry is protected

    def test_callees_lists_repeats(self):
        fn = Function("f")
        fn.add_block(
            BasicBlock("a", [_ins(Opcode.CALL, target="g")], fallthrough="b")
        )
        fn.add_block(
            BasicBlock("b", [_ins(Opcode.CALL, target="g")], fallthrough="c")
        )
        fn.add_block(BasicBlock("c", [_ins(Opcode.RET)]))
        assert fn.callees() == ["g", "g"]

    def test_fresh_label(self):
        fn = Function("f")
        fn.add_block(BasicBlock("x", [_ins(Opcode.RET)]))
        assert fn.fresh_label("x") == "x.1"
        assert fn.fresh_label("y") == "y"

    def test_validate_rejects_unknown_successor(self):
        fn = Function("f")
        fn.add_block(BasicBlock("a", [_ins(Opcode.JUMP, target="ghost")]))
        with pytest.raises(ValueError, match="unknown block"):
            fn.validate()

    def test_size_totals_instructions(self):
        fn = Function("f")
        fn.add_block(
            BasicBlock("a", [_ins(Opcode.LI, dst="r1", imm=1)], fallthrough="b")
        )
        fn.add_block(BasicBlock("b", [_ins(Opcode.RET)]))
        assert fn.size == 2


class TestProgram:
    def _tiny(self):
        prog = Program()
        fn = Function("main")
        fn.add_block(
            BasicBlock(
                "entry",
                [_ins(Opcode.LI, dst="r1", imm=1), _ins(Opcode.HALT)],
            )
        )
        prog.add_function(fn)
        return prog

    def test_pc_assignment_is_dense_and_stable(self):
        prog = self._tiny()
        assert prog.pc_of("main", "entry", 0) == 0
        assert prog.pc_of("main", "entry", 1) == 1
        assert prog.block_pc(("main", "entry")) == 0

    def test_duplicate_function_rejected(self):
        prog = self._tiny()
        with pytest.raises(ValueError, match="duplicate"):
            prog.add_function(Function("main"))

    def test_validate_missing_main(self):
        prog = Program()
        fn = Function("not_main")
        fn.add_block(BasicBlock("entry", [_ins(Opcode.HALT)]))
        prog.add_function(fn)
        with pytest.raises(ValueError, match="entry function"):
            prog.validate()

    def test_validate_unknown_callee(self):
        prog = Program()
        fn = Function("main")
        fn.add_block(
            BasicBlock("entry", [_ins(Opcode.CALL, target="ghost")],
                       fallthrough="end")
        )
        fn.add_block(BasicBlock("end", [_ins(Opcode.HALT)]))
        prog.add_function(fn)
        with pytest.raises(ValueError, match="unknown"):
            prog.validate()

    def test_block_lookup_by_id(self):
        prog = self._tiny()
        assert prog.block(("main", "entry")).label == "entry"

    def test_invalidate_layout_reassigns(self, diamond_loop):
        pc_before = diamond_loop.block_pc(("main", "done_5"))
        diamond_loop.invalidate_layout()
        assert diamond_loop.block_pc(("main", "done_5")) == pc_before
