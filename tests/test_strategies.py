"""The SelectionStrategy refactor: bit-identity + new strategies.

The paper's four heuristic levels became *reference strategies*
dispatched through :mod:`repro.compiler.strategy`; these tests pin
the refactor's contract:

* a default config (``strategy=""``) and the explicitly named
  reference strategy of the same level are the *same code path* —
  identical partitions on every registry benchmark and corpus
  program, identical RunRecords byte-for-byte on a simulated subset;
* ``SelectionConfig.cache_key()`` never collides across distinct
  configs (the ``astuple`` extensibility hazard, fixed);
* the new ``tunable`` and ``cost_model`` strategies produce valid
  partitions and honour their genes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.compiler import (
    HeuristicLevel,
    SelectionConfig,
    get_strategy,
    register_strategy,
    select_tasks,
    strategy_names,
)
from repro.compiler.strategy import (
    CostModelStrategy,
    PaperStrategy,
    REFERENCE_STRATEGIES,
    SelectionStrategy,
    describe_strategies,
)
from repro.harness.spec import RunSpec, canonical
from repro.ir import parse_program
from repro.workloads import all_benchmarks, get_benchmark

from tests.conftest import build_call_program, build_diamond_loop

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.asm"))

#: benchmarks whose full RunRecords are compared byte-for-byte
RECORD_SUBSET = ("compress", "go", "tomcatv", "swim")


def partition_shape(partition):
    """A partition's observable identity (root/blocks/edges/targets)."""
    return sorted(
        (
            task.root,
            tuple(sorted(task.blocks)),
            tuple(sorted(task.internal_edges)),
            tuple(task.targets),
            tuple(sorted(task.absorbed_calls)),
        )
        for task in partition.tasks()
    )


# ---------------------------------------------------------------- registry


def test_reference_strategy_names_registered():
    names = strategy_names()
    assert list(REFERENCE_STRATEGIES) == [
        level.value for level in HeuristicLevel
    ]
    for name in REFERENCE_STRATEGIES:
        assert name in names
    assert "cost_model" in names
    assert "tunable" in names


def test_empty_strategy_resolves_to_level():
    for level in HeuristicLevel:
        config = SelectionConfig(level=level)
        assert isinstance(get_strategy(config), PaperStrategy)


def test_named_strategy_resolves():
    config = SelectionConfig(strategy="cost_model")
    assert isinstance(get_strategy(config), CostModelStrategy)


def test_unknown_strategy_raises():
    config = SelectionConfig(strategy="does_not_exist")
    with pytest.raises(ValueError, match="unknown selection strategy"):
        get_strategy(config)


def test_duplicate_registration_raises():
    with pytest.raises(ValueError, match="duplicate"):
        register_strategy(CostModelStrategy)


def test_describe_strategies_shape():
    described = describe_strategies()
    names = [entry["name"] for entry in described]
    assert names == strategy_names()
    for entry in described:
        assert entry["kind"] in ("reference", "extra")
        assert isinstance(entry["tunables"], dict)
    by_name = {entry["name"]: entry for entry in described}
    assert by_name["task_size"]["kind"] == "reference"
    assert by_name["cost_model"]["kind"] == "extra"
    assert by_name["tunable"]["tunables"]["max_targets"] == 4


def test_base_strategy_build_is_abstract():
    with pytest.raises(NotImplementedError):
        SelectionStrategy().build(None, {}, None, SelectionConfig())


# ----------------------------------------------------------- config guards


def test_config_rejects_bad_traversal():
    with pytest.raises(ValueError, match="traversal"):
        SelectionConfig(traversal="random")


def test_config_rejects_bad_max_targets():
    with pytest.raises(ValueError, match="max_targets"):
        SelectionConfig(max_targets=0)


# -------------------------------------------------------------- cache keys


def _config_variants():
    """A spread of distinct configs covering every field."""
    variants = [SelectionConfig()]
    for level in HeuristicLevel:
        variants.append(SelectionConfig(level=level))
    variants += [
        SelectionConfig(max_targets=2),
        SelectionConfig(call_thresh=10),
        SelectionConfig(loop_thresh=10),
        SelectionConfig(max_unroll=2),
        SelectionConfig(hoist_induction=False),
        SelectionConfig(schedule_communication=False),
        SelectionConfig(max_dependences=16),
        SelectionConfig(strategy="tunable"),
        SelectionConfig(strategy="cost_model"),
        SelectionConfig(strategy="tunable", traversal="dfs"),
        SelectionConfig(traversal="dfs"),
        SelectionConfig(level=HeuristicLevel.TASK_SIZE,
                        strategy="task_size"),
    ]
    return variants


def test_cache_keys_never_collide():
    """Distinct configs -> distinct cache keys, for every field."""
    variants = _config_variants()
    keys = {}
    for config in variants:
        key = config.cache_key()
        assert key not in keys or keys[key] == config, (
            f"cache_key collision: {config} vs {keys[key]}"
        )
        keys[key] = config
    assert len(keys) == len(set(variants))


def test_cache_key_covers_every_field():
    """Flipping any single field changes the key (extensibility net:
    a newly added field is covered automatically because the key
    enumerates ``fields(SelectionConfig)``)."""
    import dataclasses

    base = SelectionConfig()
    key_fields = {item[0] for item in base.cache_key()[2:]}
    for f in dataclasses.fields(SelectionConfig):
        assert f.name in key_fields, f"cache_key misses field {f.name}"


def test_cache_key_distinguishes_explicit_reference_name():
    """`strategy=""` and the spelled-out reference name are the same
    code path but distinct cache identities (never alias)."""
    implicit = SelectionConfig(level=HeuristicLevel.TASK_SIZE)
    explicit = SelectionConfig(level=HeuristicLevel.TASK_SIZE,
                               strategy="task_size")
    assert implicit.cache_key() != explicit.cache_key()
    # both resolve to the same strategy object
    assert get_strategy(implicit) is get_strategy(explicit)


def test_spec_hash_covers_strategy_and_traversal():
    plain = RunSpec(benchmark="compress",
                    level=HeuristicLevel.DATA_DEPENDENCE)
    strat = RunSpec(
        benchmark="compress", level=HeuristicLevel.DATA_DEPENDENCE,
        selection=SelectionConfig(level=HeuristicLevel.DATA_DEPENDENCE,
                                  strategy="cost_model"),
    )
    dfs = RunSpec(
        benchmark="compress", level=HeuristicLevel.DATA_DEPENDENCE,
        selection=SelectionConfig(level=HeuristicLevel.DATA_DEPENDENCE,
                                  strategy="tunable", traversal="dfs"),
    )
    hashes = {s.spec_hash() for s in (plain, strat, dfs)}
    assert len(hashes) == 3
    compiles = {s.compile_hash() for s in (plain, strat, dfs)}
    assert len(compiles) == 3


def test_describe_suffixes_strategy():
    plain = RunSpec(benchmark="compress",
                    level=HeuristicLevel.DATA_DEPENDENCE)
    assert plain.describe() == "compress/data_dependence@4pu-ooo"
    strat = RunSpec(
        benchmark="compress", level=HeuristicLevel.DATA_DEPENDENCE,
        selection=SelectionConfig(level=HeuristicLevel.DATA_DEPENDENCE,
                                  strategy="cost_model"),
    )
    assert strat.describe() == "compress/data_dependence@4pu-ooo+cost_model"


# ------------------------------------------------------------ bit-identity


@pytest.mark.parametrize("bench", [bm.name for bm in all_benchmarks()])
def test_registry_partitions_identical_through_named_strategy(bench):
    """All 18 registry benchmarks x 4 levels: the dispatched reference
    strategy partitions exactly like the implicit default path."""
    program = get_benchmark(bench).build(1.0)
    for level in HeuristicLevel:
        implicit = select_tasks(program, SelectionConfig(level=level))
        explicit = select_tasks(
            program, SelectionConfig(level=level, strategy=level.value)
        )
        assert partition_shape(implicit) == partition_shape(explicit), (
            f"{bench}@{level.value}: partitions diverge through the "
            f"named reference strategy"
        )


@pytest.mark.parametrize("bench", RECORD_SUBSET)
def test_records_byte_identical_through_named_strategy(bench):
    """Full RunRecords (cycles, breakdown, every field) are
    byte-identical between the implicit and named reference paths."""
    from repro.experiments.runner import clear_cache, run_benchmark
    from repro.harness.serialize import record_to_dict

    clear_cache()
    for level in HeuristicLevel:
        implicit = run_benchmark(bench, level)
        explicit = run_benchmark(
            bench, level,
            selection=SelectionConfig(level=level, strategy=level.value),
        )
        da, db = record_to_dict(implicit), record_to_dict(explicit)
        da.pop("metrics"), db.pop("metrics")
        assert canonical(da) == canonical(db), (
            f"{bench}@{level.value}: records diverge"
        )


@pytest.mark.parametrize(
    "path", CORPUS, ids=[p.stem for p in CORPUS]
)
def test_corpus_partitions_identical_through_named_strategy(path):
    """The 12-program minimized corpus through the new interface."""
    program = parse_program(path.read_text(encoding="utf-8"))
    for level in HeuristicLevel:
        implicit = select_tasks(program, SelectionConfig(level=level))
        explicit = select_tasks(
            program, SelectionConfig(level=level, strategy=level.value)
        )
        assert partition_shape(implicit) == partition_shape(explicit)


def test_bfs_traversal_is_reference_identical():
    """traversal="bfs" through the tunable strategy matches the paper
    strategy exactly (same growth order)."""
    program = build_diamond_loop()
    for level in (HeuristicLevel.CONTROL_FLOW,
                  HeuristicLevel.DATA_DEPENDENCE,
                  HeuristicLevel.TASK_SIZE):
        paper = select_tasks(program, SelectionConfig(level=level))
        tunable = select_tasks(
            program,
            SelectionConfig(level=level, strategy="tunable",
                            traversal="bfs"),
        )
        assert partition_shape(paper) == partition_shape(tunable)


# ---------------------------------------------------------- new strategies


def test_dfs_traversal_produces_valid_partition():
    program = build_diamond_loop()
    partition = select_tasks(
        program,
        SelectionConfig(level=HeuristicLevel.CONTROL_FLOW,
                        strategy="tunable", traversal="dfs"),
    )
    partition.validate()
    assert partition_shape(partition)


def test_dfs_traversal_changes_growth_on_some_program():
    """The traversal gene is live: dfs differs from bfs somewhere."""
    program = get_benchmark("cc").build(1.0)
    bfs = select_tasks(
        program,
        SelectionConfig(level=HeuristicLevel.DATA_DEPENDENCE,
                        strategy="tunable", traversal="bfs"),
    )
    dfs = select_tasks(
        program,
        SelectionConfig(level=HeuristicLevel.DATA_DEPENDENCE,
                        strategy="tunable", traversal="dfs"),
    )
    assert partition_shape(bfs) != partition_shape(dfs), (
        "dfs traversal never changed the cc partition"
    )


def test_cost_model_runs_and_validates():
    for build in (build_diamond_loop,
                  lambda: build_call_program("small")):
        program = build()
        partition = select_tasks(
            program, SelectionConfig(strategy="cost_model")
        )
        partition.validate()
        tasks = list(partition.tasks())
        assert tasks
        for task in tasks:
            assert len(task.targets) <= 4


def test_cost_model_absorbs_nothing():
    program = build_call_program("small")
    partition = select_tasks(
        program, SelectionConfig(strategy="cost_model")
    )
    for task in partition.tasks():
        assert not task.absorbed_calls


def test_cost_model_simulates_end_to_end():
    from repro.experiments.runner import clear_cache, run_benchmark

    clear_cache()
    record = run_benchmark(
        "compress", HeuristicLevel.DATA_DEPENDENCE,
        selection=SelectionConfig(level=HeuristicLevel.DATA_DEPENDENCE,
                                  strategy="cost_model"),
    )
    assert record.cycles > 0
    assert record.instructions > 0


def test_tunable_genes_are_live():
    """max_targets / thresholds flow through the tunable strategy."""
    program = build_diamond_loop()
    wide = select_tasks(
        program,
        SelectionConfig(level=HeuristicLevel.CONTROL_FLOW,
                        strategy="tunable", max_targets=4),
    )
    narrow = select_tasks(
        program,
        SelectionConfig(level=HeuristicLevel.CONTROL_FLOW,
                        strategy="tunable", max_targets=1),
    )
    mean_wide = sum(len(t.blocks) for t in wide.tasks()) / max(
        1, len(list(wide.tasks()))
    )
    mean_narrow = sum(len(t.blocks) for t in narrow.tasks()) / max(
        1, len(list(narrow.tasks()))
    )
    assert mean_narrow <= mean_wide
