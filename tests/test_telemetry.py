"""Telemetry subsystem: collector, exporter, metrics, ledger, report.

The load-bearing guarantee is engine equivalence: the fast engine
must produce exactly the canonical event stream the reference engine
produces, cell by cell — the stream is a far finer-grained probe than
the aggregate ``SimResult`` the fastpath tests compare, so a skip
that lands one hook a cycle late fails here first.
"""

import json

import pytest

from repro.compiler import HeuristicLevel
from repro.experiments.runner import compile_benchmark, run_benchmark
from repro.harness.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    RunLedger,
    read_ledger,
)
from repro.harness.serialize import record_to_dict
from repro.harness.spec import RunSpec, cell_label
from repro.sim import SimConfig
from repro.sim.machine import MultiscalarMachine
from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    TraceCollector,
    chrome_trace,
    diff_cells,
    format_report,
    load_cells,
    run_metrics,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.telemetry.report import PAPER_TABLE1

SMALL = 0.1

#: benchmarks for the equivalence sweep: two integer codes with heavy
#: control misspeculation, one memory-violation-prone code, one FP code
SWEEP_BENCHMARKS = ("compress", "go", "m88ksim", "tomcatv")
ALL_LEVELS = list(HeuristicLevel)


def _traced_run(name, level, engine, scale=SMALL, n_pus=4):
    compiled = compile_benchmark(name, level, scale=scale)
    collector = TraceCollector()
    config = SimConfig(engine=engine).scaled_for_pus(n_pus)
    machine = MultiscalarMachine(
        compiled.stream, config, compiled.release,
        label=name, tracer=collector,
    )
    result = machine.run()
    return collector, result


# ---------------------------------------------------------------- metrics


class TestMetrics:
    def test_histogram_bucketing(self):
        h = Histogram("h", (1, 2, 4))
        for v in (0, 1, 2, 3, 4, 5, 100):
            h.observe(v)
        # buckets: <=1, <=2, <=4, overflow
        assert h.counts == [2, 1, 2, 2]
        assert h.total == 7
        assert h.max == 100
        assert h.mean == pytest.approx(115 / 7)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", (4, 2, 1))

    def test_registry_counter_and_summary(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2)
        reg.histogram("h", (1, 2)).observe(2)
        summary = reg.summary()
        assert summary["counters"] == {"a": 3}
        assert summary["histograms"]["h"]["count"] == 1
        json.dumps(summary)  # must be JSON-ready

    def test_registry_rejects_rebucketing(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            reg.histogram("h", (1, 2, 3))
        with pytest.raises(KeyError):
            reg.histogram("unregistered")

    def test_run_metrics_matches_result(self):
        compiled = compile_benchmark(
            "compress", HeuristicLevel.DATA_DEPENDENCE, scale=SMALL
        )
        result = MultiscalarMachine(
            compiled.stream, SimConfig(), compiled.release
        ).run()
        summary = run_metrics(result, compiled.stream)
        counters = summary["counters"]
        assert counters["cycles"] == result.cycles
        assert counters["instructions"] == result.committed_instructions
        sizes = summary["histograms"]["task_size"]
        assert sizes["count"] == result.dynamic_tasks
        assert sizes["sum"] == sum(
            t.length for t in compiled.stream.tasks
        )
        depths = summary["histograms"]["squash_depth"]
        assert depths["count"] == len(result.squash_depths)

    def test_task_size_histogram_memoized_on_stream(self):
        compiled = compile_benchmark(
            "li", HeuristicLevel.BASIC_BLOCK, scale=SMALL
        )
        result = MultiscalarMachine(
            compiled.stream, SimConfig(), compiled.release
        ).run()
        first = run_metrics(result, compiled.stream)
        assert compiled.stream._task_size_counts is not None
        second = run_metrics(result, compiled.stream)
        assert first == second


# -------------------------------------------------------------- collector


class TestCollector:
    def test_lifecycle_counts_are_consistent(self):
        collector, result = _traced_run(
            "compress", HeuristicLevel.DATA_DEPENDENCE, "fast"
        )
        counts = collector.counts()
        # every task is assigned at least once and retired exactly once
        assert counts["retire"] == result.dynamic_tasks
        assert counts["commit"] == counts["retire"]
        assert counts["assign"] >= result.dynamic_tasks
        # re-executions: one extra assign per real-task squash victim
        assert counts["assign"] - result.dynamic_tasks == sum(
            result.squash_depths
        )
        assert counts.get("task_mispredict", 0) == (
            result.task_mispredictions
        )
        # wrong-path occupancy is always reclaimed
        assert counts.get("wrong_assign", 0) == counts.get(
            "wrong_squash", 0
        )
        assert collector.final_cycle == result.cycles

    def test_untraced_machine_has_no_tracer_state(self):
        compiled = compile_benchmark(
            "compress", HeuristicLevel.DATA_DEPENDENCE, scale=SMALL
        )
        machine = MultiscalarMachine(
            compiled.stream, SimConfig(), compiled.release
        )
        assert machine.tracer is None
        assert all(pu.tracer is None for pu in machine.pus)
        machine.run()  # must not touch any telemetry path

    def test_squash_event_carries_cause_and_first_issue(self):
        collector, result = _traced_run(
            "m88ksim", HeuristicLevel.CONTROL_FLOW, "fast"
        )
        squashes = [e for e in collector.events if e[0] == "squash"]
        assert len(squashes) == sum(result.squash_depths)
        for _, seq, pu, cycle, penalty, cause, first_issue in squashes:
            assert cause in ("memory", "control")
            assert penalty >= 0
            assert first_issue == -1 or 0 <= first_issue <= cycle


# ------------------------------------------------------ engine equivalence


@pytest.mark.parametrize("name", SWEEP_BENCHMARKS)
@pytest.mark.parametrize(
    "level", ALL_LEVELS, ids=[lvl.value for lvl in ALL_LEVELS]
)
def test_engines_emit_identical_event_streams(name, level):
    """Canonical streams are byte-identical across engines, cell by
    cell; only the engine-local skip diagnostics may differ."""
    fast, fast_result = _traced_run(name, level, "fast")
    reference, ref_result = _traced_run(name, level, "reference")
    assert fast_result.cycles == ref_result.cycles
    assert reference.engine_events == []
    assert fast.events == reference.events, (
        f"{name}/{level.value}: canonical event streams diverge "
        f"(fast={len(fast.events)}, reference={len(reference.events)})"
    )


def test_fast_engine_records_skips_as_engine_events():
    collector, result = _traced_run(
        "compress", HeuristicLevel.DATA_DEPENDENCE, "fast"
    )
    assert collector.engine_events, "fast engine never skipped"
    for kind, frm, to in collector.engine_events:
        assert kind == "skip"
        assert to > frm + 1  # a skip spans at least one full cycle
        assert to <= result.cycles


# ----------------------------------------------------------------- export


class TestExport:
    def test_chrome_trace_is_schema_valid(self):
        collector, _ = _traced_run(
            "compress", HeuristicLevel.DATA_DEPENDENCE, "fast"
        )
        payload = chrome_trace(collector)
        assert validate_chrome_trace(payload) == []

    def test_trace_slices_cover_every_retire(self):
        collector, result = _traced_run(
            "li", HeuristicLevel.CONTROL_FLOW, "fast"
        )
        payload = chrome_trace(collector)
        tasks = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "task"
        ]
        retired = [
            e for e in tasks if e["args"].get("outcome") == "retire"
        ]
        assert len(retired) == result.dynamic_tasks
        n_pus = collector.n_pus
        for event in tasks:
            assert 0 <= event["tid"] < n_pus
            assert event["ts"] >= 0
            assert event["ts"] + event["dur"] <= result.cycles

    def test_write_and_validate_file(self, tmp_path):
        collector, _ = _traced_run(
            "compress", HeuristicLevel.BASIC_BLOCK, "fast"
        )
        path = tmp_path / "trace.json"
        write_chrome_trace(path, collector)
        validate_chrome_trace_file(path)  # must not raise
        payload = json.loads(path.read_text())
        assert payload["otherData"]["engine"] == "fast"

    def test_validate_flags_broken_traces(self, tmp_path):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{}]}) != []
        bad = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 0, "ts": 4}  # no dur
        ]}
        assert any("dur" in p for p in validate_chrome_trace(bad))
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError):
            validate_chrome_trace_file(path)

    def test_engine_events_can_be_excluded(self):
        collector, _ = _traced_run(
            "compress", HeuristicLevel.DATA_DEPENDENCE, "fast"
        )
        with_skips = chrome_trace(collector, include_engine_events=True)
        without = chrome_trace(collector, include_engine_events=False)
        skips = [
            e for e in with_skips["traceEvents"]
            if e.get("cat") == "engine"
        ]
        assert skips
        assert not [
            e for e in without["traceEvents"] if e.get("cat") == "engine"
        ]


# ----------------------------------------------------------------- ledger


class TestLedgerSchema:
    def _entry(self, n):
        spec = RunSpec(
            benchmark="compress", level=HeuristicLevel.BASIC_BLOCK
        )
        return LedgerEntry.for_spec(
            spec, f"hash{n}", cache="miss", retries=0, outcome="ok",
            wall_seconds=0.1, metrics={"counters": {"cycles": n}},
        )

    def test_seq_is_monotonic_within_a_run(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        for n in range(3):
            ledger.record(self._entry(n))
        ledger.event("pool_broken", detail="x")
        seqs = [e["seq"] for e in read_ledger(ledger.path)]
        assert seqs == [0, 1, 2, 3]  # events share the sequence

    def test_seq_resumes_past_existing_entries(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).record(self._entry(0))
        # a second ledger object (a new process) continues the sequence
        RunLedger(path).record(self._entry(1))
        assert [e["seq"] for e in read_ledger(path)] == [0, 1]

    def test_schema_version_bumped_and_metrics_round_trip(self, tmp_path):
        assert LEDGER_SCHEMA_VERSION == 3
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.record(self._entry(7))
        (line,) = read_ledger(ledger.path)
        assert line["schema_version"] == 3
        assert line["metrics"]["counters"]["cycles"] == 7
        entry = LedgerEntry.from_dict(line)
        assert entry.metrics == {"counters": {"cycles": 7}}

    def test_tolerant_reader_accepts_schema_2_lines(self, tmp_path):
        """Old ledgers (schema 2: no seq, no metrics) must still parse
        for --resume and for LedgerEntry.from_dict."""
        path = tmp_path / "old.jsonl"
        old_line = {
            "ts": 1699.2, "schema_version": 2, "spec_hash": "ab12",
            "job": "compress/basic_block@4pu-ooo",
            "benchmark": "compress", "level": "basic_block",
            "n_pus": 4, "out_of_order": True, "cache": "miss",
            "retries": 0, "outcome": "ok", "wall_seconds": 0.42,
            "error": None,
        }
        path.write_text(json.dumps(old_line) + "\n")
        (parsed,) = read_ledger(path)
        entry = LedgerEntry.from_dict(parsed)
        assert entry.spec_hash == "ab12"
        assert entry.metrics is None
        # and a new writer appends seq'd lines after the old ones
        RunLedger(path).record(self._entry(0))
        lines = read_ledger(path)
        assert "seq" not in lines[0]
        assert lines[1]["seq"] == 0


# ----------------------------------------------------------------- report


class TestReport:
    def _records_json(self, tmp_path, name, cycles_bump=0):
        record = run_benchmark(
            "compress", HeuristicLevel.BASIC_BLOCK, scale=SMALL
        )
        payload = record_to_dict(record)
        payload["cycles"] += cycles_bump
        path = tmp_path / name
        path.write_text(json.dumps({"records": [payload]}))
        return path

    def test_identical_inputs_do_not_drift(self, tmp_path):
        a = load_cells(str(self._records_json(tmp_path, "a.json")))
        b = load_cells(str(self._records_json(tmp_path, "b.json")))
        rows = diff_cells(a, b)
        assert len(rows) == 1
        assert not rows[0].drifted
        assert "0 drifted" in format_report(a, b, rows)

    def test_cycle_mismatch_drifts(self, tmp_path):
        a = load_cells(str(self._records_json(tmp_path, "a.json")))
        b = load_cells(
            str(self._records_json(tmp_path, "b.json", cycles_bump=5))
        )
        rows = diff_cells(a, b)
        assert rows[0].drifted
        assert "DRIFT" in format_report(a, b, rows)
        # a loose tolerance forgives the same delta
        assert not diff_cells(a, b, tolerance=0.5)[0].drifted

    def test_record_and_ledger_cells_agree(self, tmp_path):
        record = run_benchmark(
            "compress", HeuristicLevel.BASIC_BLOCK, scale=SMALL
        )
        records_path = tmp_path / "run.json"
        records_path.write_text(
            json.dumps({"records": [record_to_dict(record)]})
        )
        spec = RunSpec(
            benchmark="compress", level=HeuristicLevel.BASIC_BLOCK
        )
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.record(LedgerEntry.for_spec(
            spec, "h", cache="miss", retries=0, outcome="ok",
            wall_seconds=0.1, metrics=record.metrics,
        ))
        rows = diff_cells(
            load_cells(str(records_path)),
            load_cells(str(ledger.path)),
        )
        assert len(rows) == 1
        assert not rows[0].drifted

    def test_paper_table1_builtin(self):
        cells = load_cells("paper-table1")
        assert cells.kind == "paper"
        key = cell_label("go", "basic_block", 8, True)
        assert cells.cells[key]["mean_task_size"] == 6.4
        assert set(cells.cells) == set(PAPER_TABLE1)

    def test_unrecognised_input_raises(self, tmp_path):
        path = tmp_path / "noise.txt"
        path.write_text("not a ledger\nnot json either\n")
        with pytest.raises(ValueError):
            load_cells(str(path))


# ------------------------------------------------------- record plumbing


class TestRecordMetrics:
    def test_run_benchmark_attaches_metrics(self):
        record = run_benchmark(
            "compress", HeuristicLevel.DATA_DEPENDENCE, scale=SMALL
        )
        assert record.metrics is not None
        assert record.metrics["counters"]["cycles"] == record.cycles
        assert record_to_dict(record)["metrics"] == record.metrics

    def test_cell_label_matches_spec_describe(self):
        spec = RunSpec(
            benchmark="go", level=HeuristicLevel.CONTROL_FLOW,
            n_pus=8, out_of_order=False,
        )
        assert spec.describe() == cell_label(
            "go", HeuristicLevel.CONTROL_FLOW, 8, False
        )
        assert spec.describe() == "go/control_flow@8pu-ino"
