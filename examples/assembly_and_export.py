#!/usr/bin/env python3
"""Write a workload in assembly text, partition it, export the result.

Demonstrates two tooling layers: the textual IR format
(:mod:`repro.ir.asmtext`) for authoring workloads as plain text, and
the partition exports (:mod:`repro.compiler.export`) for inspecting
what the heuristics chose — as JSON for diffing and Graphviz DOT for
rendering.

Run:  python examples/assembly_and_export.py
"""

from repro import HeuristicLevel, SelectionConfig, select_tasks
from repro.compiler.export import partition_to_dot, partition_to_json
from repro.ir import parse_program, program_to_text

HISTOGRAM_ASM = """
.main main
.func bucket
entry:
    rem     r2, r4, r5        ; bucket = value mod buckets
    ret
.func main
entry:
    li      r1, #0            ; i
    li      r5, #16           ; bucket count
    li      r6, #0            ; checksum
    jump    @body
body:
    add     r8, r1, #2000
    load    r4, [r8 + 0]      ; value
    call    @bucket, @cont
cont:
    add     r9, r2, #3000
    load    r10, [r9 + 0]
    add     r10, r10, #1
    store   r10, [r9 + 0]     ; histogram[bucket]++
    xor     r6, r6, r4
    add     r1, r1, #1
    slt     r9, r1, #200
    bnez    r9, @body, @done
done:
    store   r6, [r0 + 900]
    halt
"""


def main() -> None:
    program = parse_program(
        HISTOGRAM_ASM
        + "\n".join(f".memory {2000 + i} {(i * 37 + 11) % 97}"
                    for i in range(200))
    )
    print("parsed", program.size, "static instructions; round-trip check:",
          parse_program(program_to_text(program)).size == program.size)

    partition = select_tasks(
        program, SelectionConfig(level=HeuristicLevel.TASK_SIZE)
    )
    print(f"\nselected {len(partition)} tasks "
          f"(the 2-instruction 'bucket' helper is absorbed):")
    for task in partition.tasks():
        absorbed = " +absorbed-call" if task.absorbed_calls else ""
        print(f"  {task}{absorbed}")

    print("\n--- partition as JSON (truncated) ---")
    print(partition_to_json(partition)[:600], "...")

    print("\n--- partition as Graphviz DOT (render with `dot -Tsvg`) ---")
    print(partition_to_dot(partition, function="main"))


if __name__ == "__main__":
    main()
