#!/usr/bin/env python3
"""Quickstart: partition a small program into Multiscalar tasks and
simulate it.

Builds a loop with an if-diamond using the IR builder, runs the
paper's task selection at every heuristic level, and reports the task
shapes and simulated IPC on a 4-PU machine.

Run:  python examples/quickstart.py
"""

from repro import (
    HeuristicLevel,
    IRBuilder,
    SelectionConfig,
    SimConfig,
    build_task_stream,
    select_tasks,
    simulate,
)
from repro.ir.interp import run_program


def build_program():
    """A loop that conditionally accumulates over an array."""
    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 0)        # i
        b.li("r2", 300)      # n
        b.li("r3", 0)        # sum
        b.li("r4", 1000)     # array base
        body = b.new_label("body")
        odd = b.new_label("odd")
        even = b.new_label("even")
        join = b.new_label("join")
        done = b.new_label("done")
        b.jump(body)
        with b.block(body):
            b.add("r10", "r4", "r1")
            b.load("r11", "r10", 0)
            b.andi("r9", "r11", 1)
            b.bnez("r9", odd, fallthrough=even)
        with b.block(even):
            b.add("r3", "r3", "r11")
            b.jump(join)
        with b.block(odd):
            b.sub("r3", "r3", "r11")
        with b.block(join):
            b.addi("r1", "r1", 1)
            b.slt("r9", "r1", "r2")
            b.bnez("r9", body, fallthrough=done)
        with b.block(done):
            b.store("r3", "r0", 500)
            b.halt()
    program = b.build()
    for i in range(300):
        program.memory_image[1000 + i] = (i * 7 + 3) % 23
    return program


def main() -> None:
    for level in HeuristicLevel:
        partition = select_tasks(build_program(), SelectionConfig(level=level))
        trace = run_program(partition.program)
        stream = build_task_stream(trace, partition)
        result = simulate(stream, SimConfig().scaled_for_pus(4))
        print(f"=== {level.value}")
        print(f"  static tasks     : {len(partition)}")
        print(f"  dynamic tasks    : {len(stream)}")
        print(f"  mean task size   : {stream.mean_task_size:.1f} instructions")
        print(f"  task prediction  : {100 * result.task_prediction_accuracy:.1f}%")
        print(f"  cycles           : {result.cycles}")
        print(f"  IPC (4 PUs)      : {result.ipc:.2f}")
        for task in partition.tasks():
            print(f"    {task}")
        print()


if __name__ == "__main__":
    main()
