#!/usr/bin/env python3
"""Bring your own workload: a blocked matrix multiply through the
whole pipeline.

Shows the intended integration path for downstream users: construct a
program with :class:`repro.IRBuilder`, hand it to
:func:`repro.select_tasks`, execute it functionally, split the trace
with :func:`repro.build_task_stream`, and time it with
:func:`repro.simulate` — then inspect per-task shapes and where the
cycles went.

Run:  python examples/custom_workload.py
"""

from repro import (
    HeuristicLevel,
    IRBuilder,
    SelectionConfig,
    SimConfig,
    build_task_stream,
    select_tasks,
    simulate,
)
from repro.ir.interp import Interpreter

N = 10
A_BASE, B_BASE, C_BASE = 1000, 2000, 3000


def build_matmul():
    """C = A x B over N x N fp matrices, classic triple loop."""
    b = IRBuilder()
    with b.function("main"):
        b.li("r1", 0)  # i
        i_head, i_body = b.new_label("i_head"), b.new_label("i_body")
        j_head, j_body = b.new_label("j_head"), b.new_label("j_body")
        k_head, k_body = b.new_label("k_head"), b.new_label("k_body")
        k_exit, j_exit, i_exit = (
            b.new_label("k_exit"), b.new_label("j_exit"), b.new_label("done"),
        )
        b.li("r30", N)
        b.jump(i_head)
        with b.block(i_head):
            b.slt("r9", "r1", "r30")
            b.beqz("r9", i_exit, fallthrough=i_body)
        with b.block(i_body):
            b.li("r2", 0)  # j
            b.jump(j_head)
        with b.block(j_head):
            b.slt("r9", "r2", "r30")
            b.beqz("r9", j_exit, fallthrough=j_body)
        with b.block(j_body):
            b.fli("f4", 0.0)  # acc
            b.li("r3", 0)     # k
            b.jump(k_head)
        with b.block(k_head):
            b.slt("r9", "r3", "r30")
            b.beqz("r9", k_exit, fallthrough=k_body)
        with b.block(k_body):
            b.muli("r10", "r1", N)
            b.add("r10", "r10", "r3")
            b.addi("r10", "r10", A_BASE)
            b.load("f5", "r10", 0)
            b.muli("r11", "r3", N)
            b.add("r11", "r11", "r2")
            b.addi("r11", "r11", B_BASE)
            b.load("f6", "r11", 0)
            b.fmul("f7", "f5", "f6")
            b.fadd("f4", "f4", "f7")
            b.addi("r3", "r3", 1)
            b.jump(k_head)
        with b.block(k_exit):
            b.muli("r12", "r1", N)
            b.add("r12", "r12", "r2")
            b.addi("r12", "r12", C_BASE)
            b.store("f4", "r12", 0)
            b.addi("r2", "r2", 1)
            b.jump(j_head)
        with b.block(j_exit):
            b.addi("r1", "r1", 1)
            b.jump(i_head)
        with b.block(i_exit):
            b.halt()
    program = b.build()
    for i in range(N * N):
        program.memory_image[A_BASE + i] = 0.5 + (i % 7) * 0.1
        program.memory_image[B_BASE + i] = 1.0 - (i % 5) * 0.05
    return program


def main() -> None:
    for level in (HeuristicLevel.BASIC_BLOCK, HeuristicLevel.TASK_SIZE):
        partition = select_tasks(build_matmul(), SelectionConfig(level=level))
        interp = Interpreter(partition.program)
        trace = interp.run()
        stream = build_task_stream(trace, partition)
        result = simulate(stream, SimConfig().scaled_for_pus(8))
        print(f"=== {level.value}: {len(trace)} dyn insts, "
              f"{len(stream)} tasks (mean {stream.mean_task_size:.1f}), "
              f"IPC {result.ipc:.2f} on 8 PUs")
    # Sanity: C[0][0] = sum_k A[0][k] * B[k][0]
    expect = sum(
        (0.5 + (k % 7) * 0.1) * (1.0 - (k * N % 5) * 0.05) for k in range(N)
    )
    print(f"C[0][0] = {interp.memory[C_BASE]:.4f} (expected {expect:.4f})")


if __name__ == "__main__":
    main()
