#!/usr/bin/env python3
"""Compare the paper's heuristic progression on a SPEC95 stand-in.

Runs one benchmark (default: ``compress``, the one the paper notes
responds to the task size heuristic) through basic block / control
flow / data dependence / task size selection, and prints the
Figure 5-style IPC comparison plus the Figure 2 cycle breakdown.

Run:  python examples/heuristic_comparison.py [benchmark]
"""

import sys

from repro import HeuristicLevel, run_benchmark
from repro.metrics import improvement_percent


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "compress"
    records = {
        level: run_benchmark(name, level, n_pus=4) for level in HeuristicLevel
    }
    base = records[HeuristicLevel.BASIC_BLOCK]

    print(f"benchmark: {name}  (suite: {base.suite}, "
          f"{base.instructions} dynamic instructions)\n")
    print(f"{'level':<18}{'IPC':>6}{'gain':>9}{'task size':>11}"
          f"{'task pred':>11}{'mem squash':>12}")
    for level, rec in records.items():
        gain = improvement_percent(rec.ipc, base.ipc)
        print(f"{level.value:<18}{rec.ipc:>6.2f}{gain:>+8.1f}%"
              f"{rec.mean_task_size:>11.1f}"
              f"{100 * rec.task_prediction_accuracy:>10.1f}%"
              f"{rec.memory_squashes:>12d}")

    print("\ncycle breakdown (percent of attributed PU-cycles):")
    columns = None
    for level, rec in records.items():
        flat = rec.breakdown.as_dict()
        total = sum(flat.values()) or 1
        if columns is None:
            columns = list(flat)
            print(f"{'level':<18}" + "".join(f"{c[:10]:>11}" for c in columns))
        print(f"{level.value:<18}" + "".join(
            f"{100 * flat[c] / total:>10.1f}%" for c in columns
        ))


if __name__ == "__main__":
    main()
