#!/usr/bin/env python3
"""PU-count scaling and window span study.

Sweeps the machine from 1 to 8 PUs for a benchmark under basic block
and data dependence tasks, printing IPC and both window-span measures
(the Section 4.3.4 formula and the cycle-averaged measurement).
Reproduces the paper's headline observation: task-level speculation
exposes far more of the dynamic instruction stream than branch
prediction alone.

Run:  python examples/scaling_study.py [benchmark]
"""

import sys

from repro import HeuristicLevel, run_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "tomcatv"
    print(f"benchmark: {name}\n")
    print(f"{'PUs':>4} {'tasks':>6}  | {'bb IPC':>7} {'bb span':>8}"
          f" | {'dd IPC':>7} {'dd span':>8} {'measured':>9}")
    for n_pus in (1, 2, 4, 8):
        bb = run_benchmark(name, HeuristicLevel.BASIC_BLOCK, n_pus=n_pus)
        dd = run_benchmark(name, HeuristicLevel.DATA_DEPENDENCE, n_pus=n_pus)
        print(f"{n_pus:>4} {dd.dynamic_tasks:>6}  "
              f"| {bb.ipc:>7.2f} {bb.window_span_formula:>8.0f}"
              f" | {dd.ipc:>7.2f} {dd.window_span_formula:>8.0f}"
              f" {dd.mean_window_span_measured:>9.1f}")
    print("\nThe 1-PU row is the sequential (superscalar-like) baseline;")
    print("window span grows with PUs only when tasks are large and the")
    print("inter-task predictor stays accurate (the paper's equation).")


if __name__ == "__main__":
    main()
