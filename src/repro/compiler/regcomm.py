"""Register communication release analysis ("dead register analysis").

A Multiscalar task forwards a register value to later tasks as soon as
the compiler can prove no later definition of that register can occur
inside the task (the last update on every path).  This module computes
*release points* per task: instruction positions whose write may be
forwarded immediately at completion.  Writes that are not release
points (a later path may redefine the register) are forwarded by an
inserted release instruction, modelled in the simulator as a
configurable lag or as a task-end forward.

Absorbed callees are treated conservatively: any register the callee
(or its transitive callees) may write counts as a potential later
definition, and writes executed *inside* an absorbed callee are never
release points.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.compiler.task import Task, TaskPartition
from repro.ir.block import BlockId
from repro.ir.program import Program


def function_write_sets(program: Program) -> Dict[str, FrozenSet[str]]:
    """Registers each function may write, inclusive of its callees.

    Computed as a fixpoint over the (possibly cyclic) call graph.
    """
    direct: Dict[str, Set[str]] = {}
    callees: Dict[str, Set[str]] = {}
    for func in program.functions():
        writes: Set[str] = set()
        for blk in func.blocks():
            for ins in blk.instructions:
                if ins.writes is not None:
                    writes.add(ins.writes)
        direct[func.name] = writes
        callees[func.name] = set(func.callees())

    result: Dict[str, Set[str]] = {name: set(ws) for name, ws in direct.items()}
    changed = True
    while changed:
        changed = False
        for name in result:
            for callee in callees[name]:
                extra = result.get(callee, set()) - result[name]
                if extra:
                    result[name] |= extra
                    changed = True
    return {name: frozenset(ws) for name, ws in result.items()}


class ReleaseAnalysis:
    """Per-task release points for every register write."""

    def __init__(self, partition: TaskPartition) -> None:
        self.partition = partition
        self.program = partition.program
        self._func_writes = function_write_sets(self.program)
        # (task_id, block) -> registers possibly defined strictly after
        # the block along internal edges.
        self._after_defs: Dict[Tuple[int, BlockId], FrozenSet[str]] = {}
        for task in partition.tasks():
            self._analyse_task(task)

    def _block_defs(self, task: Task, block_id: BlockId) -> Set[str]:
        """Registers possibly defined while executing ``block_id``."""
        blk = self.program.block(block_id)
        defs: Set[str] = set()
        for ins in blk.instructions:
            if ins.writes is not None:
                defs.add(ins.writes)
        if block_id in task.absorbed_calls:
            term = blk.terminator
            assert term is not None and term.target is not None
            defs |= self._func_writes[term.target]
        return defs

    def _analyse_task(self, task: Task) -> None:
        succs: Dict[BlockId, List[BlockId]] = {b: [] for b in task.blocks}
        indeg: Dict[BlockId, int] = {b: 0 for b in task.blocks}
        for src, dst in task.internal_edges:
            succs[src].append(dst)
            indeg[dst] += 1
        # Reverse topological order over the task DAG.
        order: List[BlockId] = []
        ready = [b for b in sorted(task.blocks) if indeg[b] == 0]
        while ready:
            node = ready.pop()
            order.append(node)
            for nxt in succs[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        after: Dict[BlockId, Set[str]] = {}
        for node in reversed(order):
            acc: Set[str] = set()
            for nxt in succs[node]:
                acc |= self._block_defs(task, nxt)
                acc |= after.get(nxt, set())
            after[node] = acc
        for block_id in task.blocks:
            self._after_defs[(task.task_id, block_id)] = frozenset(
                after.get(block_id, set())
            )

    def is_release(
        self, task: Task, block_id: BlockId, inst_index: int, register: str
    ) -> bool:
        """May the write of ``register`` at this position forward now?

        True when no instruction after ``inst_index`` in the block (nor
        the block's absorbed callee, nor any internally reachable
        block) can redefine ``register``.
        """
        blk = self.program.block(block_id)
        for ins in blk.instructions[inst_index + 1 :]:
            if ins.writes == register:
                return False
        if block_id in task.absorbed_calls:
            term = blk.terminator
            assert term is not None and term.target is not None
            if register in self._func_writes[term.target]:
                return False
        return register not in self._after_defs[(task.task_id, block_id)]
