"""Pluggable task-selection strategies (the ``SelectionStrategy`` protocol).

The paper stops at four fixed heuristics; this module turns "which
heuristic" into a dispatch point.  A strategy owns the four decisions
:func:`~repro.compiler.partition.select_tasks` makes:

1. **transform** — which code transforms run before selection
   (unrolling, induction hoisting, communication scheduling);
2. **wants_profile** — whether the driver must interpret the program
   to obtain a dynamic profile before growing tasks;
3. **absorbed_functions** — which callees execute inside the caller's
   task instead of terminating it;
4. **build** — how task boundaries are actually chosen.

Registered strategies:

* ``basic_block`` / ``control_flow`` / ``data_dependence`` /
  ``task_size`` — the paper's four levels (:class:`PaperStrategy`).
  These are the *reference* strategies: with a default-constructed
  :class:`~repro.compiler.heuristics.SelectionConfig` they are
  bit-identical to the pre-refactor pipeline (enforced by
  ``tests/test_strategies.py``).
* ``tunable`` (:class:`TunableStrategy`) — the paper pipeline with
  every threshold exposed as a gene: ``max_targets``,
  ``loop_thresh``, ``call_thresh``, ``max_unroll``, ``traversal``
  order, and the hoist/schedule toggles all come from the config.
  This is the search space of ``repro tune``.
* ``cost_model`` (:class:`CostModelStrategy`) — a greedy selector
  that scores each candidate boundary extension by predicted
  communication and squash cost from the profiler instead of the
  paper's open/closed dependence automaton.

``SelectionConfig.strategy`` names the strategy (empty string = the
reference strategy for ``config.level``); the name participates in
compile-cache identity via ``SelectionConfig.cache_key()`` and in
``RunSpec`` content hashes, so records produced by different
strategies can never alias each other.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Type

from repro.compiler.control_flow import GrowthContext, GrowthPolicy
from repro.compiler.data_dependence import DependenceBook, ranked_dependences
from repro.compiler.heuristics import HeuristicLevel, SelectionConfig
from repro.compiler.sched import schedule_register_communication
from repro.compiler.task import Task, TaskPartition
from repro.compiler.task_size import absorbed_functions
from repro.compiler.transforms import (
    hoist_induction_increments,
    unroll_small_loops,
)
from repro.ir.block import BlockId
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.program import Program
from repro.profiling import Profile


class SelectionStrategy:
    """Protocol every task-selection strategy implements.

    Strategies are stateless singletons: every method receives the
    program / config it operates on, so one instance serves all
    compilations concurrently (the harness runs them from multiple
    worker processes).
    """

    #: registry name; also the value of ``SelectionConfig.strategy``
    name: str = ""
    #: one-line description for ``repro list --strategies``
    description: str = ""

    @classmethod
    def tunables(cls) -> Dict[str, object]:
        """Tunable parameter names mapped to their config defaults.

        ``repro list --strategies`` renders this; the autotuner's
        genome space (:mod:`repro.tune.genome`) is the superset of
        the ``tunable`` strategy's entry.
        """
        return {}

    # ------------------------------------------------------------ hooks

    def transform(self, program: Program, config: SelectionConfig) -> None:
        """Apply pre-selection code transforms to ``program`` in place."""

    def wants_profile(self, config: SelectionConfig) -> bool:
        """Must the driver profile the transformed program first?"""
        return False

    def absorbed_functions(
        self, program: Program, profile: Optional[Profile],
        config: SelectionConfig,
    ) -> Set[str]:
        """Callees whose calls do not terminate tasks."""
        return set()

    def build(
        self,
        partition: TaskPartition,
        contexts: Dict[str, GrowthContext],
        profile: Optional[Profile],
        config: SelectionConfig,
    ) -> None:
        """Populate ``partition`` with tasks (the selection proper)."""
        raise NotImplementedError


# --------------------------------------------------------------- coverage

def basic_block_tasks(
    partition: TaskPartition, contexts: Dict[str, GrowthContext]
) -> None:
    """Root a single-block task at every block of every function."""
    for fname, context in contexts.items():
        function = context.program.function(fname)
        for label in function.labels():
            members = {label}
            partition.new_task(
                function=fname,
                root=(fname, label),
                blocks={(fname, label)},
                internal_edges=set(),
                targets=context.compute_targets(members),
                absorbed_calls=set(),
            )


def task_successor_roots(task: Task, context: GrowthContext) -> List[BlockId]:
    """Roots this task's dynamic execution can expose.

    BLOCK and CALL targets directly; additionally the continuation of
    every non-absorbed call member block (entered when the callee
    returns) — it is a *successor of the callee's final task*, not of
    this one, but it must be rooted for the stream to proceed.
    """
    roots: List[BlockId] = []
    for target in task.targets:
        if target.block is not None:
            roots.append(target.block)
    program = context.program
    for block_id in sorted(task.blocks):
        blk = program.block(block_id)
        if blk.ends_in_call and block_id not in task.absorbed_calls:
            if blk.fallthrough is not None:
                roots.append((block_id[0], blk.fallthrough))
    return roots


def cover_program(
    partition: TaskPartition,
    contexts: Dict[str, GrowthContext],
    policy_factory,
) -> None:
    """Grow tasks from the entry until every exposed target is rooted.

    ``policy_factory(function_name)`` returns a fresh
    :class:`~repro.compiler.control_flow.GrowthPolicy` (or ``None``
    for pure control-flow growth) for each task grown in that
    function — strategies differ only in the policies they hand out.
    """
    program = partition.program
    main_entry: BlockId = (program.main_name, program.main.entry_label or "")
    worklist: Deque[BlockId] = deque([main_entry])
    processed: Set[BlockId] = set()

    while worklist:
        root = worklist.popleft()
        if root in processed:
            continue
        processed.add(root)
        fname, label = root
        context = contexts[fname]
        if partition.has_root(root):
            task = partition.task_at(root)
        else:
            members = context.grow(label, policy=policy_factory(fname))
            task = partition.new_task(
                function=fname,
                root=root,
                blocks={(fname, lbl) for lbl in members},
                internal_edges=context.compute_internal_edges(members),
                targets=context.compute_targets(members),
                absorbed_calls=context.absorbed_call_blocks(members),
            )
        for succ in task_successor_roots(task, context):
            if succ not in processed:
                worklist.append(succ)


# ---------------------------------------------------------------- paper

class PaperStrategy(SelectionStrategy):
    """The paper's cumulative heuristic progression, config-driven.

    One class serves all four levels: ``config.level`` gates each
    mechanism exactly as the pre-refactor driver did, so the four
    registered reference names are views of the same code path.
    """

    name = "paper"
    description = "the paper's heuristic progression (reference)"

    @classmethod
    def tunables(cls) -> Dict[str, object]:
        defaults = SelectionConfig()
        return {
            "max_targets": defaults.max_targets,
            "loop_thresh": defaults.loop_thresh,
            "call_thresh": defaults.call_thresh,
            "max_unroll": defaults.max_unroll,
            "hoist_induction": defaults.hoist_induction,
            "schedule_communication": defaults.schedule_communication,
        }

    def transform(self, program: Program, config: SelectionConfig) -> None:
        if config.use_task_size:
            unroll_small_loops(program, config.loop_thresh, config.max_unroll)
        if config.multi_block and config.hoist_induction:
            hoist_induction_increments(program)
        if config.multi_block and config.schedule_communication:
            schedule_register_communication(program)

    def wants_profile(self, config: SelectionConfig) -> bool:
        return config.use_data_dependence or config.use_task_size

    def absorbed_functions(
        self, program: Program, profile: Optional[Profile],
        config: SelectionConfig,
    ) -> Set[str]:
        if not config.use_task_size:
            return set()
        assert profile is not None
        return absorbed_functions(program, profile, config)

    def build(
        self,
        partition: TaskPartition,
        contexts: Dict[str, GrowthContext],
        profile: Optional[Profile],
        config: SelectionConfig,
    ) -> None:
        if config.level is HeuristicLevel.BASIC_BLOCK:
            basic_block_tasks(partition, contexts)
            return
        books: Dict[str, DependenceBook] = {}
        if config.use_data_dependence:
            assert profile is not None
            program = partition.program
            books = {
                fn.name: DependenceBook(
                    fn, contexts[fn.name].cfg, profile, config
                )
                for fn in program.functions()
            }
        cover_program(
            partition, contexts,
            lambda fname: books[fname].policy() if fname in books else None,
        )


class TunableStrategy(PaperStrategy):
    """The paper pipeline with every knob exposed as a genome gene.

    Identical mechanics to :class:`PaperStrategy` — the difference is
    contractual: ``tunable`` promises that *all* of ``max_targets``,
    ``loop_thresh``, ``call_thresh``, ``max_unroll``, ``traversal``,
    ``hoist_induction`` and ``schedule_communication`` are honoured
    from the config (the paper strategies honour them too, but their
    reference identity is only guaranteed at the defaults), and the
    strategy name keys the cache so tuned artifacts never alias
    reference artifacts.
    """

    name = "tunable"
    description = "paper pipeline with genome-exposed thresholds"

    @classmethod
    def tunables(cls) -> Dict[str, object]:
        out = dict(PaperStrategy.tunables())
        out["traversal"] = SelectionConfig().traversal
        out["level"] = SelectionConfig().level.value
        return out


# ----------------------------------------------------------- cost model

def policy_weights(machine) -> tuple:
    """(saved, opened, squash) weights of one machine spec.

    The cost model's constants encode the paper machine: forwarding a
    register one ring hop between narrow PUs is cheap, so an opened
    dependence weighs half a saved one and a squashed slot weighs one
    occurrence.  On other machines both costs move:

    * **opened** grows with ring reach — a forwarded value crosses
      ``hop`` latency over (on average) half the ring, so machines
      with more PUs or slower links punish boundary-crossing
      dependences harder;
    * **squash** grows with the widest PU's issue width — one
      squashed task slot wastes that many issue opportunities per
      cycle on the PU that ran it.

    The paper machine (``paper-4x2``: 4 PUs, hop 1, issue 2) maps to
    exactly ``(2, 1, 1)`` — :class:`CostModelPolicy`'s class
    constants — so a hinted default machine is bit-identical to the
    unhinted path.
    """
    from repro.sim.config import SimConfig

    defaults = SimConfig()
    hop = (machine.ring_hop_latency
           if machine.ring_hop_latency is not None
           else defaults.ring_hop_latency)
    n = machine.n_pus
    max_issue = max(
        (pu.issue_width if pu.issue_width is not None
         else defaults.issue_width)
        for pu in machine.pus
    )
    saved = CostModelPolicy.COMM_SAVED_WEIGHT
    opened = max(1, (hop * (n // 2)) // 4)
    squash = max(1, max_issue // 2)
    return (saved, opened, squash)


class CostBook:
    """Per-function profiled cost index shared by all task growths."""

    def __init__(self, function: Function, cfg: CFG, profile: Profile,
                 config: SelectionConfig) -> None:
        self.cfg = cfg
        self.profile = profile
        self.function_name = function.name
        if config.machine_hint:
            from repro.machines import get_machine

            self.weights = policy_weights(get_machine(config.machine_hint))
        else:
            self.weights = (
                CostModelPolicy.COMM_SAVED_WEIGHT,
                CostModelPolicy.COMM_OPENED_WEIGHT,
                CostModelPolicy.SQUASH_WEIGHT,
            )
        self.dependences = ranked_dependences(function, cfg, profile, config)
        #: block label -> indices of dependences produced there
        self.by_producer: Dict[str, List[int]] = {}
        #: block label -> indices of dependences consumed there
        self.by_consumer: Dict[str, List[int]] = {}
        for idx, dep in enumerate(self.dependences):
            self.by_producer.setdefault(dep.edge.def_block, []).append(idx)
            self.by_consumer.setdefault(dep.edge.use_block, []).append(idx)
        #: static instruction count per block (size pressure term)
        self.static_size: Dict[str, int] = {
            block.label: len(block.instructions)
            for block in function.blocks()
        }

    def block_count(self, label: str) -> int:
        return self.profile.block_count((self.function_name, label))

    def edge_count(self, src: str, dst: str) -> int:
        return self.profile.edge_count(
            (self.function_name, src), (self.function_name, dst)
        )

    def policy(self) -> "CostModelPolicy":
        return CostModelPolicy(self)


class CostModelPolicy(GrowthPolicy):
    """Greedy cost-model steering for a single task growth.

    Each candidate extension ``parent -> child`` is scored from the
    profile:

    * **communication saved** — dynamic def-use dependences whose
      producer is already in the task and whose consumer is ``child``
      become intra-task (no forward-ring transfer, no release delay);
    * **control locality** — every profiled traversal of the edge is
      a task-boundary prediction avoided;
    * **communication opened** — dependences ``child`` produces for
      consumers outside the task will cross the new boundary and must
      be forwarded (and can arrive late enough to stall or squash);
    * **speculation waste** — dynamic instances where the task ran
      ``parent`` but *not* this edge execute ``child``'s slot
      speculatively for nothing, and a mispredicted boundary there
      squashes the whole downstream task.

    ``child`` is admitted when the saved cost outweighs the predicted
    cost; static reconvergence joins are always admitted (the control
    flow heuristic's core asset).  All arithmetic is integer and all
    inputs are profiled counts, so growth is deterministic.
    """

    #: weight of an enclosed def-use occurrence vs an opened one
    COMM_SAVED_WEIGHT = 2
    COMM_OPENED_WEIGHT = 1
    #: weight of one untaken-path dynamic instance (squash proxy)
    SQUASH_WEIGHT = 1

    def __init__(self, book: CostBook) -> None:
        self.book = book
        self.members: Set[str] = set()
        # Per-machine weights from the book (class constants unless a
        # machine_hint reweighted them — see policy_weights).
        self.saved_weight, self.opened_weight, self.squash_weight = (
            book.weights
        )

    def on_include(self, label: str) -> None:
        self.members.add(label)

    def _reconverges(self, child: str) -> bool:
        return len(self.book.cfg.preds.get(child, ())) >= 2

    def allow(self, parent: str, child: str) -> bool:
        if self._reconverges(child):
            return True
        book = self.book
        deps = book.dependences
        saved = 0
        for idx in book.by_consumer.get(child, ()):
            if deps[idx].edge.def_block in self.members:
                saved += deps[idx].frequency
        opened = 0
        for idx in book.by_producer.get(child, ()):
            consumer = deps[idx].edge.use_block
            if consumer != child and consumer not in self.members:
                opened += deps[idx].frequency
        taken = book.edge_count(parent, child)
        untaken = max(book.block_count(parent) - taken, 0)
        gain = self.saved_weight * saved + taken
        cost = self.opened_weight * opened + self.squash_weight * untaken
        return gain > cost


class CostModelStrategy(SelectionStrategy):
    """Greedy profile-driven selector scoring predicted squash/comm cost.

    Runs the multi-block transforms (hoisting + communication
    scheduling; no unrolling — boundaries are chosen, not code
    reshaped), always profiles, absorbs no calls, and grows every
    task under :class:`CostModelPolicy`.
    """

    name = "cost_model"
    description = "greedy selector scoring profiled squash/comm cost"

    @classmethod
    def tunables(cls) -> Dict[str, object]:
        defaults = SelectionConfig()
        return {
            "max_targets": defaults.max_targets,
            "max_dependences": defaults.max_dependences,
            "hoist_induction": defaults.hoist_induction,
            "schedule_communication": defaults.schedule_communication,
            "machine_hint": defaults.machine_hint,
        }

    def transform(self, program: Program, config: SelectionConfig) -> None:
        if config.hoist_induction:
            hoist_induction_increments(program)
        if config.schedule_communication:
            schedule_register_communication(program)

    def wants_profile(self, config: SelectionConfig) -> bool:
        return True

    def build(
        self,
        partition: TaskPartition,
        contexts: Dict[str, GrowthContext],
        profile: Optional[Profile],
        config: SelectionConfig,
    ) -> None:
        assert profile is not None
        books = {
            fn.name: CostBook(fn, contexts[fn.name].cfg, profile, config)
            for fn in partition.program.functions()
        }
        cover_program(
            partition, contexts, lambda fname: books[fname].policy()
        )


# -------------------------------------------------------------- registry

_STRATEGIES: Dict[str, SelectionStrategy] = {}
#: names backed by the reference (paper) code path
REFERENCE_STRATEGIES = tuple(level.value for level in HeuristicLevel)


def register_strategy(cls: Type[SelectionStrategy],
                      name: Optional[str] = None) -> None:
    """Register a strategy instance under ``name`` (default: its name)."""
    key = name or cls.name
    if not key:
        raise ValueError("strategy needs a non-empty name")
    if key in _STRATEGIES:
        raise ValueError(f"duplicate strategy {key!r}")
    _STRATEGIES[key] = cls()


for _level in HeuristicLevel:
    register_strategy(PaperStrategy, _level.value)
register_strategy(TunableStrategy)
register_strategy(CostModelStrategy)


def strategy_names() -> List[str]:
    """Registered strategy names: reference levels first, then extras."""
    extras = sorted(set(_STRATEGIES) - set(REFERENCE_STRATEGIES))
    return list(REFERENCE_STRATEGIES) + extras


def get_strategy(config: SelectionConfig) -> SelectionStrategy:
    """The strategy a config dispatches to.

    ``config.strategy == ""`` resolves to the reference strategy of
    ``config.level`` — default configs hit the exact paper code path.
    """
    name = config.strategy or config.level.value
    try:
        return _STRATEGIES[name]
    except KeyError:
        known = ", ".join(strategy_names())
        raise ValueError(
            f"unknown selection strategy {name!r}; known: {known}"
        ) from None


def describe_strategies() -> List[Dict[str, object]]:
    """Machine-readable strategy listing (``repro list --strategies``)."""
    out: List[Dict[str, object]] = []
    for name in strategy_names():
        strategy = _STRATEGIES[name]
        out.append({
            "name": name,
            "kind": ("reference" if name in REFERENCE_STRATEGIES
                     else "extra"),
            "class": type(strategy).__name__,
            "description": strategy.description,
            "tunables": dict(strategy.tunables()),
        })
    return out
