"""Partition inspection: JSON and Graphviz DOT exports.

Tooling for understanding what the heuristics chose: dump a
:class:`~repro.compiler.task.TaskPartition` as structured JSON (for
diffing selections across heuristic levels or thresholds) or as a DOT
graph with one cluster per task (for rendering with Graphviz).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.compiler.task import TaskPartition
from repro.profiling import Profile


def partition_to_json(
    partition: TaskPartition, profile: Optional[Profile] = None
) -> str:
    """Serialise the partition (and optional profile counts) to JSON."""
    program = partition.program
    tasks: List[Dict] = []
    for task in partition.tasks():
        entry: Dict = {
            "id": task.task_id,
            "function": task.function,
            "root": list(task.root),
            "blocks": sorted(list(b) for b in task.blocks),
            "internal_edges": sorted(
                [list(src), list(dst)] for src, dst in task.internal_edges
            ),
            "targets": [str(t) for t in task.targets],
            "absorbed_calls": sorted(
                list(b) for b in task.absorbed_calls
            ),
            "static_size": task.static_size(program),
        }
        if profile is not None:
            entry["dynamic_block_counts"] = {
                f"{b[0]}:{b[1]}": profile.block_count(b)
                for b in sorted(task.blocks)
            }
        tasks.append(entry)
    payload = {
        "program": program.main_name,
        "task_count": len(partition),
        "tasks": tasks,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _dot_quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def partition_to_dot(
    partition: TaskPartition, function: Optional[str] = None
) -> str:
    """Render the partition as a Graphviz digraph.

    One cluster per task (blocks as nodes, internal edges solid);
    inter-task target edges are dashed.  ``function`` restricts the
    graph to one function's tasks (default: all).
    """
    lines: List[str] = ["digraph partition {", "  rankdir=TB;",
                        "  node [shape=box, fontsize=10];"]
    program = partition.program

    def node_id(block_id) -> str:
        return _dot_quote(f"{block_id[0]}:{block_id[1]}")

    for task in partition.tasks():
        if function is not None and task.function != function:
            continue
        lines.append(f"  subgraph cluster_task{task.task_id} {{")
        lines.append(
            f"    label={_dot_quote(f'task {task.task_id}')}; color=gray;"
        )
        for block_id in sorted(task.blocks):
            size = program.block(block_id).size
            label = f"{block_id[1]}\\n({size} insts)"
            shape = "box, style=bold" if block_id == task.root else "box"
            lines.append(
                f"    {node_id(block_id)}_{task.task_id} "
                f"[label={_dot_quote(label)}, shape={shape}];"
            )
        for src, dst in sorted(task.internal_edges):
            lines.append(
                f"    {node_id(src)}_{task.task_id} -> "
                f"{node_id(dst)}_{task.task_id};"
            )
        lines.append("  }")
    # Inter-task edges: task root -> target root (dashed).
    for task in partition.tasks():
        if function is not None and task.function != function:
            continue
        for target in task.targets:
            if target.block is None:
                continue
            if not partition.has_root(target.block):
                continue
            dst_task = partition.task_at(target.block)
            if function is not None and dst_task.function != function:
                continue
            lines.append(
                f"  {node_id(task.root)}_{task.task_id} -> "
                f"{node_id(dst_task.root)}_{dst_task.task_id} "
                "[style=dashed, color=blue];"
            )
    lines.append("}")
    return "\n".join(lines)
