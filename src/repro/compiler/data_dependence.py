"""The data dependence heuristic (Section 3.4, Figure 3).

The paper's ``dependence_task()`` integrates dependence steering into
the CFG traversal: a basic block is explored "only if it is dependent
on other basic blocks included in the task" — concretely, only blocks
in the *codependent set* of some dependence whose producer is already
in the task.  Combined with the observation that "the data dependence
heuristic terminates tasks as soon as a data dependence is included",
this yields the growth policy implemented here:

* while the task contains no dependence producer, grow exactly like
  the control flow heuristic (adjacent blocks, reconvergence);
* once one or more dependences are *open* (producer included, consumer
  not yet), explore only blocks on forward paths to an open consumer;
* once dependences have been *closed* (producer and consumer both
  included) and nothing remains open, stop growing.

Dependences are the function's register def-use chains, ranked by
profiled dynamic frequency; loop-carried dependences (consumer only
reachable through a back edge) have an empty codependent set and are
ignored here — they are inherently inter-task and are handled by
induction hoisting and the register ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.compiler.control_flow import GrowthPolicy
from repro.compiler.heuristics import SelectionConfig
from repro.ir.cfg import CFG
from repro.ir.dataflow import DefUseEdge, codependent_set, def_use_chains
from repro.ir.function import Function
from repro.profiling import Profile


@dataclass(frozen=True)
class RankedDependence:
    """A profiled def-use dependence with its codependent block set."""

    frequency: int
    edge: DefUseEdge
    codependent: FrozenSet[str]


def ranked_dependences(
    function: Function, cfg: CFG, profile: Profile, config: SelectionConfig
) -> List[RankedDependence]:
    """Inter-block def-use edges, most dynamically frequent first.

    Never-executed dependences and dependences with no forward
    producer→consumer path (loop-carried) are dropped; ties break on
    the edge's deterministic sort key.  At most
    ``config.max_dependences`` are returned (a compile-time guard).
    """
    ranked: List[Tuple[int, DefUseEdge]] = []
    for edge in def_use_chains(function, cfg):
        if not edge.crosses_blocks:
            continue
        freq = profile.defuse_count(function.name, edge)
        if freq > 0:
            ranked.append((freq, edge))
    ranked.sort(
        key=lambda item: (
            -item[0],
            item[1].def_block,
            item[1].def_index,
            item[1].use_block,
            item[1].use_index,
            item[1].register,
        )
    )
    out: List[RankedDependence] = []
    for freq, edge in ranked:
        if len(out) >= config.max_dependences:
            break
        codep = frozenset(codependent_set(cfg, edge))
        if codep:
            out.append(RankedDependence(freq, edge, codep))
    return out


class DependenceBook:
    """Per-function dependence index, shared across all task growths."""

    def __init__(
        self,
        function: Function,
        cfg: CFG,
        profile: Profile,
        config: SelectionConfig,
    ) -> None:
        self.cfg = cfg
        self.dependences = ranked_dependences(function, cfg, profile, config)
        self.by_producer: Dict[str, List[int]] = {}
        self.by_consumer: Dict[str, List[int]] = {}
        for idx, dep in enumerate(self.dependences):
            self.by_producer.setdefault(dep.edge.def_block, []).append(idx)
            self.by_consumer.setdefault(dep.edge.use_block, []).append(idx)

    def policy(self) -> "DependencePolicy":
        """A fresh growth policy for one task growth."""
        return DependencePolicy(self)


class DependencePolicy(GrowthPolicy):
    """Stateful dependence steering for a single task growth."""

    def __init__(self, book: DependenceBook) -> None:
        self.book = book
        self.members: set = set()
        self.open: set = set()  # dependence indices: producer in, consumer out
        self.closed_any = False

    def on_include(self, label: str) -> None:
        self.members.add(label)
        # Close open dependences whose consumer just arrived.
        for idx in self.book.by_consumer.get(label, ()):
            if idx in self.open:
                self.open.discard(idx)
                self.closed_any = True
        # Open dependences produced here (unless already satisfied).
        for idx in self.book.by_producer.get(label, ()):
            dep = self.book.dependences[idx]
            if dep.edge.use_block in self.members:
                self.closed_any = True
            else:
                self.open.add(idx)

    def _reconverges(self, child: str) -> bool:
        """``child`` is a static join point (>= 2 CFG predecessors).

        Reconverging paths are the control flow heuristic's core asset
        ("reconverging control flow paths can be exploited") and the
        data dependence heuristic is applied *in conjunction with* it,
        so join blocks stay included even when no dependence pulls
        growth toward them — including joins whose other arm is cold
        (a never-profiled side path has no ranked dependences at all).
        """
        return len(self.book.cfg.preds.get(child, ())) >= 2

    def allow(self, parent: str, child: str) -> bool:
        if self.open:
            # Steer along codependent sets toward open consumers;
            # always admit reconvergence joins.
            deps = self.book.dependences
            if any(child in deps[idx].codependent for idx in self.open):
                return True
            return self._reconverges(child)
        if self.closed_any:
            # Dependences enclosed, nothing open: stop growing except
            # through joins ("terminates tasks as soon as a dependence
            # is included", tempered by the control flow heuristic).
            return self._reconverges(child)
        # No dependence encountered yet: plain control flow growth.
        return True
