"""Heuristic levels and thresholds for task selection.

The paper evaluates a progression of heuristics (Sections 3.2–3.4,
Figure 5):

* ``BASIC_BLOCK`` — every basic block is a task (the baseline).
* ``CONTROL_FLOW`` — multi-block tasks grown greedily over the CFG,
  exploiting reconverging paths, with at most N successors (feasible
  task tracking); loop back/entry/exit edges and calls/returns
  terminate tasks.
* ``DATA_DEPENDENCE`` — applied on top of the control flow heuristic:
  profiled register def-use dependences, in decreasing frequency
  order, steer growth along codependent sets so dependences are
  enclosed or favourably scheduled.
* ``TASK_SIZE`` — additionally unrolls loops with bodies smaller than
  LOOP_THRESH static instructions and absorbs calls to functions
  smaller than CALL_THRESH dynamic instructions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Tuple


class HeuristicLevel(enum.Enum):
    """The paper's cumulative heuristic progression."""

    BASIC_BLOCK = "basic_block"
    CONTROL_FLOW = "control_flow"
    DATA_DEPENDENCE = "data_dependence"
    TASK_SIZE = "task_size"

    @property
    def rank(self) -> int:
        """Position in the progression (higher = more heuristics)."""
        return _RANK[self]


_RANK = {
    HeuristicLevel.BASIC_BLOCK: 0,
    HeuristicLevel.CONTROL_FLOW: 1,
    HeuristicLevel.DATA_DEPENDENCE: 2,
    HeuristicLevel.TASK_SIZE: 3,
}


@dataclass(frozen=True)
class SelectionConfig:
    """Task-selection parameters (defaults match Section 3.2 / 4.2)."""

    level: HeuristicLevel = HeuristicLevel.DATA_DEPENDENCE
    #: N — successors the hardware prediction tables can track
    max_targets: int = 4
    #: calls to functions with fewer dynamic instructions are absorbed
    call_thresh: int = 30
    #: loop bodies with fewer static instructions are unrolled up to it
    loop_thresh: int = 30
    #: cap on the unroll factor (guards degenerate 1-instruction loops)
    max_unroll: int = 8
    #: hoist induction-variable increments to loop tops (Section 3.3)
    hoist_induction: bool = True
    #: schedule loop-carried chains early within blocks (Section 3.3 / [18])
    schedule_communication: bool = True
    #: cap on profiled def-use dependences processed per function
    max_dependences: int = 512
    #: selection strategy name ("" = the paper reference strategy for
    #: ``level``); see :mod:`repro.compiler.strategy` for the registry
    strategy: str = ""
    #: machine preset the selection is tuned for ("" = the paper
    #: machine).  Only the ``cost_model`` strategy reads it — it
    #: reweights the growth policy by the target's ring reach and
    #: issue width (see :func:`repro.compiler.strategy.policy_weights`)
    machine_hint: str = ""
    #: CFG exploration order during task growth ("bfs" = the paper's
    #: worklist order; "dfs" explores depth-first — a tunable gene)
    traversal: str = "bfs"

    def __post_init__(self) -> None:
        if self.max_targets < 1:
            raise ValueError("max_targets must be >= 1")
        if self.max_unroll < 1:
            raise ValueError("max_unroll must be >= 1")
        if self.traversal not in ("bfs", "dfs"):
            raise ValueError(
                f"traversal must be 'bfs' or 'dfs', got {self.traversal!r}"
            )

    def cache_key(self) -> Tuple:
        """Explicit, collision-free compile-cache identity.

        Covers **every** dataclass field by name (so a newly added
        genome field can never silently alias cache entries the way a
        hand-picked tuple once did) plus the *resolved* strategy name
        (the paper levels and an explicitly named reference strategy
        are the same code path and must share cached artifacts).
        Field values are reduced to primitives: enums by value —
        nothing here may depend on ``hash()`` or object identity.
        """
        resolved = self.strategy or self.level.value
        items = []
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, enum.Enum):
                value = value.value
            items.append((f.name, value))
        return (type(self).__name__, resolved) + tuple(items)

    @property
    def multi_block(self) -> bool:
        """True when tasks may span multiple basic blocks."""
        return self.level is not HeuristicLevel.BASIC_BLOCK

    @property
    def use_data_dependence(self) -> bool:
        """True when the data dependence heuristic steers growth."""
        return self.level.rank >= HeuristicLevel.DATA_DEPENDENCE.rank

    @property
    def use_task_size(self) -> bool:
        """True when unrolling / call absorption are applied."""
        return self.level is HeuristicLevel.TASK_SIZE
