"""IR transforms used by the task size heuristic and scheduling.

* :func:`unroll_loop` / :func:`unroll_small_loops` — replicate small
  loop bodies so that short-loop tasks reach LOOP_THRESH instructions
  (Section 3.2).
* :func:`hoist_induction_increments` — move induction variable
  increments to the top of loops "so that later iterations get the
  values of the induction variables from earlier iterations without
  any delay" (Section 3.3).  Semantics are preserved by rewriting
  body uses of the induction register to a compensated temporary.

All transforms mutate the program in place and invalidate its PC
layout; callers should work on a cloned program
(:func:`clone_program`).
"""

from __future__ import annotations

import copy
import math
from typing import Dict, List, Optional, Set

from repro.ir.block import BasicBlock
from repro.ir.cfg import CFG, Loop, build_cfg
from repro.ir.dataflow import live_registers
from repro.ir.function import Function
from repro.ir.instructions import (
    FP_REGISTER_COUNT,
    INT_REGISTER_COUNT,
    Instruction,
    Opcode,
)
from repro.ir.program import Program


def clone_program(program: Program) -> Program:
    """Deep-copy ``program`` so transforms leave the original intact."""
    clone = copy.deepcopy(program)
    clone.invalidate_layout()
    return clone


# --------------------------------------------------------------- unrolling


def loop_static_size(function: Function, loop: Loop) -> int:
    """Static instruction count of the loop body."""
    return sum(function.block(lbl).size for lbl in loop.body)


def _is_simple_loop(cfg: CFG, loop: Loop) -> bool:
    """Single back edge and no nested loop headers inside."""
    if len(loop.back_edges) != 1:
        return False
    for other in cfg.loops:
        if other is loop:
            continue
        if other.header in loop.body:
            return False
    return True


def _expansion_candidate(
    function: Function,
    loop: Loop,
    live_in: Dict[str, Set[str]],
) -> Optional[int]:
    """Index in the back block of an expandable induction increment.

    Requirements: a ``r = r ± imm`` with ``r`` defined exactly once in
    the loop, and ``r`` dead at every loop exit target (expansion
    over-advances ``r`` on early exits, so it must not be observable).
    """
    back_src, _header = loop.back_edges[0]
    back_blk = function.block(back_src)
    defs = _loop_defs(function, loop)
    for idx, ins in enumerate(back_blk.instructions):
        if (
            ins.opcode in (Opcode.ADD, Opcode.SUB)
            and ins.imm is not None
            and len(ins.srcs) == 1
            and ins.dst == ins.srcs[0]
            and defs.get(ins.dst, 0) == 1
        ):
            reg = ins.dst
            dead_at_exits = True
            for label in loop.body:
                for succ in function.block(label).successor_labels():
                    if succ not in loop.body and reg in live_in.get(succ, set()):
                        dead_at_exits = False
            if dead_at_exits:
                return idx
    return None


def _rewrite_induction_to_temp(
    function: Function, loop: Loop, inc_index: int, temp: str
) -> Instruction:
    """Rewrite the loop to track the induction value in ``temp``.

    The increment becomes ``temp = temp ± imm`` in place, and every
    use of the register inside the loop reads ``temp``; positions are
    preserved, so per-iteration values are unchanged.  Returns the
    original increment instruction (for the header prologue).
    """
    back_src, _header = loop.back_edges[0]
    back_blk = function.block(back_src)
    inc = back_blk.instructions[inc_index]
    reg = inc.dst
    assert reg is not None

    def rewrite(ins: Instruction) -> Instruction:
        if reg in ins.srcs:
            srcs = tuple(temp if s == reg else s for s in ins.srcs)
            return Instruction(ins.opcode, ins.dst, srcs, ins.imm, ins.target)
        return ins

    for label in loop.body:
        blk = function.block(label)
        blk.instructions[:] = [rewrite(i) for i in blk.instructions]
    back_blk.instructions[inc_index] = Instruction(
        inc.opcode, temp, (temp,), inc.imm
    )
    return inc


def unroll_loop(
    function: Function,
    cfg: CFG,
    loop: Loop,
    factor: int,
    live_in: Optional[Dict[str, Set[str]]] = None,
    expand_induction: bool = True,
    program: Optional[Program] = None,
) -> bool:
    """Unroll ``loop`` by ``factor`` via body replication with exits.

    The original body is iteration 0; ``factor - 1`` copies are chained
    through the back edge, and the last copy's back edge returns to the
    original header.  Loop-exit edges are kept per copy, so any trip
    count remains correct.  Returns False (no change) for non-simple
    loops or ``factor < 2``.

    When ``expand_induction`` holds and the loop has a safe induction
    increment, the register is advanced by ``factor * imm`` once at the
    top of the unrolled body and per-copy values are tracked in a fresh
    temporary — without this, the cross-task induction value would only
    be produced at the *end* of the unrolled task, serialising
    successive tasks on the register ring.
    """
    if factor < 2 or not _is_simple_loop(cfg, loop):
        return False
    back_src, header = loop.back_edges[0]
    body = sorted(loop.body)

    prologue: List[Instruction] = []
    if expand_induction and live_in is not None and program is not None:
        inc_index = _expansion_candidate(function, loop, live_in)
        temp = None
        if inc_index is not None:
            inc_dst = function.block(back_src).instructions[inc_index].dst
            assert inc_dst is not None
            temp = _free_register(program, fp=inc_dst.startswith("f"))
        if inc_index is not None and temp is not None:
            inc = _rewrite_induction_to_temp(function, loop, inc_index, temp)
            assert inc.dst is not None and inc.imm is not None
            total = inc.imm * factor
            undo = Opcode.SUB if inc.opcode is Opcode.ADD else Opcode.ADD
            prologue = [
                Instruction(inc.opcode, inc.dst, (inc.dst,), total),
                Instruction(undo, temp, (inc.dst,), total),
            ]

    def copy_label(label: str, k: int) -> str:
        return f"{label}#u{k}"

    # Create copies 1..factor-1.
    for k in range(1, factor):
        for label in body:
            orig = function.block(label)
            new_insts: List[Instruction] = []
            for ins in orig.instructions:
                if ins.target is not None and ins.target in loop.body:
                    if label == back_src and ins.target == header:
                        # Back edge of copy k: chain to the next copy,
                        # or close the loop from the last copy.
                        nxt = copy_label(header, k + 1) if k + 1 < factor else header
                        new_insts.append(
                            Instruction(
                                ins.opcode, ins.dst, ins.srcs, ins.imm, nxt
                            )
                        )
                    else:
                        new_insts.append(
                            Instruction(
                                ins.opcode,
                                ins.dst,
                                ins.srcs,
                                ins.imm,
                                copy_label(ins.target, k),
                            )
                        )
                else:
                    new_insts.append(ins)
            fallthrough = orig.fallthrough
            if fallthrough is not None and fallthrough in loop.body:
                if label == back_src and fallthrough == header:
                    fallthrough = (
                        copy_label(header, k + 1) if k + 1 < factor else header
                    )
                else:
                    fallthrough = copy_label(fallthrough, k)
            function.add_block(
                BasicBlock(
                    label=copy_label(label, k),
                    instructions=new_insts,
                    fallthrough=fallthrough,
                )
            )

    # Redirect iteration 0's back edge into copy 1.
    blk0 = function.block(back_src)
    first_copy_header = copy_label(header, 1)
    term = blk0.terminator
    if term is not None and term.target == header:
        blk0.instructions[-1] = Instruction(
            term.opcode, term.dst, term.srcs, term.imm, first_copy_header
        )
    if blk0.fallthrough == header:
        blk0.fallthrough = first_copy_header
    if prologue:
        function.block(header).instructions[:0] = prologue
    return True


def unroll_small_loops(
    program: Program,
    loop_thresh: int,
    max_unroll: int = 8,
    expand_induction: bool = True,
) -> int:
    """Unroll every simple innermost loop smaller than ``loop_thresh``.

    Returns the number of loops unrolled.  CFGs are rebuilt per
    function after each unroll (copies must not be re-unrolled, which
    the size test guarantees once the body reaches the threshold).
    """
    unrolled = 0
    for function in program.functions():
        cfg = build_cfg(function)
        # Snapshot loops first: unrolling invalidates the CFG.
        candidates = [
            loop
            for loop in cfg.loops
            if _is_simple_loop(cfg, loop)
            and 0 < loop_static_size(function, loop) < loop_thresh
        ]
        for loop in candidates:
            size = loop_static_size(function, loop)
            factor = min(max_unroll, max(2, math.ceil(loop_thresh / size)))
            # Re-derive the CFG so nested bookkeeping stays consistent.
            cfg = build_cfg(function)
            live = {lp.header: lp for lp in cfg.loops}
            current = live.get(loop.header)
            if current is None:
                continue
            live_in = live_registers(function, cfg)
            if unroll_loop(
                function,
                cfg,
                current,
                factor,
                live_in=live_in,
                expand_induction=expand_induction,
                program=program,
            ):
                unrolled += 1
    if unrolled:
        program.invalidate_layout()
    return unrolled


# ---------------------------------------------------------------- hoisting


def _free_register(program: Program, fp: bool) -> Optional[str]:
    """An architectural register never mentioned anywhere in ``program``.

    Registers are a single global file shared across calls, so a
    temporary that is merely unused in one function could still be
    clobbered by (or clobber) a callee or caller — the scan must be
    program-wide.
    """
    used: Set[str] = set()
    for function in program.functions():
        for blk in function.blocks():
            for ins in blk.instructions:
                used.update(ins.srcs)
                if ins.dst is not None:
                    used.add(ins.dst)
    prefix, count = ("f", FP_REGISTER_COUNT) if fp else ("r", INT_REGISTER_COUNT)
    start = 1  # r0 is hard-wired zero
    for i in range(count - 1, start - 1, -1):
        name = f"{prefix}{i}"
        if name not in used:
            return name
    return None


def _loop_defs(function: Function, loop: Loop) -> Dict[str, int]:
    """Times each register is statically defined inside the loop."""
    counts: Dict[str, int] = {}
    for label in loop.body:
        for ins in function.block(label).instructions:
            if ins.writes is not None:
                counts[ins.writes] = counts.get(ins.writes, 0) + 1
    return counts


def hoist_induction_increments(program: Program) -> int:
    """Hoist ``r = r ± imm`` increments to loop headers where safe.

    Safety conditions (checked per candidate):

    * simple innermost loop with a single back edge;
    * the increment sits in the back-edge source block and is the only
      definition of its register in the loop;
    * every loop exit either leaves from the back-edge source block
      (where the increment has already executed in the original code)
      or the register is dead at the exit target.

    Uses of the register elsewhere in the body are rewritten to a
    fresh temporary ``t = r - imm`` computed right after the hoisted
    increment, preserving per-iteration values exactly.

    Returns the number of increments hoisted.
    """
    hoisted = 0
    for function in program.functions():
        cfg = build_cfg(function)
        live_in = live_registers(function, cfg)
        for loop in cfg.loops:
            if not _is_simple_loop(cfg, loop):
                continue
            back_src, header = loop.back_edges[0]
            back_blk = function.block(back_src)
            defs = _loop_defs(function, loop)
            # Find a candidate increment in the back block.
            cand_idx: Optional[int] = None
            for idx, ins in enumerate(back_blk.instructions):
                if (
                    ins.opcode in (Opcode.ADD, Opcode.SUB)
                    and ins.imm is not None
                    and len(ins.srcs) == 1
                    and ins.dst == ins.srcs[0]
                    and defs.get(ins.dst, 0) == 1
                ):
                    cand_idx = idx
                    break
            if cand_idx is None:
                continue
            inc = back_blk.instructions[cand_idx]
            reg = inc.dst
            assert reg is not None
            # Exit safety.
            safe = True
            for label in loop.body:
                for succ in function.block(label).successor_labels():
                    if succ in loop.body:
                        continue
                    if label == back_src:
                        continue  # increment already done there
                    if reg in live_in.get(succ, set()):
                        safe = False
            if not safe:
                continue
            # Uses of reg before the increment in the back block, or in
            # any other body block, must see the pre-increment value.
            temp = _free_register(program, fp=reg.startswith("f"))
            if temp is None:
                continue

            def rewrite(ins2: Instruction) -> Instruction:
                if reg in ins2.srcs:
                    srcs = tuple(temp if s == reg else s for s in ins2.srcs)
                    return Instruction(
                        ins2.opcode, ins2.dst, srcs, ins2.imm, ins2.target
                    )
                return ins2

            compensate = Instruction(
                Opcode.SUB if inc.opcode is Opcode.ADD else Opcode.ADD,
                dst=temp,
                srcs=(reg,),
                imm=inc.imm,
            )
            for label in loop.body:
                blk = function.block(label)
                if label == back_src:
                    # Pre-increment uses see the old value via temp;
                    # post-increment uses keep the register.
                    blk.instructions[:cand_idx] = [
                        rewrite(i) for i in blk.instructions[:cand_idx]
                    ]
                elif label == header:
                    blk.instructions[:] = [rewrite(i) for i in blk.instructions]
                else:
                    blk.instructions[:] = [rewrite(i) for i in blk.instructions]
            del back_blk.instructions[cand_idx]
            header_blk = function.block(header)
            header_blk.instructions[:0] = [inc, compensate]
            hoisted += 1
        if hoisted:
            program.invalidate_layout()
    return hoisted
