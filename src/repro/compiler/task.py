"""The static task model.

A Multiscalar task (Section 2.2) is a connected, single-entry subgraph
of a function's CFG: dynamically it is entered only at its *root*
block and left whenever control crosses a non-internal edge.  Tasks may
overlap (task-code replication): a block can be internal to one task
and the root of another.  A :class:`TaskPartition` indexes tasks by
root block and guarantees that every possible inter-task transition
target has a task rooted at it.

Each task exposes an ordered list of :class:`Target` descriptors — the
"successors" the hardware inter-task predictor chooses among.  The
hardware tracks at most N of them (N = 4 in the paper); targets beyond
the table width always mispredict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.ir.block import BlockId
from repro.ir.program import Program

TaskEdge = Tuple[BlockId, BlockId]


class TargetKind(enum.Enum):
    """How a task transfers control to its successor."""

    BLOCK = "block"  #: falls/branches to another block of the same function
    CALL = "call"  #: calls a (non-absorbed) function; target is its entry
    RETURN = "return"  #: returns to the caller; target is dynamic
    HALT = "halt"  #: program end


@dataclass(frozen=True)
class Target:
    """One successor of a task.

    ``block`` is the successor's root block for BLOCK and CALL kinds
    and ``None`` for RETURN / HALT (resolved dynamically or final).
    """

    kind: TargetKind
    block: Optional[BlockId] = None

    @property
    def sort_key(self):
        """Deterministic ordering key (kind name, then block id)."""
        return (self.kind.value, self.block or ("", ""))

    def __lt__(self, other: "Target") -> bool:
        return self.sort_key < other.sort_key

    def __str__(self) -> str:
        if self.block is not None:
            return f"{self.kind.value}:{self.block[0]}:{self.block[1]}"
        return self.kind.value


@dataclass
class Task:
    """A static task: root block, member blocks, internal edges, targets."""

    task_id: int
    function: str
    root: BlockId
    blocks: FrozenSet[BlockId]
    internal_edges: FrozenSet[TaskEdge]
    targets: Tuple[Target, ...]
    #: call blocks inside this task whose callee is absorbed (executed
    #: within the task rather than terminating it)
    absorbed_calls: FrozenSet[BlockId] = frozenset()

    @property
    def block_count(self) -> int:
        """Number of member basic blocks."""
        return len(self.blocks)

    @property
    def target_count(self) -> int:
        """Number of distinct successors."""
        return len(self.targets)

    def is_internal(self, src: BlockId, dst: BlockId) -> bool:
        """True if the dynamic transition ``src -> dst`` stays in-task."""
        return (src, dst) in self.internal_edges

    def target_index(self, target: Target) -> Optional[int]:
        """Position of ``target`` in the ordered target list, else None."""
        try:
            return self.targets.index(target)
        except ValueError:
            return None

    def static_size(self, program: Program) -> int:
        """Static instruction count over member blocks."""
        return sum(program.block(b).size for b in self.blocks)

    def validate(self, program: Program) -> None:
        """Check task invariants; raise ``ValueError`` on violation.

        * root is a member block; all members are in ``function``;
        * internal edges connect member blocks;
        * every member is reachable from the root via internal edges
          (connected, single entry);
        * internal edges are acyclic (a dynamic instance never revisits
          a block — re-entry is only at the root, i.e. a new instance).
        """
        if self.root not in self.blocks:
            raise ValueError(f"task {self.task_id}: root not a member block")
        for blk in self.blocks:
            if blk[0] != self.function:
                raise ValueError(
                    f"task {self.task_id}: block {blk} outside {self.function!r}"
                )
            program.block(blk)  # raises KeyError if missing
        adj: Dict[BlockId, List[BlockId]] = {b: [] for b in self.blocks}
        for src, dst in self.internal_edges:
            if src not in self.blocks or dst not in self.blocks:
                raise ValueError(
                    f"task {self.task_id}: internal edge {src}->{dst} "
                    "leaves the member set"
                )
            adj[src].append(dst)
        # Reachability from root.
        seen: Set[BlockId] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adj[node])
        if seen != set(self.blocks):
            missing = set(self.blocks) - seen
            raise ValueError(
                f"task {self.task_id}: blocks unreachable from root: "
                f"{sorted(missing)}"
            )
        # Acyclicity via iterative DFS colouring.
        colour: Dict[BlockId, int] = {}
        for start in self.blocks:
            if colour.get(start, 0):
                continue
            stack2: List[Tuple[BlockId, int]] = [(start, 0)]
            colour[start] = 1
            while stack2:
                node, idx = stack2[-1]
                children = adj[node]
                if idx < len(children):
                    stack2[-1] = (node, idx + 1)
                    child = children[idx]
                    state = colour.get(child, 0)
                    if state == 1:
                        raise ValueError(
                            f"task {self.task_id}: internal cycle through {child}"
                        )
                    if state == 0:
                        colour[child] = 1
                        stack2.append((child, 0))
                else:
                    colour[node] = 2
                    stack2.pop()

    def __str__(self) -> str:
        blocks = ", ".join(sorted(f"{b[1]}" for b in self.blocks))
        targets = ", ".join(str(t) for t in self.targets)
        return (
            f"task#{self.task_id} root={self.root[1]} in {self.function} "
            f"blocks=[{blocks}] targets=[{targets}]"
        )


class TaskPartition:
    """All tasks selected for a program, indexed by root block."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._by_root: Dict[BlockId, Task] = {}
        self._next_id = 0
        #: dynamic trace of ``program`` recorded while profiling for
        #: selection, when a profile was taken.  Selection never
        #: mutates the program after profiling, so callers that would
        #: re-interpret the same program (same input) can reuse this.
        self.profile_trace = None

    def new_task(
        self,
        function: str,
        root: BlockId,
        blocks: Set[BlockId],
        internal_edges: Set[TaskEdge],
        targets: List[Target],
        absorbed_calls: Set[BlockId] = frozenset(),
    ) -> Task:
        """Create, register, and return a task rooted at ``root``."""
        if root in self._by_root:
            raise ValueError(f"a task is already rooted at {root}")
        task = Task(
            task_id=self._next_id,
            function=function,
            root=root,
            blocks=frozenset(blocks),
            internal_edges=frozenset(internal_edges),
            targets=tuple(targets),
            absorbed_calls=frozenset(absorbed_calls),
        )
        self._next_id += 1
        self._by_root[root] = task
        return task

    def replace_task(self, task: Task) -> None:
        """Replace the task rooted at ``task.root`` (used by expansion)."""
        if task.root not in self._by_root:
            raise ValueError(f"no task rooted at {task.root}")
        self._by_root[task.root] = task

    def has_root(self, root: BlockId) -> bool:
        """True if some task is rooted at ``root``."""
        return root in self._by_root

    def task_at(self, root: BlockId) -> Task:
        """The task rooted at ``root``; ``KeyError`` if none."""
        return self._by_root[root]

    def tasks(self) -> Iterator[Task]:
        """Iterate all tasks, in root order (deterministic)."""
        for root in sorted(self._by_root):
            yield self._by_root[root]

    def __len__(self) -> int:
        return len(self._by_root)

    def tasks_containing(self, block: BlockId) -> List[Task]:
        """All tasks that include ``block`` as a member."""
        return [t for t in self.tasks() if block in t.blocks]

    def validate(self) -> None:
        """Validate every task and the partition-level closure property:

        every BLOCK / CALL target of every task has a task rooted at
        it, and the entry of ``main`` is rooted.
        """
        program = self.program
        main_entry = (program.main_name, program.main.entry_label)
        if main_entry not in self._by_root:
            raise ValueError("no task rooted at the program entry")
        for task in self.tasks():
            task.validate(program)
            for target in task.targets:
                if target.block is not None and target.block not in self._by_root:
                    raise ValueError(
                        f"task {task.task_id} target {target} has no rooted task"
                    )
