"""The paper's contribution: compiler task selection for Multiscalar.

Public surface:

* :class:`~repro.compiler.heuristics.HeuristicLevel` and
  :class:`~repro.compiler.heuristics.SelectionConfig` — which heuristics
  to apply (the paper's progression: basic block → control flow →
  data dependence → + task size) and their thresholds (N = 4 targets,
  CALL_THRESH = 30, LOOP_THRESH = 30).
* :func:`~repro.compiler.partition.select_tasks` — the driver; returns
  a :class:`~repro.compiler.task.TaskPartition`.
* :class:`~repro.compiler.task.Task` /
  :class:`~repro.compiler.task.TaskPartition` — the static task model
  (connected single-entry CFG subgraphs, possibly overlapping).
* :mod:`~repro.compiler.transforms` — loop unrolling and induction
  increment hoisting.
* :mod:`~repro.compiler.regcomm` — register communication release
  points (dead register analysis).
* :mod:`~repro.compiler.strategy` — the pluggable
  :class:`~repro.compiler.strategy.SelectionStrategy` registry the
  driver dispatches through (paper reference strategies plus
  ``tunable`` and ``cost_model``).
"""

from repro.compiler.heuristics import HeuristicLevel, SelectionConfig
from repro.compiler.partition import select_tasks
from repro.compiler.strategy import (
    SelectionStrategy,
    describe_strategies,
    get_strategy,
    register_strategy,
    strategy_names,
)
from repro.compiler.task import Target, TargetKind, Task, TaskPartition

__all__ = [
    "HeuristicLevel",
    "SelectionConfig",
    "SelectionStrategy",
    "Target",
    "TargetKind",
    "Task",
    "TaskPartition",
    "describe_strategies",
    "get_strategy",
    "register_strategy",
    "select_tasks",
    "strategy_names",
]
