"""Register communication scheduling (Section 3.3 / [18]).

The Multiscalar compiler schedules instructions so that producers of
inter-task values execute *early* in their task and consumers *late*.
The dominant case is loop-carried register chains: with tasks that are
loop iterations, the next task stalls until the carried value arrives,
so the instructions that compute it should sit at the top of the task.

This pass reorders instructions *within* basic blocks: the local
dependence chain feeding each block's last definition of a loop-carried
register is hoisted to the front (original relative order preserved
within groups), independent work sinks behind it.  On an in-order PU
this converts a serial inter-task chain into a software pipeline: the
chain advances as soon as its input arrives while the independent tail
of the previous task still executes.

Legality: the chain set is closed under local RAW producers by
construction; WAR / WAW hazards and memory ordering are handled by
pulling conflicting earlier instructions into the chain as well, so
the reordered block computes exactly the same values.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.block import BasicBlock
from repro.ir.cfg import build_cfg
from repro.ir.dataflow import live_registers
from repro.ir.function import Function
from repro.ir.program import Program


def carried_registers(function: Function) -> Dict[str, Set[str]]:
    """Per block: registers whose value is consumed by a later iteration.

    A register defined in a loop block and live-in at that loop's
    header flows around the back edge — its final in-block definition
    anchors the inter-task chain.
    """
    cfg = build_cfg(function)
    live_in = live_registers(function, cfg)
    result: Dict[str, Set[str]] = {lbl: set() for lbl in function.labels()}
    for loop in cfg.loops:
        header_live = live_in.get(loop.header, set())
        for label in loop.body:
            blk = function.block(label)
            defined = {
                ins.writes for ins in blk.instructions if ins.writes is not None
            }
            result[label] |= defined & header_live
    return result


def _schedule_block(blk: BasicBlock, carried: Set[str]) -> bool:
    """Hoist the carried-register chain to the block front.

    Returns True if the instruction order changed.
    """
    term = blk.terminator
    body = blk.instructions[:-1] if term is not None else blk.instructions[:]
    n = len(body)
    if n < 2 or not carried:
        return False

    # Local producers: for each instruction, the indices of the latest
    # preceding definitions of its source registers.
    last_def: Dict[str, int] = {}
    producers: List[List[int]] = []
    last_def_of_reg: Dict[str, int] = {}
    for i, ins in enumerate(body):
        producers.append([last_def[r] for r in ins.reads if r in last_def])
        if ins.writes is not None:
            last_def[ins.writes] = i
            last_def_of_reg[ins.writes] = i

    def raw_closure(seed: int) -> Set[int]:
        out = {seed}
        stack = [seed]
        while stack:
            i = stack.pop()
            for p in producers[i]:
                if p not in out:
                    out.add(p)
                    stack.append(p)
        return out

    # Seed candidates: the final definitions of carried registers.
    # Hoisting only pays when the chain is a small prefix of the block
    # (independent work must remain behind it to overlap), so seeds
    # are taken greedily by closure size up to half the block.
    seeds = sorted(
        (last_def_of_reg[reg] for reg in carried if reg in last_def_of_reg)
    )
    if not seeds:
        return False
    budget = max(2, n // 2)
    chain: Set[int] = set()
    for seed in sorted(seeds, key=lambda s: len(raw_closure(s))):
        candidate = chain | raw_closure(seed)
        if len(candidate) <= budget:
            chain = candidate
    if not chain:
        return False

    # Hazard closure: an earlier non-chain instruction that conflicts
    # with a later chain instruction must move with it.
    changed = True
    while changed:
        changed = False
        chain_mem = [i for i in chain if body[i].opcode.is_memory]
        for i in sorted(chain):
            ins = body[i]
            for j in range(i):
                if j in chain:
                    continue
                other = body[j]
                conflict = False
                if other.writes is not None and other.writes == ins.writes:
                    conflict = True  # WAW: last-def order must hold
                if ins.writes is not None and ins.writes in other.reads:
                    conflict = True  # WAR: the old value must be read first
                if other.opcode.is_memory and any(m > j for m in chain_mem):
                    conflict = True  # memory program order
                if conflict:
                    chain.add(j)
                    stack = [j]
                    while stack:
                        k = stack.pop()
                        for p in producers[k]:
                            if p not in chain:
                                chain.add(p)
                                stack.append(p)
                    changed = True
        # (loop until no new conflicts)

    if len(chain) >= n:
        return False
    order = sorted(chain) + [i for i in range(n) if i not in chain]
    if order == list(range(n)):
        return False
    new_body = [body[i] for i in order]
    if term is not None:
        blk.instructions[:] = new_body + [term]
    else:
        blk.instructions[:] = new_body
    return True


def schedule_register_communication(program: Program) -> int:
    """Apply communication scheduling to every block; return #changed."""
    changed = 0
    for function in program.functions():
        carried = carried_registers(function)
        for blk in function.blocks():
            if _schedule_block(blk, carried[blk.label]):
                changed += 1
    if changed:
        program.invalidate_layout()
    return changed
