"""The control flow heuristic: terminal rules and greedy task growth.

This is the paper's basic selection process (Section 3.1) plus the
control flow heuristic (Section 3.3):

* **Terminal nodes** — blocks whose successors are never included in
  the same task: returns, halts, and calls to non-absorbed functions.
* **Terminal edges** — CFG back edges (``dfs_num`` test), loop entry
  edges, and loop exit edges.  (The OCR of Figure 3 inverts these
  predicates; we implement the semantics of the prose.)
* **Greedy growth with feasible-task tracking** — exploration
  continues past the N-target limit hoping for reconvergence; the
  final task is the longest inclusion prefix with at most N targets.

The same grower serves the data dependence heuristic via the
``policy`` hook: a :class:`GrowthPolicy` observes inclusions and vetoes
candidate blocks (the paper's ``codependent()`` steering).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.compiler.heuristics import SelectionConfig
from repro.compiler.task import Target, TargetKind
from repro.ir.block import BasicBlock, BlockId
from repro.ir.cfg import CFG
from repro.ir.program import Program


class GrowthPolicy:
    """Steering hook for task growth.

    The default policy is the pure control flow heuristic: every
    non-terminal child is explored.  The data dependence heuristic
    subclasses this (``repro.compiler.data_dependence``).
    """

    def on_include(self, label: str) -> None:
        """Called once per block included into the growing task."""

    def allow(self, parent: str, child: str) -> bool:
        """May ``child`` be explored from ``parent``?"""
        return True


class GrowthContext:
    """Per-function state shared by all task-growth calls."""

    def __init__(
        self,
        program: Program,
        function_name: str,
        cfg: CFG,
        config: SelectionConfig,
        absorbed_functions: Optional[Set[str]] = None,
    ) -> None:
        self.program = program
        self.function_name = function_name
        self.cfg = cfg
        self.config = config
        self.absorbed_functions = absorbed_functions or set()

    # ------------------------------------------------------ terminal rules

    def _block(self, label: str) -> BasicBlock:
        return self.program.function(self.function_name).block(label)

    def call_is_absorbed(self, label: str) -> bool:
        """True if the call ending block ``label`` is absorbed in-task."""
        blk = self._block(label)
        term = blk.terminator
        if term is None or term.target is None or not blk.ends_in_call:
            return False
        return term.target in self.absorbed_functions

    def is_terminal_node(self, label: str) -> bool:
        """Successors of terminal nodes never join the node's task."""
        blk = self._block(label)
        if blk.ends_in_return or blk.ends_in_halt:
            return True
        if blk.ends_in_call and not self.call_is_absorbed(label):
            return True
        return False

    def is_terminal_edge(self, src: str, dst: str) -> bool:
        """Back edges and loop entry/exit edges terminate tasks."""
        cfg = self.cfg
        return (
            cfg.is_back_edge(src, dst)
            or cfg.is_loop_entry_edge(src, dst)
            or cfg.is_loop_exit_edge(src, dst)
        )

    # -------------------------------------------------------- task targets

    def compute_targets(self, members: Set[str]) -> List[Target]:
        """Ordered distinct successors of the block set ``members``."""
        fn = self.function_name
        targets: Set[Target] = set()
        for label in members:
            blk = self._block(label)
            if blk.ends_in_return:
                targets.add(Target(TargetKind.RETURN))
                continue
            if blk.ends_in_halt:
                targets.add(Target(TargetKind.HALT))
                continue
            if blk.ends_in_call and not self.call_is_absorbed(label):
                term = blk.terminator
                assert term is not None and term.target is not None
                callee = self.program.function(term.target)
                assert callee.entry_label is not None
                targets.add(
                    Target(TargetKind.CALL, (term.target, callee.entry_label))
                )
                continue
            for succ in blk.successor_labels():
                if succ not in members or self.is_terminal_edge(label, succ):
                    targets.add(Target(TargetKind.BLOCK, (fn, succ)))
        return sorted(targets)

    def compute_internal_edges(
        self, members: Set[str]
    ) -> Set[Tuple[BlockId, BlockId]]:
        """Edges along which a dynamic instance stays inside the task."""
        fn = self.function_name
        edges: Set[Tuple[BlockId, BlockId]] = set()
        for label in members:
            if self.is_terminal_node(label):
                continue
            for succ in self._block(label).successor_labels():
                if succ in members and not self.is_terminal_edge(label, succ):
                    edges.add(((fn, label), (fn, succ)))
        return edges

    def absorbed_call_blocks(self, members: Set[str]) -> Set[BlockId]:
        """Member blocks whose call is absorbed into the task."""
        fn = self.function_name
        return {
            (fn, label)
            for label in members
            if self._block(label).ends_in_call and self.call_is_absorbed(label)
        }

    # -------------------------------------------------------------- growth

    def grow(self, root: str, policy: Optional[GrowthPolicy] = None) -> Set[str]:
        """Grow a task block set from ``root``; return the member labels.

        Growth is greedy BFS (the paper's worklist order): exploration
        continues past the N-target limit hoping for reconverging
        paths, and the longest feasible inclusion prefix (at most N
        targets) wins.  ``policy`` may veto candidate blocks (the data
        dependence heuristic).  ``config.traversal == "dfs"`` switches
        the frontier to a stack — same terminal rules and feasibility
        tracking, different inclusion order, hence different feasible
        prefixes (an autotuner gene; ``"bfs"`` is bit-identical to the
        reference pipeline).
        """
        if not self.config.multi_block:
            return {root}
        if policy is None:
            policy = GrowthPolicy()
        max_targets = self.config.max_targets
        dfs = self.config.traversal == "dfs"

        inclusion: List[str] = []
        members: Set[str] = set()

        def include(label: str) -> None:
            members.add(label)
            inclusion.append(label)
            policy.on_include(label)

        include(root)
        best_len = 1 if len(self.compute_targets(members)) <= max_targets else 0

        queue: List[str] = [root]
        qi = 0
        while queue if dfs else qi < len(queue):
            if dfs:
                label = queue.pop()
            else:
                label = queue[qi]
                qi += 1
            if self.is_terminal_node(label):
                continue
            succs = self._block(label).successor_labels()
            # A DFS stack pops from the end; reverse so the first
            # successor is explored first, mirroring the BFS order.
            for succ in (reversed(succs) if dfs else succs):
                if succ in members:
                    continue
                if self.is_terminal_edge(label, succ):
                    continue
                if not policy.allow(label, succ):
                    continue
                include(succ)
                queue.append(succ)
                if len(self.compute_targets(members)) <= max_targets:
                    best_len = len(inclusion)

        return set(inclusion[: max(best_len, 1)])
