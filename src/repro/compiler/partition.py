"""Task selection driver (the paper's ``task_selection()``).

Pipeline (Figure 3, Sections 3.1–3.4):

1. clone the program (transforms never touch the caller's IR);
2. task size heuristic: unroll small loops (TASK_SIZE level);
3. induction increment hoisting (all multi-block levels);
4. profile the transformed program functionally (needed by the data
   dependence ranking and the CALL_THRESH decision);
5. decide absorbed (small) callees (TASK_SIZE level);
6. coverage traversal: starting from the program entry, grow a task at
   every exposed target until all inter-task transitions are rooted.
   At the DATA_DEPENDENCE / TASK_SIZE levels each growth is steered by
   a :class:`~repro.compiler.data_dependence.DependencePolicy`.

The returned :class:`~repro.compiler.task.TaskPartition` owns the
transformed program (``partition.program``); run and simulate *that*
program, not the input.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from repro.compiler.control_flow import GrowthContext
from repro.compiler.data_dependence import DependenceBook
from repro.compiler.heuristics import HeuristicLevel, SelectionConfig
from repro.compiler.sched import schedule_register_communication
from repro.compiler.task import Task, TaskPartition
from repro.compiler.task_size import absorbed_functions
from repro.compiler.transforms import (
    clone_program,
    hoist_induction_increments,
    unroll_small_loops,
)
from repro.ir.block import BlockId
from repro.ir.cfg import build_cfg
from repro.ir.program import Program
from repro.ir.interp import run_program
from repro.profiling import Profile, profile_trace


def select_tasks(
    program: Program,
    config: Optional[SelectionConfig] = None,
    profile: Optional[Profile] = None,
    max_profile_instructions: int = 2_000_000,
) -> TaskPartition:
    """Partition ``program`` into Multiscalar tasks.

    ``profile`` may be supplied to reuse an existing profile **of the
    transformed program**; normally leave it ``None`` and the driver
    profiles internally after applying transforms.
    """
    config = config or SelectionConfig()
    prog = clone_program(program)
    if config.use_task_size:
        unroll_small_loops(prog, config.loop_thresh, config.max_unroll)
    if config.multi_block and config.hoist_induction:
        hoist_induction_increments(prog)
    if config.multi_block and config.schedule_communication:
        schedule_register_communication(prog)
    prog.validate()

    needs_profile = config.use_data_dependence or config.use_task_size
    profiled_trace = None
    if needs_profile and profile is None:
        # Keep the trace alongside the profile: selection only picks
        # task boundaries from here on (no further code changes), so
        # the caller can reuse it instead of re-interpreting the
        # program to obtain the measured trace.
        profiled_trace = run_program(
            prog, max_instructions=max_profile_instructions
        )
        profile = profile_trace(profiled_trace)

    absorbed: Set[str] = set()
    if config.use_task_size:
        assert profile is not None
        absorbed = absorbed_functions(prog, profile, config)

    contexts: Dict[str, GrowthContext] = {
        fn.name: GrowthContext(prog, fn.name, build_cfg(fn), config, absorbed)
        for fn in prog.functions()
    }
    books: Dict[str, DependenceBook] = {}
    if config.use_data_dependence:
        assert profile is not None
        books = {
            fn.name: DependenceBook(fn, contexts[fn.name].cfg, profile, config)
            for fn in prog.functions()
        }

    partition = TaskPartition(prog)
    if config.level is HeuristicLevel.BASIC_BLOCK:
        _basic_block_tasks(partition, contexts)
    else:
        _cover_program(partition, contexts, books)
    partition.validate()
    partition.profile_trace = profiled_trace
    return partition


def _basic_block_tasks(
    partition: TaskPartition, contexts: Dict[str, GrowthContext]
) -> None:
    """Root a single-block task at every block of every function."""
    for fname, context in contexts.items():
        function = context.program.function(fname)
        for label in function.labels():
            members = {label}
            partition.new_task(
                function=fname,
                root=(fname, label),
                blocks={(fname, label)},
                internal_edges=set(),
                targets=context.compute_targets(members),
                absorbed_calls=set(),
            )


def _task_successor_roots(task: Task, context: GrowthContext) -> List[BlockId]:
    """Roots this task's dynamic execution can expose.

    BLOCK and CALL targets directly; additionally the continuation of
    every non-absorbed call member block (entered when the callee
    returns) — it is a *successor of the callee's final task*, not of
    this one, but it must be rooted for the stream to proceed.
    """
    roots: List[BlockId] = []
    for target in task.targets:
        if target.block is not None:
            roots.append(target.block)
    program = context.program
    for block_id in sorted(task.blocks):
        blk = program.block(block_id)
        if blk.ends_in_call and block_id not in task.absorbed_calls:
            if blk.fallthrough is not None:
                roots.append((block_id[0], blk.fallthrough))
    return roots


def _cover_program(
    partition: TaskPartition,
    contexts: Dict[str, GrowthContext],
    books: Dict[str, DependenceBook],
) -> None:
    """Grow tasks from the entry until every exposed target is rooted."""
    program = partition.program
    main_entry: BlockId = (program.main_name, program.main.entry_label or "")
    worklist: Deque[BlockId] = deque([main_entry])
    processed: Set[BlockId] = set()

    while worklist:
        root = worklist.popleft()
        if root in processed:
            continue
        processed.add(root)
        fname, label = root
        context = contexts[fname]
        if partition.has_root(root):
            task = partition.task_at(root)
        else:
            policy = books[fname].policy() if fname in books else None
            members = context.grow(label, policy=policy)
            task = partition.new_task(
                function=fname,
                root=root,
                blocks={(fname, lbl) for lbl in members},
                internal_edges=context.compute_internal_edges(members),
                targets=context.compute_targets(members),
                absorbed_calls=context.absorbed_call_blocks(members),
            )
        for succ in _task_successor_roots(task, context):
            if succ not in processed:
                worklist.append(succ)
