"""Task selection driver (the paper's ``task_selection()``).

Pipeline (Figure 3, Sections 3.1–3.4):

1. clone the program (transforms never touch the caller's IR);
2. resolve the :class:`~repro.compiler.strategy.SelectionStrategy`
   named by the config (``""`` = the paper reference strategy for
   ``config.level``);
3. strategy transforms (unrolling, hoisting, communication
   scheduling — for the paper strategies exactly the level-gated
   progression of Figure 3);
4. profile the transformed program functionally iff the strategy
   wants one (data dependence ranking, CALL_THRESH, cost models);
5. strategy decides absorbed (small) callees;
6. strategy builds the partition — for the paper strategies a
   coverage traversal growing a task at every exposed target, steered
   by :class:`~repro.compiler.data_dependence.DependencePolicy` at
   the DATA_DEPENDENCE / TASK_SIZE levels.

The returned :class:`~repro.compiler.task.TaskPartition` owns the
transformed program (``partition.program``); run and simulate *that*
program, not the input.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.compiler.control_flow import GrowthContext
from repro.compiler.heuristics import SelectionConfig
from repro.compiler.strategy import get_strategy
from repro.compiler.task import TaskPartition
from repro.compiler.transforms import clone_program
from repro.ir.cfg import build_cfg
from repro.ir.program import Program
from repro.ir.interp import run_program
from repro.profiling import Profile, profile_trace


def select_tasks(
    program: Program,
    config: Optional[SelectionConfig] = None,
    profile: Optional[Profile] = None,
    max_profile_instructions: int = 2_000_000,
) -> TaskPartition:
    """Partition ``program`` into Multiscalar tasks.

    ``profile`` may be supplied to reuse an existing profile **of the
    transformed program**; normally leave it ``None`` and the driver
    profiles internally after applying transforms.
    """
    config = config or SelectionConfig()
    strategy = get_strategy(config)
    prog = clone_program(program)
    strategy.transform(prog, config)
    prog.validate()

    profiled_trace = None
    if strategy.wants_profile(config) and profile is None:
        # Keep the trace alongside the profile: selection only picks
        # task boundaries from here on (no further code changes), so
        # the caller can reuse it instead of re-interpreting the
        # program to obtain the measured trace.
        profiled_trace = run_program(
            prog, max_instructions=max_profile_instructions
        )
        profile = profile_trace(profiled_trace)

    absorbed: Set[str] = strategy.absorbed_functions(prog, profile, config)

    contexts: Dict[str, GrowthContext] = {
        fn.name: GrowthContext(prog, fn.name, build_cfg(fn), config, absorbed)
        for fn in prog.functions()
    }

    partition = TaskPartition(prog)
    strategy.build(partition, contexts, profile, config)
    partition.validate()
    partition.profile_trace = profiled_trace
    return partition
