"""The task size heuristic (Section 3.2).

Two mechanisms keep tasks out of the too-small regime without letting
them grow unbounded:

* **Loop unrolling** — loop bodies smaller than LOOP_THRESH static
  instructions are expanded to roughly LOOP_THRESH by body
  replication (delegated to :mod:`repro.compiler.transforms`).
* **Call absorption** — calls to functions with fewer than CALL_THRESH
  *dynamic* instructions per invocation (profiled, inclusive of
  callees) do not terminate tasks; the callee executes inside the
  caller's task.  The paper includes entire calls rather than inlining
  "because inlining may cause code-bloat".  Recursive functions are
  never absorbed (their dynamic size is unbounded in general and
  absorption could swallow arbitrarily much work).

Larger calls, loop entries, and loop exits always terminate tasks;
those rules live in :mod:`repro.compiler.control_flow`.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.compiler.heuristics import SelectionConfig
from repro.ir.program import Program
from repro.profiling import Profile


def recursive_functions(program: Program) -> Set[str]:
    """Functions on a call-graph cycle (directly or mutually recursive)."""
    graph: Dict[str, Set[str]] = {
        f.name: set(f.callees()) for f in program.functions()
    }
    recursive: Set[str] = set()
    for start in graph:
        # DFS from start; if start is reachable from one of its callees,
        # it sits on a cycle.
        stack = list(graph[start])
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node == start:
                recursive.add(start)
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
    return recursive


def absorbed_functions(
    program: Program, profile: Profile, config: SelectionConfig
) -> Set[str]:
    """Functions whose call sites are absorbed into the caller's task.

    A function qualifies when its profiled mean dynamic size (inclusive
    of callees) is below ``config.call_thresh`` and it is not
    recursive.  Functions never invoked in the profile are judged by
    static size instead (a conservative stand-in).
    """
    if not config.use_task_size:
        return set()
    recursive = recursive_functions(program)
    absorbed: Set[str] = set()
    for function in program.functions():
        if function.name == program.main_name:
            continue
        if function.name in recursive:
            continue
        mean = profile.mean_dynamic_call_size(function.name)
        size = mean if mean is not None else float(function.size)
        if size < config.call_thresh:
            absorbed.add(function.name)
    return absorbed
