"""Delta-debugging reducer for divergent generated programs.

Given a program and an *interestingness* predicate (normally "does
:func:`repro.synth.campaign.check_program` still report a
divergence?"), :func:`reduce_program` greedily shrinks the program
while the predicate keeps holding, producing a minimal reproducer a
human can actually read.

Reduction proceeds in passes, coarsest first, iterated to a fixpoint:

1. **drop functions** — strip every CALL to one callee (execution
   falls through to the continuation; a second variant replaces the
   CALL with ``LI``/``FLI reg, 0`` stubs for the callee's written
   registers so the must-defined lint stays satisfied) and prune the
   now-uncalled function;
2. **simplify branches** — turn a conditional branch into a plain
   fallthrough or an unconditional jump, collapsing one side of every
   diamond and breaking loops open;
3. **bypass blocks** — delete a block with a single successor,
   rerouting all inbound edges straight to that successor;
4. **drop instructions** — whole block bodies first, then halves,
   then single instructions (terminators stay; earlier passes own
   control flow);
5. **drop memory** — clear the initial memory image (loads of
   untouched addresses read zero anyway).

Every candidate must stay *viable* before the predicate even runs:
``Program.validate()`` passes, the well-formedness lint
(:func:`repro.ir.validate.well_formed`) is clean, and the interpreter
halts within a bounded instruction budget.  That keeps every reduced
reproducer a legal corpus program, not just a crash trigger.

Candidates are built by round-tripping through the assembly text
(:func:`parse_program` / :func:`program_to_text`), so the reducer
never aliases the caller's IR and the result is serialisable by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Callable, Iterator, List, Optional, Tuple

from repro.ir.asmtext import parse_program, program_to_text
from repro.ir.instructions import Instruction, Opcode
from repro.ir.interp import run_program
from repro.ir.program import Program
from repro.ir.validate import well_formed

Predicate = Callable[[Program], bool]


@dataclass
class ReduceStats:
    """Bookkeeping of one reduction: how hard the reducer worked."""

    rounds: int = 0
    candidates: int = 0
    accepted: int = 0
    initial_blocks: int = 0
    final_blocks: int = 0
    initial_instructions: int = 0
    final_instructions: int = 0

    def summary(self) -> str:
        return (
            f"reduced {self.initial_blocks} -> {self.final_blocks} blocks, "
            f"{self.initial_instructions} -> {self.final_instructions} "
            f"instructions ({self.rounds} round(s), "
            f"{self.candidates} candidate(s), {self.accepted} accepted)"
        )


def count_blocks(program: Program) -> int:
    return sum(len(f.labels()) for f in program.functions())


def _clone(program: Program) -> Program:
    return parse_program(program_to_text(program))


def _viable(program: Program, max_dynamic: int) -> bool:
    """Is ``program`` a legal, halting program worth testing?"""
    try:
        program.validate()
    except ValueError:
        return False
    if well_formed(program):
        return False
    try:
        run_program(program, max_instructions=max_dynamic)
    except Exception:
        return False
    return True


def reduce_program(
    program: Program,
    is_interesting: Predicate,
    max_dynamic: int = 200_000,
    max_rounds: int = 20,
    stats: Optional[ReduceStats] = None,
) -> Program:
    """Shrink ``program`` while ``is_interesting`` keeps holding.

    Raises ``ValueError`` if the input itself is not interesting (a
    reduction with a vacuous predicate would "minimise" to anything).
    Returns a fresh program; the input is never modified.
    """
    current = _clone(program)
    if not is_interesting(current):
        raise ValueError(
            "input program is not interesting; nothing to reduce"
        )
    if stats is None:
        stats = ReduceStats()
    stats.initial_blocks = count_blocks(current)
    stats.initial_instructions = current.size

    passes = (
        _drop_function_candidates,
        _branch_candidates,
        _bypass_candidates,
        _instruction_candidates,
        _memory_candidates,
    )
    for _ in range(max_rounds):
        stats.rounds += 1
        progress = False
        for make_candidates in passes:
            # Re-enumerate after every accepted edit: labels shift.
            accepted = True
            while accepted:
                accepted = False
                for candidate in make_candidates(current):
                    stats.candidates += 1
                    if not _viable(candidate, max_dynamic):
                        continue
                    if not is_interesting(candidate):
                        continue
                    current = candidate
                    stats.accepted += 1
                    progress = True
                    accepted = True
                    break
        if not progress:
            break
    stats.final_blocks = count_blocks(current)
    stats.final_instructions = current.size
    return current


# ------------------------------------------------------------------ passes


def _drop_function_candidates(program: Program) -> Iterator[Program]:
    """Strip all CALLs to one callee, then prune uncalled functions.

    Two variants per victim: a plain strip (execution falls through to
    the continuation), and — because the caller may read registers
    only the callee defined, which the must-defined lint rejects — a
    strip that replaces each CALL with ``LI``/``FLI reg, 0`` stubs for
    every register the victim's call closure writes.  The stubs keep
    the candidate well-formed; later instruction passes delete the
    ones nothing reads.
    """
    names = [f.name for f in program.functions() if f.name != program.main_name]
    for victim in reversed(names):
        for stub_defs in (False, True):
            candidate = _clone(program)
            stubs = (
                [_stub_define(reg) for reg in
                 sorted(_written_registers(candidate, victim))]
                if stub_defs else []
            )
            for func in candidate.functions():
                for blk in func.blocks():
                    body: List[Instruction] = []
                    for ins in blk.instructions:
                        if ins.opcode is Opcode.CALL and ins.target == victim:
                            body.extend(stubs)
                        else:
                            body.append(ins)
                    blk.instructions = body
            _prune_uncalled(candidate)
            if candidate.has_function(victim):
                continue  # still called from a live function? (cannot happen)
            candidate.invalidate_layout()
            yield candidate


def _written_registers(program: Program, root: str) -> set:
    """Registers written anywhere in ``root`` or its transitive callees."""
    seen = {root}
    stack = [root]
    regs: set = set()
    while stack:
        func = program.function(stack.pop())
        for blk in func.blocks():
            for ins in blk.instructions:
                if ins.writes is not None:
                    regs.add(ins.writes)
        for callee in func.callees():
            if callee not in seen and program.has_function(callee):
                seen.add(callee)
                stack.append(callee)
    return regs


def _stub_define(reg: str) -> Instruction:
    if reg.startswith("f"):
        return Instruction(Opcode.FLI, dst=reg, imm=0.0)
    return Instruction(Opcode.LI, dst=reg, imm=0)


def _branch_candidates(program: Program) -> Iterator[Program]:
    """Fallthrough-only and jump-only versions of every branch."""
    for fname, label, _ in _blocks_of(program):
        blk = program.function(fname).block(label)
        term = blk.terminator
        if term is None or not term.opcode.is_branch:
            continue
        # (a) branch never taken: drop it, keep the fallthrough.
        candidate = _clone(program)
        cblk = candidate.function(fname).block(label)
        cblk.instructions = cblk.instructions[:-1]
        _cleanup(candidate)
        yield candidate
        # (b) branch always taken: unconditional jump, no fallthrough.
        candidate = _clone(program)
        cblk = candidate.function(fname).block(label)
        cblk.instructions = cblk.instructions[:-1] + [
            Instruction(Opcode.JUMP, target=term.target)
        ]
        cblk.fallthrough = None
        _cleanup(candidate)
        yield candidate


def _bypass_candidates(program: Program) -> Iterator[Program]:
    """Delete single-successor blocks, rerouting inbound edges."""
    for fname, label, _ in _blocks_of(program):
        func = program.function(fname)
        if label == func.entry_label:
            continue
        blk = func.block(label)
        term = blk.terminator
        if term is not None and term.opcode not in (Opcode.JUMP,):
            continue  # CALL / RET / HALT / branch blocks stay put
        succs = blk.successor_labels()
        if len(succs) != 1 or succs[0] == label:
            continue
        succ = succs[0]
        candidate = _clone(program)
        cfunc = candidate.function(fname)
        for other in cfunc.blocks():
            if other.label == label:
                continue
            if other.fallthrough == label:
                other.fallthrough = succ
            oterm = other.terminator
            if oterm is not None and oterm.opcode.is_control \
                    and oterm.opcode is not Opcode.CALL \
                    and oterm.target == label:
                other.instructions[-1] = dc_replace(oterm, target=succ)
        cfunc.remove_block(label)
        _cleanup(candidate)
        yield candidate


def _instruction_candidates(program: Program) -> Iterator[Program]:
    """Drop non-control instructions: whole bodies, halves, singles."""
    for fname, label, blk in _blocks_of(program):
        body = blk.instructions
        n_drop = len(body)
        if n_drop and body[-1].opcode.is_control:
            n_drop -= 1  # the terminator is control flow, not payload
        if n_drop == 0:
            continue
        spans: List[Tuple[int, int]] = [(0, n_drop)]
        half = n_drop // 2
        if half and half < n_drop:
            spans += [(0, half), (half, n_drop)]
        if n_drop > 1:
            spans += [(i, i + 1) for i in range(n_drop)]
        seen = set()
        for lo, hi in spans:
            if (lo, hi) in seen or lo >= hi:
                continue
            seen.add((lo, hi))
            candidate = _clone(program)
            cblk = candidate.function(fname).block(label)
            cblk.instructions = (
                cblk.instructions[:lo] + cblk.instructions[hi:]
            )
            candidate.invalidate_layout()
            yield candidate


def _memory_candidates(program: Program) -> Iterator[Program]:
    """Clear the initial memory image (all, then each half)."""
    if not program.memory_image:
        return
    addresses = sorted(program.memory_image)
    half = len(addresses) // 2
    keeps = [(), tuple(addresses[:half]), tuple(addresses[half:])]
    for keep in keeps:
        if len(keep) == len(addresses):
            continue
        candidate = _clone(program)
        candidate.memory_image = {
            a: program.memory_image[a] for a in keep
        }
        yield candidate


# ----------------------------------------------------------------- helpers


def _blocks_of(program: Program):
    """Stable (function, label, block) snapshot to iterate over."""
    out = []
    for func in program.functions():
        for blk in func.blocks():
            out.append((func.name, blk.label, blk))
    return out


def _prune_unreachable(program: Program) -> None:
    for func in program.functions():
        if func.entry_label is None:
            continue
        seen = {func.entry_label}
        stack = [func.entry_label]
        while stack:
            for succ in func.block(stack.pop()).successor_labels():
                if succ not in seen and func.has_block(succ):
                    seen.add(succ)
                    stack.append(succ)
        for label in [l for l in func.labels() if l not in seen]:
            func.remove_block(label)


def _prune_uncalled(program: Program) -> None:
    live = {program.main_name}
    stack = [program.main_name]
    while stack:
        for callee in program.function(stack.pop()).callees():
            if callee not in live and program.has_function(callee):
                live.add(callee)
                stack.append(callee)
    for name in [f.name for f in program.functions() if f.name not in live]:
        program.remove_function(name)


def _cleanup(program: Program) -> None:
    """Re-establish lint invariants after a structural edit."""
    _prune_unreachable(program)
    _prune_uncalled(program)
    program.invalidate_layout()
