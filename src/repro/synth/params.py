"""Generation parameters for the seeded synthetic program generator.

A :class:`SynthParams` value, together with a seed, fully determines
one generated program (see :mod:`repro.synth.generator`): every
structural choice — region kinds, loop trip counts, callee sizes,
operand selection — is drawn from one ``random.Random(seed)`` stream
steered by these knobs.  The dataclass is frozen and hashable through
the harness's canonical encoding, so parameters participate in cache
keys and ledger entries like any other configuration.

The presets target the heuristic decision boundaries the paper's task
selector actually steers on:

* ``loops`` — loop nests whose static body sizes straddle LOOP_THRESH
  (30), so the task-size heuristic's unroll decision flips per seed;
* ``calls`` — call trees whose callee dynamic sizes straddle
  CALL_THRESH (30), flipping the call-absorption decision;
* ``diamonds`` — chained diamond/hammock reconvergence with fan-out
  near the N = 4 target-tracking limit;
* ``memory`` — loads/stores concentrated on a tiny address pool so
  cross-task aliasing (ARB squashes) is frequent;
* ``chains`` — register def-use chains that prefer distant producers,
  stretching cross-task register communication;
* ``default`` — a balanced mixture of all of the above.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class SynthParams:
    """Knobs of the seeded program generator (all deterministic)."""

    #: helper functions generated besides ``main`` (callees form a DAG)
    functions: int = 3
    #: structured regions emitted per function body (uniform range)
    regions_min: int = 3
    regions_max: int = 6
    #: maximum structured nesting depth (loops/diamonds inside loops)
    nest_depth: int = 2
    #: counted-loop trip counts (uniform range; loops always terminate)
    trip_min: int = 2
    trip_max: int = 5
    #: loop body static size is sampled from
    #: ``loop_body_target ± loop_body_jitter`` so bodies straddle the
    #: task-size heuristic's LOOP_THRESH boundary
    loop_body_target: int = 30
    loop_body_jitter: int = 24
    #: callee dynamic size is steered toward
    #: ``callee_target ± callee_jitter`` (straddles CALL_THRESH)
    callee_target: int = 30
    callee_jitter: int = 24
    #: chained diamonds per fan-out region (targets approach N = 4)
    fanout_chain_max: int = 3
    #: straight-line region length (uniform range)
    line_min: int = 2
    line_max: int = 8
    #: probability an emitted instruction is a LOAD/STORE
    mem_prob: float = 0.25
    #: distinct base addresses memory traffic aliases over
    alias_pool: int = 4
    #: word offsets used relative to each base address
    mem_span: int = 8
    #: probability an emitted ALU instruction is floating point
    fp_prob: float = 0.15
    #: probability an operand is drawn from the oldest live defs
    #: (stretches cross-block / cross-task def-use distance)
    far_use_prob: float = 0.3
    #: region-kind weights (line, diamond, fan-out chain, loop, call)
    w_line: int = 3
    w_diamond: int = 3
    w_fanout: int = 1
    w_loop: int = 3
    w_call: int = 2
    #: dynamic instruction budget the generated program must fit in
    max_dynamic: int = 200_000

    def __post_init__(self) -> None:
        if self.trip_min < 1:
            raise ValueError("trip_min must be >= 1 (loops must terminate)")
        if self.trip_max < self.trip_min:
            raise ValueError("trip_max must be >= trip_min")
        if self.regions_max < self.regions_min or self.regions_min < 1:
            raise ValueError("need 1 <= regions_min <= regions_max")
        if self.line_max < self.line_min or self.line_min < 1:
            raise ValueError("need 1 <= line_min <= line_max")
        if self.functions < 0:
            raise ValueError("functions must be >= 0")
        if self.nest_depth < 0:
            raise ValueError("nest_depth must be >= 0")
        for name in ("mem_prob", "fp_prob", "far_use_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.alias_pool < 1 or self.mem_span < 1:
            raise ValueError("alias_pool and mem_span must be >= 1")

    def scaled(self, scale: float) -> "SynthParams":
        """Scale dominant trip counts, like ``Benchmark.build(scale)``.

        Structure (and therefore static code) is unchanged only for
        ``scale == 1``; the registry contract is merely that the result
        is deterministic per ``(seed, params, scale)``.
        """
        if scale == 1.0:
            return self
        trip_max = max(self.trip_min, int(round(self.trip_max * scale)))
        return replace(self, trip_max=trip_max)

    def region_weights(self) -> Tuple[int, int, int, int, int]:
        """Weights as a tuple in the generator's fixed region order."""
        return (self.w_line, self.w_diamond, self.w_fanout,
                self.w_loop, self.w_call)


#: named parameter presets, usable as ``synth:<preset>:<seed>``
#: benchmark names; insertion order is the display order
PRESETS: Dict[str, SynthParams] = {
    "default": SynthParams(),
    "loops": SynthParams(
        functions=1, w_line=1, w_diamond=1, w_fanout=0, w_loop=6, w_call=1,
        nest_depth=2, loop_body_jitter=28,
    ),
    "calls": SynthParams(
        functions=5, w_line=1, w_diamond=1, w_fanout=0, w_loop=1, w_call=6,
        callee_jitter=28,
    ),
    "diamonds": SynthParams(
        functions=1, w_line=1, w_diamond=4, w_fanout=4, w_loop=1, w_call=0,
        fanout_chain_max=4,
    ),
    "memory": SynthParams(
        functions=2, mem_prob=0.6, alias_pool=2, mem_span=4,
        w_line=4, w_diamond=2, w_fanout=0, w_loop=3, w_call=1,
    ),
    "chains": SynthParams(
        functions=2, far_use_prob=0.85, line_max=12,
        w_line=5, w_diamond=2, w_fanout=0, w_loop=2, w_call=1,
    ),
}
