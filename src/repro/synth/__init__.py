"""Seeded synthetic program generation + differential fuzzing.

The generator (:mod:`repro.synth.generator`) emits valid, halting IR
programs whose shapes straddle the paper's decision thresholds —
loop bodies around ``LOOP_THRESH``, callees around ``CALL_THRESH``,
diamond/hammock chains near the suitability limit — fully determined
by ``(seed, SynthParams)``.  The campaign driver
(:mod:`repro.synth.campaign`) feeds those programs through all four
heuristic levels on both simulation engines and cross-checks every
cell with the reliability oracle; the reducer
(:mod:`repro.synth.reduce`) delta-debugs any divergent program down
to a minimal reproducer.

Generated benchmarks are addressable anywhere a benchmark name is
accepted via the ``synth:<preset>:<seed>`` scheme (the workload
registry recognises the prefix), so ``repro run synth:default:7``
works just like a registered workload.
"""

from repro.synth.campaign import (
    CampaignResult,
    check_program,
    execute_fuzz_spec,
    fuzz_specs,
    run_campaign,
)
from repro.synth.generator import (
    generate_program,
    parse_synth_name,
    program_source_hash,
    synth_name,
)
from repro.synth.params import PRESETS, SynthParams
from repro.synth.reduce import ReduceStats, reduce_program

__all__ = [
    "CampaignResult",
    "PRESETS",
    "ReduceStats",
    "SynthParams",
    "check_program",
    "execute_fuzz_spec",
    "fuzz_specs",
    "generate_program",
    "parse_synth_name",
    "program_source_hash",
    "reduce_program",
    "run_campaign",
    "synth_name",
]
