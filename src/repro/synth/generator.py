"""Seeded synthetic program generator.

``generate_program(seed, params)`` emits a valid, halting
:class:`~repro.ir.program.Program` whose every structural choice is
drawn from a single ``random.Random(seed)`` stream, so the result is
fully determined by ``(seed, params)`` — byte-identical assembly text
across processes, platforms, and ``PYTHONHASHSEED`` values (the
generator never iterates sets or unordered dicts).

The emitted shapes are the ones the paper's heuristics make decisions
on:

* **counted loop nests** whose static body sizes are sampled around
  LOOP_THRESH, flipping the unroll decision from seed to seed;
* **call DAGs** whose callee dynamic sizes are steered around
  CALL_THRESH, flipping call absorption;
* **diamond / hammock reconvergence chains** with fan-out approaching
  the N = 4 target-tracking limit;
* **register def-use chains** whose producer distance is tunable
  (near reuse vs. reads reaching far across blocks and tasks);
* **memory traffic over a small alias pool** so cross-task load/store
  conflicts (ARB squashes) actually happen.

Structural guarantees (the campaign and reducer rely on these):

* every loop is counted with a pre-known trip count and a dedicated
  counter register — programs always halt;
* the call graph is a DAG — no unbounded recursion;
* a register is read only where it is *must-defined* (written on
  every path from the function entry, in callers for ``r4``), so the
  strict well-formedness validator passes by construction;
* the program validates and executes within ``params.max_dynamic``
  dynamic instructions (checked at generation time).
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional

from repro.ir.builder import IRBuilder
from repro.ir.interp import ExecutionLimitExceeded, run_program
from repro.ir.program import Program
from repro.synth.params import PRESETS, SynthParams

#: condition scratch register (never a temp destination)
_COND = "r1"
#: call result register (written by every generated callee)
_RESULT = "r2"
#: pointer register, loaded with an alias-pool base at function entry
_PTR = "r3"
#: call argument register
_ARG = "r4"
#: general destination pool
_TEMPS = tuple(f"r{i}" for i in range(10, 26))
#: loop counters by nesting depth (outside the temp pool)
_COUNTERS = tuple(f"r{i}" for i in range(26, 32))
#: floating point temp pool
_FP_TEMPS = tuple(f"f{i}" for i in range(1, 9))

#: region kinds in the fixed weight order of SynthParams
_KINDS = ("line", "diamond", "fanout", "loop", "call")

_INT_OPS = ("add", "sub", "mul", "and_", "or_", "xor", "slt", "sle",
            "seq", "sne")
_INT_IMM_OPS = ("addi", "subi", "muli", "andi", "xori", "shl", "shr",
                "slti", "remi")
_FP_OPS = ("fadd", "fsub", "fmul")


def synth_name(preset: str, seed: int) -> str:
    """The registry benchmark name for ``(preset, seed)``."""
    return f"synth:{preset}:{seed}"


def parse_synth_name(name: str):
    """Split a ``synth:<preset>:<seed>`` name; raises ``ValueError``.

    Returns ``(preset, seed, SynthParams)``.
    """
    parts = name.split(":")
    if len(parts) != 3 or parts[0] != "synth":
        raise ValueError(
            f"bad synthetic benchmark name {name!r} "
            f"(expected synth:<preset>:<seed>)"
        )
    _, preset, seed_text = parts
    if preset not in PRESETS:
        known = ", ".join(PRESETS)
        raise ValueError(
            f"unknown synth preset {preset!r} (known: {known})"
        )
    try:
        seed = int(seed_text)
    except ValueError:
        raise ValueError(
            f"bad synth seed {seed_text!r} in {name!r}"
        ) from None
    return preset, seed, PRESETS[preset]


def program_source_hash(program: Program) -> str:
    """SHA-256 of the program's canonical assembly text.

    This is the content hash the fuzzing campaign salts harness cache
    keys with (``RunSpec.source_hash``), so a generated program can
    never alias cached artifacts of a same-named workload built by
    different generator code.
    """
    from repro.ir.asmtext import program_to_text

    return hashlib.sha256(
        program_to_text(program).encode("utf-8")
    ).hexdigest()


class _FuncGen:
    """Emits one function's body from the shared random stream."""

    def __init__(self, gen: "_ProgramGen", name: str,
                 callables: List[str], is_main: bool) -> None:
        self.gen = gen
        self.b = gen.b
        self.rng = gen.rng
        self.params = gen.params
        self.name = name
        self.callables = callables
        self.is_main = is_main

    # -- operand selection ------------------------------------------------

    def _pick(self, avail: List[str]) -> str:
        """A source register: recent def, or a far-back def."""
        rng = self.rng
        if len(avail) > 4 and rng.random() < self.params.far_use_prob:
            # Oldest third: stretches def-use distance across blocks.
            return avail[rng.randrange(max(1, len(avail) // 3))]
        tail = avail[-4:]
        return tail[rng.randrange(len(tail))]

    def _note(self, avail: List[str], reg: str) -> None:
        if reg not in avail:
            avail.append(reg)

    # -- single instructions ----------------------------------------------

    def _emit_mem(self, avail: List[str]) -> None:
        rng, b = self.rng, self.b
        base_addr = self.gen.alias_bases[
            rng.randrange(len(self.gen.alias_bases))
        ]
        offset = rng.randrange(self.params.mem_span)
        if rng.random() < 0.5:
            base_reg, imm = "r0", base_addr + offset
        else:
            base_reg, imm = _PTR, offset
        if rng.random() < 0.5:
            b.store(self._pick(avail), base_reg, imm)
        else:
            dst = _TEMPS[rng.randrange(len(_TEMPS))]
            b.load(dst, base_reg, imm)
            self._note(avail, dst)

    def _emit_fp(self, avail_fp: List[str]) -> None:
        rng, b = self.rng, self.b
        dst = _FP_TEMPS[rng.randrange(len(_FP_TEMPS))]
        op = _FP_OPS[rng.randrange(len(_FP_OPS))]
        a = avail_fp[rng.randrange(len(avail_fp))]
        c = avail_fp[rng.randrange(len(avail_fp))]
        getattr(b, op)(dst, a, c)
        if dst not in avail_fp:
            avail_fp.append(dst)

    def _emit_int(self, avail: List[str]) -> None:
        rng, b = self.rng, self.b
        dst = _TEMPS[rng.randrange(len(_TEMPS))]
        if rng.random() < 0.4:
            op = _INT_IMM_OPS[rng.randrange(len(_INT_IMM_OPS))]
            imm = rng.randint(2, 9) if op == "remi" else rng.randint(0, 7)
            getattr(b, op)(dst, self._pick(avail), imm)
        else:
            op = _INT_OPS[rng.randrange(len(_INT_OPS))]
            getattr(b, op)(dst, self._pick(avail), self._pick(avail))
        self._note(avail, dst)

    def _emit_inst(self, avail: List[str], avail_fp: List[str]) -> None:
        r = self.rng.random()
        if r < self.params.mem_prob:
            self._emit_mem(avail)
        elif r < self.params.mem_prob + self.params.fp_prob and avail_fp:
            self._emit_fp(avail_fp)
        else:
            self._emit_int(avail)

    def _line(self, count: int, avail: List[str],
              avail_fp: List[str]) -> None:
        for _ in range(count):
            self._emit_inst(avail, avail_fp)

    # -- structured regions -----------------------------------------------

    def _cond(self, avail: List[str]) -> None:
        """Leave a data-dependent 0/1-ish value in the scratch register."""
        rng, b = self.rng, self.b
        src = self._pick(avail)
        if rng.random() < 0.5:
            b.remi(_COND, src, rng.randint(2, 5))
        else:
            b.slti(_COND, src, rng.randint(0, 9))

    def _diamond(self, depth: int, avail: List[str],
                 avail_fp: List[str]) -> None:
        rng, b = self.rng, self.b
        then_l = b.new_label("then")
        else_l = b.new_label("else")
        join_l = b.new_label("join")
        self._cond(avail)
        b.bnez(_COND, then_l, fallthrough=else_l)
        with b.block(then_l):
            # Arm writes stay local: a register defined on only one
            # path is not must-defined after the join.
            arm = list(avail)
            arm_fp = list(avail_fp)
            self._line(rng.randint(1, 3), arm, arm_fp)
            b.jump(join_l)
        with b.block(else_l):
            if rng.random() < 0.7:  # else 30%: a pure hammock arm
                arm = list(avail)
                arm_fp = list(avail_fp)
                self._line(rng.randint(1, 3), arm, arm_fp)
        b.open_block(join_l)

    def _fanout(self, depth: int, avail: List[str],
                avail_fp: List[str]) -> None:
        """Chained tiny diamonds: reconvergence with fan-out near N."""
        for _ in range(self.rng.randint(2, self.params.fanout_chain_max)):
            self._diamond(depth, avail, avail_fp)

    def _loop(self, depth: int, avail: List[str],
              avail_fp: List[str]) -> None:
        rng, b, params = self.rng, self.b, self.params
        trip = rng.randint(params.trip_min, params.trip_max)
        counter = _COUNTERS[min(depth, len(_COUNTERS) - 1)]
        body_size = max(2, params.loop_body_target + rng.randint(
            -params.loop_body_jitter, params.loop_body_jitter
        ))
        head = b.new_label("loop")
        exit_l = b.new_label("exit")
        b.li(counter, 0)
        b.open_block(head)
        body = list(avail)
        body_fp = list(avail_fp)
        self._note(body, counter)
        nested = (
            depth + 1 < params.nest_depth
            and body_size >= 8
            and rng.random() < 0.4
        )
        if nested:
            inner = rng.random()
            if inner < 0.5:
                self._loop(depth + 1, body, body_fp)
            else:
                self._diamond(depth + 1, body, body_fp)
            body_size = max(2, body_size // 2)
        self._line(body_size, body, body_fp)
        b.addi(counter, counter, 1)
        b.slti(_COND, counter, trip)
        b.bnez(_COND, head, fallthrough=exit_l)
        b.open_block(exit_l)

    def _call(self, avail: List[str], avail_fp: List[str]) -> None:
        rng, b = self.rng, self.b
        callee = self.callables[rng.randrange(len(self.callables))]
        cont = b.new_label("cont")
        b.mov(_ARG, self._pick(avail))
        b.call(callee, fallthrough=cont)
        b.open_block(cont)
        dst = _TEMPS[rng.randrange(len(_TEMPS))]
        b.mov(dst, _RESULT)
        self._note(avail, dst)

    def _seq(self, regions: int, depth: int, avail: List[str],
             avail_fp: List[str]) -> None:
        params, rng = self.params, self.rng
        weights = list(params.region_weights())
        if depth >= params.nest_depth:
            weights[_KINDS.index("diamond")] = 0
            weights[_KINDS.index("fanout")] = 0
            weights[_KINDS.index("loop")] = 0
        if not self.callables:
            weights[_KINDS.index("call")] = 0
        if sum(weights) == 0:
            weights[_KINDS.index("line")] = 1
        for _ in range(regions):
            kind = rng.choices(_KINDS, weights=weights, k=1)[0]
            if kind == "line":
                self._line(rng.randint(params.line_min, params.line_max),
                           avail, avail_fp)
            elif kind == "diamond":
                self._diamond(depth, avail, avail_fp)
            elif kind == "fanout":
                self._fanout(depth, avail, avail_fp)
            elif kind == "loop":
                self._loop(depth, avail, avail_fp)
            else:
                self._call(avail, avail_fp)

    # -- whole functions --------------------------------------------------

    def _prologue(self) -> tuple:
        """Seed must-defined registers; returns (avail, avail_fp)."""
        rng, b = self.rng, self.b
        avail: List[str] = []
        avail_fp: List[str] = []
        if not self.is_main:
            avail.append(_ARG)  # callers always set r4 before CALL
        base = self.gen.alias_bases[
            rng.randrange(len(self.gen.alias_bases))
        ]
        b.li(_PTR, base)
        for i in range(3):
            reg = _TEMPS[rng.randrange(len(_TEMPS))]
            b.li(reg, rng.randint(1, 9))
            self._note(avail, reg)
        for reg in _FP_TEMPS[:2]:
            b.fli(reg, float(rng.randint(1, 9)))
            avail_fp.append(reg)
        return avail, avail_fp

    def emit_main(self) -> None:
        rng, params, b = self.rng, self.params, self.b
        with b.function(self.name):
            avail, avail_fp = self._prologue()
            self._seq(rng.randint(params.regions_min, params.regions_max),
                      0, avail, avail_fp)
            out = self._pick(avail)
            b.store(out, "r0", self.gen.alias_bases[0])
            b.halt()

    def emit_callee(self) -> None:
        """A helper whose dynamic size straddles CALL_THRESH."""
        rng, params, b = self.rng, self.params, self.b
        target = max(4, params.callee_target + rng.randint(
            -params.callee_jitter, params.callee_jitter
        ))
        with b.function(self.name):
            avail, avail_fp = self._prologue()
            if self.callables and rng.random() < 0.3:
                self._call(avail, avail_fp)
                target = max(4, target // 2)
            if rng.random() < 0.5:
                # Straight line: dynamic size == static size.
                self._line(min(target, 64), avail, avail_fp)
            else:
                # One counted loop sized so trip * body ~= target.
                trip = rng.randint(2, 5)
                body = max(1, target // trip)
                counter = _COUNTERS[-1]
                head = b.new_label("hloop")
                exit_l = b.new_label("hexit")
                b.li(counter, 0)
                b.open_block(head)
                inner = list(avail)
                inner_fp = list(avail_fp)
                self._note(inner, counter)
                self._line(body, inner, inner_fp)
                b.addi(counter, counter, 1)
                b.slti(_COND, counter, trip)
                b.bnez(_COND, head, fallthrough=exit_l)
                b.open_block(exit_l)
            b.mov(_RESULT, self._pick(avail))
            b.ret()


class _ProgramGen:
    """Drives one whole-program generation from a single RNG stream."""

    def __init__(self, seed: int, params: SynthParams) -> None:
        self.rng = random.Random(seed)
        self.params = params
        self.b = IRBuilder()
        #: small base-address pool all memory traffic aliases over
        self.alias_bases = [
            256 + 16 * i for i in range(max(1, params.alias_pool))
        ]

    def generate(self) -> Program:
        params, rng = self.params, self.rng
        # Callees first, leaf-most last in the callable list; function
        # i may only call functions generated before it, so the call
        # graph is a DAG and the program always terminates.
        callee_names = [f"fn{i}" for i in range(params.functions)]
        for i, name in enumerate(callee_names):
            _FuncGen(self, name, callee_names[:i], is_main=False).emit_callee()
        _FuncGen(self, "main", list(callee_names), is_main=True).emit_main()
        for i, base in enumerate(self.alias_bases):
            self.b.program.memory_image[base] = rng.randint(1, 99)
        return self.b.build()


def generate_program(seed: int, params: Optional[SynthParams] = None,
                     check: bool = True) -> Program:
    """The program fully determined by ``(seed, params)``.

    With ``check`` (the default) the program is also executed once to
    prove it halts within ``params.max_dynamic`` dynamic instructions;
    generation fails loudly rather than handing the campaign an
    unbounded program.
    """
    params = params or SynthParams()
    program = _ProgramGen(seed, params).generate()
    if check:
        try:
            run_program(program, max_instructions=params.max_dynamic)
        except ExecutionLimitExceeded:
            raise ValueError(
                f"generated program (seed={seed}) exceeded the "
                f"{params.max_dynamic}-instruction dynamic budget"
            ) from None
    return program
