"""Differential fuzzing campaigns over generated programs.

A campaign takes ``budget`` seeded programs (see
:mod:`repro.synth.generator`), compiles each at **all four heuristic
levels**, runs every cell on **both simulation engines**, and checks:

* the IR well-formedness validator and the partition single-entry
  property on every compilation;
* the reliability oracle (sequential reference vs. full-semantics
  replay of the machine's commit log) with the invariant monitor
  riding every run;
* fast vs. reference engine **bit-identity** on every reported
  result field and every cycle-breakdown category.

Everything executes through the existing harness
(:func:`repro.harness.scheduler.run_specs`): cells group by compile
signature (both engines of one (program, level) share a compilation),
fan out over the process pool, resume from the run ledger, and cache
records in the artifact cache.  Specs carry the generated program's
content hash (``RunSpec.source_hash``), so fuzz records can never
alias cached artifacts of a same-named workload built by different
generator code.

Each per-cell oracle verdict is embedded in the record's metrics
(``metrics["fuzz"]``), so verdicts ride the ledger and survive cache
hits and ``--resume`` — replaying a finished campaign re-reports its
divergences without re-running anything.

The campaign ledger (:class:`CampaignLedger`) zeroes per-entry wall
times, making two identical campaigns produce identical ledgers
modulo the ``ts`` timestamps — the determinism contract the CI
fuzz-smoke job asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler import HeuristicLevel, SelectionConfig
from repro.compiler.partition import select_tasks
from repro.compiler.regcomm import ReleaseAnalysis
from repro.harness.ledger import LedgerEntry, RunLedger
from repro.harness.scheduler import run_specs
from repro.harness.spec import RunSpec
from repro.ir.asmtext import parse_program, program_to_text
from repro.ir.interp import run_program
from repro.ir.program import Program
from repro.ir.validate import partition_issues, well_formed
from repro.reliability.monitors import InvariantMonitor, InvariantViolation
from repro.reliability.oracle import (
    check_commit_log,
    compare_states,
    replay_commits,
    sequential_reference,
)
from repro.sim import MultiscalarMachine, SimConfig, build_task_stream
from repro.synth.generator import (
    generate_program,
    program_source_hash,
    synth_name,
)
from repro.synth.params import PRESETS
from repro.telemetry.metrics import MetricsRegistry, TASK_SIZE_BOUNDS

ALL_LEVELS: Tuple[HeuristicLevel, ...] = tuple(HeuristicLevel)

#: the engines every cell is cross-checked between by default; the
#: CLI's ``--engine batched`` appends a third differential column
ENGINES: Tuple[str, ...] = ("fast", "reference")

#: heuristic level strategy-sweep cells run at (multi-block and
#: profile-fed, so non-paper strategies exercise their full pipeline)
FUZZ_STRATEGY_LEVEL = HeuristicLevel.DATA_DEPENDENCE

#: RunRecord fields that must be bit-identical across engines
_COMPARE_FIELDS: Tuple[str, ...] = (
    "cycles", "instructions", "ipc", "dynamic_tasks", "mean_task_size",
    "task_prediction_accuracy", "branch_prediction_accuracy",
    "control_squashes", "memory_squashes", "mean_window_span_measured",
)

#: dynamic-size histogram buckets for generated programs
PROGRAM_SIZE_BOUNDS: Tuple[int, ...] = (
    64, 128, 256, 512, 1024, 2048, 4096, 8192,
)


def program_seed(campaign_seed: int, index: int) -> int:
    """The generator seed of program ``index`` of a campaign.

    A large odd stride keeps distinct campaign seeds from sharing
    program streams for any realistic budget.
    """
    return campaign_seed * 1_000_003 + index


class CampaignLedger(RunLedger):
    """A run ledger whose entries carry no wall-clock durations.

    Fuzz campaigns must be reproducible byte-for-byte modulo the
    ``ts`` field: two runs of the same ``(budget, seed, preset)``
    produce identical ledgers otherwise, which the determinism tests
    and the CI fuzz-smoke job diff directly.
    """

    def record(self, entry: LedgerEntry) -> None:
        super().record(replace_wall(entry))


def replace_wall(entry: LedgerEntry) -> LedgerEntry:
    if entry.wall_seconds:
        entry = replace(entry, wall_seconds=0.0)
    return entry


@dataclass
class CampaignResult:
    """Everything one fuzzing campaign reports."""

    budget: int
    seed: int
    preset: str
    #: benchmark names of the generated programs, in seed order
    programs: List[str] = field(default_factory=list)
    #: (program, level, engine) cells executed
    cells: int = 0
    #: human-readable divergence reports, ordered deterministically
    divergences: List[str] = field(default_factory=list)
    #: benchmark name -> minimized IR text, for divergent programs
    #: reduced with ``--minimize``
    reduced: Dict[str, str] = field(default_factory=dict)
    #: campaign-level metrics registry summary
    metrics: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        head = (
            f"fuzz campaign: {len(self.programs)} programs "
            f"(preset={self.preset}, seed={self.seed}), {self.cells} "
            f"cells, {len(self.divergences)} divergence(s)"
        )
        lines = [head]
        lines += [f"  ! {d}" for d in self.divergences[:50]]
        if len(self.divergences) > 50:
            lines.append(f"  ... and {len(self.divergences) - 50} more")
        for name, text in self.reduced.items():
            n_blocks = sum(
                1 for line in text.splitlines()
                if line.endswith(":") and not line.startswith((" ", "\t"))
            )
            lines.append(f"  reduced {name} -> {n_blocks} block(s)")
        return "\n".join(lines)


def fuzz_specs(
    budget: int,
    seed: int = 1,
    preset: str = "default",
    levels: Sequence[HeuristicLevel] = ALL_LEVELS,
    engines: Sequence[str] = ENGINES,
    strategies: Sequence[str] = (),
    machines: Sequence[str] = (),
) -> Tuple[List[RunSpec], List[str]]:
    """The harness specs of one campaign, plus the program names.

    Generating the programs up front (in the parent) serves two
    purposes: each spec carries the program's content hash, and an
    unbounded or invalid generation fails loudly before any cell is
    scheduled.

    ``strategies`` appends, per program, one cell group per named
    non-paper selection strategy (at :data:`FUZZ_STRATEGY_LEVEL`,
    every engine) so fuzzing also covers the pluggable-strategy
    dispatch path.  ``machines`` appends, per program, one cell group
    per named machine preset (at :data:`FUZZ_STRATEGY_LEVEL`, every
    engine) — heterogeneous machines share the level's compilation
    but drive the differential oracle through per-PU profiles,
    scaled rings and non-path predictors.
    """
    if preset not in PRESETS:
        known = ", ".join(PRESETS)
        raise ValueError(f"unknown synth preset {preset!r} (known: {known})")
    from repro.machines import resolve_machine

    # Resolve (and lint) machine names before any program is queued.
    machine_specs = [resolve_machine(m) for m in machines]
    params = PRESETS[preset]
    specs: List[RunSpec] = []
    names: List[str] = []
    for index in range(budget):
        pseed = program_seed(seed, index)
        program = generate_program(pseed, params)
        source = program_source_hash(program)
        name = synth_name(preset, pseed)
        names.append(name)
        for level in levels:
            for engine in engines:
                specs.append(RunSpec(
                    benchmark=name,
                    level=level,
                    sim=SimConfig(engine=engine),
                    source_hash=source,
                ))
        for strategy in strategies:
            selection = SelectionConfig(
                level=FUZZ_STRATEGY_LEVEL, strategy=strategy
            )
            for engine in engines:
                specs.append(RunSpec(
                    benchmark=name,
                    level=FUZZ_STRATEGY_LEVEL,
                    selection=selection,
                    sim=SimConfig(engine=engine),
                    source_hash=source,
                ))
        for machine in machine_specs:
            for engine in engines:
                specs.append(RunSpec(
                    benchmark=name,
                    level=FUZZ_STRATEGY_LEVEL,
                    sim=SimConfig(engine=engine, machine=machine),
                    source_hash=source,
                ))
    return specs, names


def _spec_machine(spec: RunSpec) -> str:
    """The machine-preset tag of a fuzz cell ("" = the legacy 4x2)."""
    machine = spec.sim.machine if spec.sim is not None else None
    return machine.name if machine is not None else ""


def execute_fuzz_spec(spec: RunSpec) -> "RunRecord":
    """Harness worker: one fuzz cell with the full oracle riding.

    Compiles through the standard (in-memory cached) pipeline, checks
    well-formedness and the partition single-entry property, runs the
    machine with the invariant monitor attached, then replays the
    commit log against the sequential reference.  The verdict is
    embedded in ``record.metrics["fuzz"]`` so it travels through the
    artifact cache and the ledger.
    """
    from repro.experiments.runner import (
        RunRecord,
        compile_benchmark,
        run_benchmark,
    )

    divergences: List[str] = []
    compiled = compile_benchmark(
        spec.benchmark, spec.level, scale=spec.scale,
        selection=spec.selection, input_set=spec.input_set,
        profile_input=spec.profile_input,
    )
    program = compiled.partition.program
    if spec.source_hash is not None:
        # The worker rebuilt the program from its name; a hash mismatch
        # means generation is not deterministic across processes.
        rebuilt = program_source_hash(
            _pristine_program(spec.benchmark, spec.scale)
        )
        if rebuilt != spec.source_hash:
            divergences.append(
                f"source hash mismatch: spec says {spec.source_hash[:12]}, "
                f"worker generated {rebuilt[:12]} — generator is not "
                f"deterministic across processes"
            )
    divergences.extend(
        f"well-formedness: {issue}"
        for issue in well_formed(program)
    )
    divergences.extend(
        f"partition: {issue}"
        for issue in partition_issues(program, compiled.partition)
    )

    monitor = InvariantMonitor()
    try:
        record = run_benchmark(
            spec.benchmark, spec.level, n_pus=spec.n_pus,
            out_of_order=spec.out_of_order, scale=spec.scale,
            selection=spec.selection, sim=spec.sim,
            input_set=spec.input_set, profile_input=spec.profile_input,
            monitor=monitor,
        )
    except InvariantViolation as exc:
        divergences.append(f"invariant violation: {exc}")
        record = _stub_record(spec, compiled)
    else:
        ref_trace, ref_state = sequential_reference(program)
        if len(ref_trace) != len(compiled.trace):
            divergences.append(
                f"sequential re-execution produced {len(ref_trace)} "
                f"instructions, compiled trace has {len(compiled.trace)}"
            )
        else:
            divergences.extend(
                check_commit_log(monitor.commit_log, len(compiled.trace))
            )
            replay_state, replay_div = replay_commits(
                program, compiled.trace, monitor.commit_log
            )
            divergences.extend(replay_div)
            divergences.extend(compare_states(ref_state, replay_state))
            if record.instructions != ref_state.retired_instructions:
                divergences.append(
                    f"machine committed {record.instructions} "
                    f"instructions, sequential reference retired "
                    f"{ref_state.retired_instructions}"
                )

    metrics = dict(record.metrics or {})
    metrics["fuzz"] = {
        "divergences": divergences,
        "invariant_checks": monitor.checks,
        "source_hash": spec.source_hash,
        "engine": (spec.sim or SimConfig()).engine,
    }
    if spec.selection is not None and spec.selection.strategy:
        # Strategy-sweep cells share the level of a reference cell;
        # the report loader suffixes their labels with this.
        metrics["fuzz"]["strategy"] = spec.selection.strategy
    machine = _spec_machine(spec)
    if machine:
        # Machine-sweep cells likewise share a reference level.
        metrics["fuzz"]["machine"] = machine
    record.metrics = metrics
    return record


def _pristine_program(name: str, scale: float) -> Program:
    """A freshly built program for ``name`` (no selection transforms)."""
    from repro.workloads import get_benchmark

    return get_benchmark(name).build(scale)


def _stub_record(spec: RunSpec, compiled) -> "RunRecord":
    """A zeroed record for a cell whose simulation aborted."""
    from repro.experiments.runner import RunRecord
    from repro.sim import CycleBreakdown

    return RunRecord(
        benchmark=spec.benchmark, suite="synth", level=spec.level,
        n_pus=spec.n_pus, out_of_order=spec.out_of_order, cycles=0,
        instructions=0, ipc=0.0,
        dynamic_tasks=len(compiled.stream.tasks),
        mean_task_size=compiled.stream.mean_task_size,
        mean_control_transfers=0.0, mean_branches=0.0,
        task_prediction_accuracy=0.0, branch_prediction_accuracy=0.0,
        control_squashes=0, memory_squashes=0,
        mean_window_span_measured=0.0, breakdown=CycleBreakdown(),
    )


def _compare_engines(label: str,
                     by_engine: Dict[str, "RunRecord"]) -> List[str]:
    """Bit-identity divergences among the engines of one cell.

    Every engine is compared against the oracle (``reference`` when
    present, else ``fast``), so a three-column campaign reports
    exactly which engine drifted rather than one opaque mismatch.
    """
    baseline_engine = "reference" if "reference" in by_engine else "fast"
    baseline = by_engine.get(baseline_engine)
    if baseline is None or len(by_engine) < 2:
        return []
    out: List[str] = []
    base_bd = baseline.breakdown.as_dict()
    for engine, record in by_engine.items():
        if engine == baseline_engine:
            continue
        for field_name in _COMPARE_FIELDS:
            a = getattr(record, field_name)
            b = getattr(baseline, field_name)
            if a != b:
                out.append(
                    f"{label}: engines diverge on {field_name}: "
                    f"{engine}={a!r} {baseline_engine}={b!r}"
                )
        engine_bd = record.breakdown.as_dict()
        for category in sorted(set(engine_bd) | set(base_bd)):
            if engine_bd.get(category) != base_bd.get(category):
                out.append(
                    f"{label}: engines diverge on breakdown[{category}]: "
                    f"{engine}={engine_bd.get(category)!r} "
                    f"{baseline_engine}={base_bd.get(category)!r}"
                )
    return out


def run_campaign(
    budget: int,
    seed: int = 1,
    preset: str = "default",
    jobs: Optional[int] = 1,
    cache=None,
    ledger: Optional[RunLedger] = None,
    resume: bool = False,
    minimize: bool = False,
    levels: Sequence[HeuristicLevel] = ALL_LEVELS,
    engines: Sequence[str] = ENGINES,
    strategies: Sequence[str] = (),
    machines: Sequence[str] = (),
) -> CampaignResult:
    """Run one differential fuzzing campaign through the harness.

    Returns a :class:`CampaignResult`; never raises on divergence
    (the CLI exits non-zero on ``not result.ok``).  With ``minimize``,
    every divergent program is delta-debugged to a minimal reproducer
    (``result.reduced``).  ``engines`` widens the differential — e.g.
    ``("fast", "reference", "batched")`` cross-checks three columns.
    ``strategies`` sweeps non-paper selection strategies, and
    ``machines`` heterogeneous machine presets, as extra cell groups
    (see :func:`fuzz_specs`).
    """
    result = CampaignResult(budget=budget, seed=seed, preset=preset)
    specs, names = fuzz_specs(budget, seed, preset, levels=levels,
                              engines=engines, strategies=strategies,
                              machines=machines)
    result.programs = names
    records = run_specs(
        specs, jobs=jobs, cache=cache, ledger=ledger,
        worker=execute_fuzz_spec, resume=resume,
    )
    result.cells = len(records)

    # Group (program, level, strategy, machine) -> engine -> record,
    # preserving spec order (strategy/machine "" = the paper
    # reference cells).
    grouped: Dict[Tuple[str, HeuristicLevel, str, str],
                  Dict[str, "RunRecord"]] = {}
    for spec, record in zip(specs, records):
        engine = (spec.sim or SimConfig()).engine
        strategy = spec.selection.strategy if spec.selection else ""
        grouped.setdefault(
            (spec.benchmark, spec.level, strategy, _spec_machine(spec)), {}
        )[engine] = record

    registry = MetricsRegistry()
    registry.counter("fuzz.programs").inc(len(names))
    registry.counter("fuzz.cells").inc(len(records))
    sizes = registry.histogram("fuzz.program_instructions",
                               PROGRAM_SIZE_BOUNDS)
    divergent_programs: List[str] = []
    for (name, level, strategy, machine), by_engine in grouped.items():
        cell_label = f"{name}@{level.value}"
        if strategy:
            cell_label = f"{cell_label}+{strategy}"
        if machine:
            cell_label = f"{cell_label}/{machine}"
        cell_divs: List[str] = []
        for engine in engines:
            record = by_engine.get(engine)
            if record is None:
                continue
            fuzz_meta = (record.metrics or {}).get("fuzz", {})
            cell_divs.extend(
                f"{cell_label}[{engine}]: {d}"
                for d in fuzz_meta.get("divergences", ())
            )
            registry.counter("fuzz.invariant_checks").inc(
                int(fuzz_meta.get("invariant_checks", 0))
            )
        fast = by_engine.get("fast")
        if fast is not None and not strategy and not machine:
            sizes.observe(fast.instructions)
        cell_divs.extend(_compare_engines(cell_label, by_engine))
        if cell_divs and name not in divergent_programs:
            divergent_programs.append(name)
        result.divergences.extend(cell_divs)
    registry.counter("fuzz.divergences").inc(len(result.divergences))
    registry.counter("fuzz.divergent_programs").inc(len(divergent_programs))
    result.metrics = registry.summary()

    if ledger is not None:
        ledger.event(
            "fuzz_campaign",
            budget=budget, seed=seed, preset=preset,
            programs=len(names), cells=result.cells,
            divergences=len(result.divergences),
            divergent_programs=divergent_programs,
            metrics=result.metrics,
        )

    if minimize and divergent_programs:
        from repro.synth.reduce import reduce_program

        for name in divergent_programs:
            program = _pristine_program(name, 1.0)
            reduced = reduce_program(
                program,
                lambda p: bool(
                    check_program(p, levels=levels, strategies=strategies,
                                  machines=machines)
                ),
            )
            result.reduced[name] = program_to_text(reduced)
    return result


def check_program(
    program: Program,
    levels: Sequence[HeuristicLevel] = ALL_LEVELS,
    n_pus: int = 4,
    max_instructions: int = 2_000_000,
    engines: Sequence[str] = ENGINES,
    strategies: Sequence[str] = (),
    machines: Sequence[str] = (),
) -> List[str]:
    """In-process differential check of one program (no registry).

    The reducer predicate and the planted-fault tests use this: it
    mirrors :func:`execute_fuzz_spec` — all requested levels (plus
    the requested non-paper ``strategies`` and machine-preset
    ``machines``), both engines, the invariant monitor, and the
    commit-log oracle — against a raw
    :class:`~repro.ir.program.Program`.  Selection clones and
    transforms its input, so every downstream step works on
    ``partition.program``, the program the trace was recorded on.
    """
    text = program_to_text(program)
    divergences: List[str] = []
    base = parse_program(text)
    divergences.extend(f"well-formedness: {i}" for i in well_formed(base))
    if divergences:
        return divergences
    selections: List[Tuple[str, SelectionConfig, Optional[object]]] = [
        (level.value, SelectionConfig(level=level), None)
        for level in levels
    ]
    selections += [
        (f"{FUZZ_STRATEGY_LEVEL.value}+{strategy}",
         SelectionConfig(level=FUZZ_STRATEGY_LEVEL, strategy=strategy),
         None)
        for strategy in strategies
    ]
    if machines:
        from repro.machines import resolve_machine

        selections += [
            (f"{FUZZ_STRATEGY_LEVEL.value}/{machine}",
             SelectionConfig(level=FUZZ_STRATEGY_LEVEL),
             resolve_machine(machine))
            for machine in machines
        ]
    for tag, selection, machine_spec in selections:
        partition = select_tasks(
            parse_program(text), selection,
            max_profile_instructions=max_instructions,
        )
        prog = partition.program
        divergences.extend(
            f"{tag}: partition: {i}"
            for i in partition_issues(prog, partition)
        )
        trace = partition.profile_trace or run_program(
            prog, max_instructions=max_instructions
        )
        stream = build_task_stream(trace, partition)
        release = ReleaseAnalysis(partition)
        results = {}
        for engine in engines:
            if machine_spec is not None:
                config = SimConfig(engine=engine, machine=machine_spec)
            else:
                config = SimConfig(engine=engine).scaled_for_pus(n_pus)
            monitor = InvariantMonitor()
            machine = MultiscalarMachine(
                stream, config, release, monitor,
                label=f"fuzz-check/{tag}/{engine}",
            )
            try:
                sim_result = machine.run()
            except InvariantViolation as exc:
                divergences.append(
                    f"{tag}[{engine}]: invariant violation: {exc}"
                )
                continue
            results[engine] = sim_result
            divergences.extend(
                f"{tag}[{engine}]: {d}"
                for d in check_commit_log(monitor.commit_log, len(trace))
            )
            ref_trace, ref_state = sequential_reference(prog)
            replay_state, replay_div = replay_commits(
                prog, trace, monitor.commit_log
            )
            divergences.extend(
                f"{tag}[{engine}]: {d}" for d in replay_div
            )
            divergences.extend(
                f"{tag}[{engine}]: {d}"
                for d in compare_states(ref_state, replay_state)
            )
        baseline_engine = "reference" if "reference" in results else "fast"
        baseline = results.get(baseline_engine)
        if baseline is None:
            continue
        for engine, sim_result in results.items():
            if engine == baseline_engine:
                continue
            for field_name in (
                "cycles", "committed_instructions", "dynamic_tasks",
                "task_predictions", "task_mispredictions",
                "control_squashes", "memory_squashes", "branch_count",
            ):
                a = getattr(sim_result, field_name)
                b = getattr(baseline, field_name)
                if a != b:
                    divergences.append(
                        f"{tag}: engines diverge on "
                        f"{field_name}: {engine}={a!r} "
                        f"{baseline_engine}={b!r}"
                    )
    return divergences
