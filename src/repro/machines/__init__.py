"""Machine-description subsystem: per-PU profiles, presets, topology.

* :class:`~repro.machines.spec.MachineSpec` — a named, hashable,
  schema-versioned machine: per-PU :class:`~repro.machines.spec
  .PUProfile` overrides (issue/fetch width, FU counts, per-opclass
  latency extras), ring/ARB topology, and the inter-task predictor
  kind (``path`` | ``gshare`` | ``hybrid``).
* :mod:`~repro.machines.registry` — named presets (``paper-4x2``,
  ``big-little-8``, ``manycore-32/64/128``, ...), each validated at
  import, resolved through :func:`resolve_machine`.

``SimConfig(machine="big-little-8")`` resolves through this package;
all three simulation engines honour the per-PU profiles, and a spec
whose profiles inherit everything is bit-identical to the legacy
homogeneous configuration.
"""

from repro.machines.registry import (
    MACHINE_PRESETS,
    arb_entries_for,
    describe_machines,
    get_machine,
    homogeneous,
    machine_names,
    resolve_machine,
    ring_hop_for,
)
from repro.machines.spec import (
    LAT_EXTRA_CLASSES,
    PREDICTOR_KINDS,
    SCHEMA_VERSION,
    MachineSpec,
    MachineSpecError,
    PUProfile,
    validate_machine,
    with_predictor,
)

__all__ = [
    "LAT_EXTRA_CLASSES",
    "MACHINE_PRESETS",
    "MachineSpec",
    "MachineSpecError",
    "PREDICTOR_KINDS",
    "PUProfile",
    "SCHEMA_VERSION",
    "arb_entries_for",
    "describe_machines",
    "get_machine",
    "homogeneous",
    "machine_names",
    "resolve_machine",
    "ring_hop_for",
    "validate_machine",
    "with_predictor",
]
