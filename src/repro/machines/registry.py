"""Named machine presets and their resolution.

The registry is the single place preset machines are defined; every
entry is validated at import time, so a bad preset fails the module
load, not a simulation.  ``resolve_machine`` is the front door used by
:class:`~repro.sim.config.SimConfig` (a ``machine="name"`` string
resolves here) and by every CLI surface that accepts ``--machine``.

Topology scaling: the paper's ring bypasses adjacent PUs in the same
cycle, which stops being credible past one board — :func:`ring_hop_for`
grows the per-hop latency with the ring's diameter, and manycore
presets halve the per-PU ARB (a 128-bank full-size ARB is the
centralized structure the paper argues away from).
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.machines.spec import (
    MachineSpec,
    PUProfile,
    validate_machine,
)


def ring_hop_for(n_pus: int) -> int:
    """Per-hop ring latency at ``n_pus`` (grows with ring diameter)."""
    if n_pus <= 8:
        return 1
    if n_pus <= 32:
        return 2
    if n_pus <= 64:
        return 3
    return 4


def arb_entries_for(n_pus: int) -> int:
    """Per-PU ARB entries at ``n_pus`` (halved past one board)."""
    return 32 if n_pus <= 8 else 16


def homogeneous(name: str, n_pus: int, predictor: str = "path",
                **profile_overrides) -> MachineSpec:
    """A spec of ``n_pus`` identical PUs with topology scaled for n."""
    profile = PUProfile(name="pu", **profile_overrides)
    return MachineSpec(
        name=name,
        pus=(profile,) * n_pus,
        ring_hop_latency=ring_hop_for(n_pus),
        arb_entries_per_pu=arb_entries_for(n_pus),
        predictor=predictor,
    )


#: a wide out-of-order core: double the paper's issue/fetch and ALUs
_BIG = PUProfile(name="big", issue_width=4, fetch_width=4,
                 int_units=3, fp_units=2)
#: a narrow in-pipeline core: scalar issue, one extra cycle everywhere
_LITTLE = PUProfile(name="little", issue_width=1, fetch_width=1,
                    lat_extra=(1, 2, 1, 1))


def _presets() -> Dict[str, MachineSpec]:
    paper_4 = MachineSpec(name="paper-4x2", pus=(PUProfile(),) * 4)
    paper_8 = MachineSpec(name="paper-8x2", pus=(PUProfile(),) * 8)
    paper_8x1 = MachineSpec(
        name="paper-8x1",
        pus=(PUProfile(name="narrow", issue_width=1, fetch_width=1),) * 8,
    )
    big_little_8 = MachineSpec(
        name="big-little-8",
        pus=(_BIG,) * 4 + (_LITTLE,) * 4,
    )
    hetero_16 = MachineSpec(
        name="hetero-16",
        pus=(_BIG,) * 4 + (PUProfile(),) * 8 + (_LITTLE,) * 4,
        ring_hop_latency=ring_hop_for(16),
        arb_entries_per_pu=arb_entries_for(16),
        predictor="hybrid",
    )
    manycores = [
        homogeneous(f"manycore-{n}", n) for n in (32, 64, 128)
    ]
    specs = [paper_4, paper_8, paper_8x1, big_little_8, hetero_16]
    specs.extend(manycores)
    return {spec.name: spec for spec in specs}


MACHINE_PRESETS: Dict[str, MachineSpec] = _presets()

for _spec in MACHINE_PRESETS.values():
    validate_machine(_spec)


def machine_names() -> List[str]:
    """Preset names in registry (declaration) order."""
    return list(MACHINE_PRESETS)


def get_machine(name: str) -> MachineSpec:
    """The preset called ``name`` (ValueError names the known set)."""
    try:
        return MACHINE_PRESETS[name]
    except KeyError:
        known = ", ".join(machine_names())
        raise ValueError(
            f"unknown machine preset {name!r}; known: {known}"
        ) from None


def resolve_machine(value: Union[str, MachineSpec]) -> MachineSpec:
    """Resolve a preset name or pass through (and lint) a spec."""
    if isinstance(value, str):
        spec = get_machine(value)
    elif isinstance(value, MachineSpec):
        spec = value
    else:
        raise TypeError(
            f"machine must be a preset name or MachineSpec, "
            f"got {type(value).__name__}"
        )
    validate_machine(spec)
    return spec


def describe_machines() -> List[Dict]:
    """Machine-readable preset listing (``repro list --machines``)."""
    out: List[Dict] = []
    for name in machine_names():
        spec = MACHINE_PRESETS[name]
        out.append({
            "name": name,
            "n_pus": spec.n_pus,
            "predictor": spec.predictor,
            "ring_hop_latency": spec.ring_hop_latency,
            "ring_bandwidth": spec.ring_bandwidth,
            "arb_entries_per_pu": spec.arb_entries_per_pu,
            "arb_latency": spec.arb_latency,
            "hash": spec.machine_hash(),
            "pus": spec.as_dict()["pus"],
        })
    return out
