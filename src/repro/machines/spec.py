"""Machine descriptions: per-PU profiles composed into named specs.

A :class:`MachineSpec` is the declarative form of one Multiscalar
machine: an ordered tuple of :class:`PUProfile` entries (one per PU
around the ring), ring/ARB topology overrides, and the inter-task
predictor kind.  It is frozen, hashable, and schema-versioned, so it
can ride inside :class:`~repro.sim.config.SimConfig` and participate
in the harness's content hashes exactly like every other config
dataclass.

Profile fields default to ``None`` = *inherit the global SimConfig
value*; a spec whose every profile inherits everything is therefore
**bit-identical** to the legacy homogeneous configuration — the
invariant ``tests/test_machines.py`` sweeps across all three engines.
``lat_extra`` adds per-opclass execution latency (INT, FP, MEM,
BRANCH — :mod:`repro.sim.runstate` order) on top of each
instruction's base latency, modelling slower "little" cores without
touching the shared opcode tables.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, Optional, Tuple

#: machine-spec schema; bump when the field set changes incompatibly
SCHEMA_VERSION = 1

#: valid inter-task predictor kinds (see repro.predict.taskpred)
PREDICTOR_KINDS: Tuple[str, ...] = ("path", "gshare", "hybrid")

#: opclass order of ``PUProfile.lat_extra`` (matches OPCLASS_* indices)
LAT_EXTRA_CLASSES: Tuple[str, ...] = ("int", "fp", "mem", "branch")


class MachineSpecError(ValueError):
    """A machine spec failed validation (message says what and where)."""


@dataclass(frozen=True)
class PUProfile:
    """One processing unit's overrides (``None`` = inherit SimConfig)."""

    name: str = "pu"
    issue_width: Optional[int] = None
    fetch_width: Optional[int] = None
    int_units: Optional[int] = None
    fp_units: Optional[int] = None
    branch_units: Optional[int] = None
    mem_units: Optional[int] = None
    #: extra execution cycles per opclass (INT, FP, MEM, BRANCH) added
    #: to every instruction this PU issues; zeros = paper timing
    lat_extra: Tuple[int, int, int, int] = (0, 0, 0, 0)

    def __post_init__(self) -> None:
        if not isinstance(self.lat_extra, tuple):
            object.__setattr__(self, "lat_extra", tuple(self.lat_extra))


@dataclass(frozen=True)
class MachineSpec:
    """A named machine: per-PU profiles + topology + predictor."""

    name: str
    pus: Tuple[PUProfile, ...]
    schema_version: int = SCHEMA_VERSION
    #: ring egress values/cycle/PU (None = inherit SimConfig)
    ring_bandwidth: Optional[int] = None
    #: extra cycles per ring hop beyond the first (None = inherit)
    ring_hop_latency: Optional[int] = None
    #: ARB entries per PU (None = inherit)
    arb_entries_per_pu: Optional[int] = None
    #: ARB lookup latency (None = inherit)
    arb_latency: Optional[int] = None
    #: inter-task predictor: "path" (the paper's), "gshare" or "hybrid"
    predictor: str = "path"

    def __post_init__(self) -> None:
        if not isinstance(self.pus, tuple):
            object.__setattr__(self, "pus", tuple(self.pus))

    @property
    def n_pus(self) -> int:
        return len(self.pus)

    # --------------------------------------------------------- identity

    def as_dict(self) -> Dict:
        """JSON-ready form (the registry/CLI serialization)."""
        out = asdict(self)
        out["pus"] = [asdict(p) for p in self.pus]
        for entry in out["pus"]:
            entry["lat_extra"] = list(entry["lat_extra"])
        return out

    @classmethod
    def from_dict(cls, payload: Dict) -> "MachineSpec":
        """Inverse of :meth:`as_dict` (unknown keys are ignored)."""
        names = {f.name for f in fields(cls)}
        data = {k: v for k, v in payload.items() if k in names}
        pu_names = {f.name for f in fields(PUProfile)}
        pus = []
        for entry in data.get("pus", ()):
            kwargs = {k: v for k, v in entry.items() if k in pu_names}
            if "lat_extra" in kwargs:
                kwargs["lat_extra"] = tuple(kwargs["lat_extra"])
            pus.append(PUProfile(**kwargs))
        data["pus"] = tuple(pus)
        return cls(**data)

    def machine_hash(self) -> str:
        """Stable short content hash of the full spec."""
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def with_predictor(spec: MachineSpec, predictor: str) -> MachineSpec:
    """``spec`` with its predictor axis set to ``predictor``."""
    if predictor not in PREDICTOR_KINDS:
        raise MachineSpecError(
            f"machine {spec.name!r}: unknown predictor {predictor!r}; "
            f"known: {', '.join(PREDICTOR_KINDS)}"
        )
    if spec.predictor == predictor:
        return spec
    return replace(spec, predictor=predictor)


def validate_machine(spec: MachineSpec) -> None:
    """Lint one spec; raise :class:`MachineSpecError` on any problem.

    Runs at registry load (so a bad preset can never ship) and again
    on ``repro run --machine`` / ``repro scaling`` inputs, so a
    hand-built spec fails with a named, actionable message instead of
    a mid-simulation assertion.
    """
    where = f"machine {spec.name!r}"
    if not spec.name:
        raise MachineSpecError("machine spec needs a non-empty name")
    if spec.schema_version != SCHEMA_VERSION:
        raise MachineSpecError(
            f"{where}: schema_version {spec.schema_version} != "
            f"supported {SCHEMA_VERSION}"
        )
    n = len(spec.pus)
    if n < 1:
        raise MachineSpecError(f"{where}: needs at least one PU profile")
    if n & (n - 1):
        raise MachineSpecError(
            f"{where}: PU count {n} is not a power of two (the ring "
            "hop arithmetic and L1 bank scaling assume one)"
        )
    if spec.ring_bandwidth is not None and spec.ring_bandwidth < 1:
        raise MachineSpecError(
            f"{where}: ring_bandwidth must be >= 1, "
            f"got {spec.ring_bandwidth}"
        )
    if spec.ring_hop_latency is not None and spec.ring_hop_latency < 0:
        raise MachineSpecError(
            f"{where}: ring_hop_latency must be >= 0, "
            f"got {spec.ring_hop_latency}"
        )
    if spec.arb_entries_per_pu is not None and spec.arb_entries_per_pu < 0:
        raise MachineSpecError(
            f"{where}: arb_entries_per_pu must be >= 0, "
            f"got {spec.arb_entries_per_pu}"
        )
    if spec.arb_latency is not None and spec.arb_latency < 1:
        raise MachineSpecError(
            f"{where}: arb_latency must be >= 1, got {spec.arb_latency}"
        )
    if spec.predictor not in PREDICTOR_KINDS:
        raise MachineSpecError(
            f"{where}: unknown predictor {spec.predictor!r}; "
            f"known: {', '.join(PREDICTOR_KINDS)}"
        )
    for i, pu in enumerate(spec.pus):
        pu_where = f"{where}, PU {i} ({pu.name!r})"
        for attr in ("issue_width", "fetch_width"):
            value = getattr(pu, attr)
            if value is not None and value < 1:
                raise MachineSpecError(
                    f"{pu_where}: {attr} must be >= 1, got {value}"
                )
        for attr in ("int_units", "fp_units", "branch_units", "mem_units"):
            value = getattr(pu, attr)
            if value is not None and value < 1:
                raise MachineSpecError(
                    f"{pu_where}: {attr} must be >= 1 — every PU needs "
                    f"at least one unit of each class, got {value}"
                )
        if len(pu.lat_extra) != len(LAT_EXTRA_CLASSES):
            raise MachineSpecError(
                f"{pu_where}: lat_extra needs "
                f"{len(LAT_EXTRA_CLASSES)} entries "
                f"({'/'.join(LAT_EXTRA_CLASSES)}), "
                f"got {len(pu.lat_extra)}"
            )
        for cls_name, extra in zip(LAT_EXTRA_CLASSES, pu.lat_extra):
            if not isinstance(extra, int) or extra < 0:
                raise MachineSpecError(
                    f"{pu_where}: lat_extra[{cls_name}] must be a "
                    f"non-negative int, got {extra!r}"
                )
