"""Campaign service: async job queue, worker sharding, HTTP API.

This package turns the batch harness into a long-running server.
Submissions (``figure5``, ``table1``, ``breakdown``, ``centralized``,
``ablation``, ``fuzz``) become jobs; each job's grid expands to
:class:`~repro.harness.spec.RunSpec` cells, shards across a worker
pool by content hash, executes through the existing scheduler
(retry, backoff, cache, ledger semantics intact), and assembles its
result by replaying the original driver against the now-warm cache —
so a job's output is byte-identical to the equivalent direct
``repro <grid> --jobs 1`` invocation, and resubmitting a finished
grid completes with zero new simulations.

Layers, bottom up:

* :mod:`~repro.service.jobs` — request validation, grid expansion,
  the job state machine, result assembly;
* :mod:`~repro.service.journal` — crash-safe JSONL journal +
  per-job ledgers/results on disk; replay = service-level --resume;
* :mod:`~repro.service.queue` — the asyncio queue, dispatcher and
  worker pools (process / thread / inline);
* :mod:`~repro.service.api` — stdlib ``ThreadingHTTPServer`` routes;
* :mod:`~repro.service.server` — :class:`CampaignService`, the
  process that ties the loop thread and HTTP thread together;
* :mod:`~repro.service.client` — :class:`ServiceClient`, the urllib
  client the CLI and tests speak;
* :mod:`~repro.service.chaos` — seeded fault injection
  (:class:`ChaosPlan`) and the convergence-proving campaign behind
  ``repro chaos``.

Robustness contract: shard watchdogs retry hung/killed workers on
fresh pools; persistently failing shards bisect down to quarantined
poison specs instead of failing jobs; admission control answers 429
with ``Retry-After`` past ``max_queue_depth``; SIGTERM drains (the
journal checkpoints and a restarted server resumes byte-identically).
"""

from repro.service.chaos import (
    ChaosPlan,
    ChaosReport,
    PoisonSpecError,
    run_chaos_campaign,
)
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    parse_grid_arg,
)
from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobError,
    JobRequest,
    assemble_result,
    expand_specs,
)
from repro.service.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalReplay,
    ServiceJournal,
    replay_journal,
)
from repro.service.queue import (
    EXECUTOR_KINDS,
    SERVICE_STATES,
    JobQueue,
    ServiceDraining,
    ServiceSaturated,
    WorkerKilled,
)
from repro.service.server import CampaignService, default_journal_root

__all__ = [
    "CampaignService",
    "ChaosPlan",
    "ChaosReport",
    "EXECUTOR_KINDS",
    "JOB_KINDS",
    "JOB_STATES",
    "JOURNAL_SCHEMA_VERSION",
    "Job",
    "JobError",
    "JobQueue",
    "JobRequest",
    "JournalReplay",
    "PoisonSpecError",
    "SERVICE_STATES",
    "ServiceClient",
    "ServiceDraining",
    "ServiceError",
    "ServiceJournal",
    "ServiceSaturated",
    "ServiceUnavailable",
    "TERMINAL_STATES",
    "WorkerKilled",
    "assemble_result",
    "default_journal_root",
    "expand_specs",
    "parse_grid_arg",
    "replay_journal",
    "run_chaos_campaign",
]
