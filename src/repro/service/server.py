"""The campaign service process: event loop + queue + HTTP server.

``CampaignService`` owns the three moving parts and their threads:

* an asyncio event loop running in a daemon thread — the only place
  queue state mutates;
* the :class:`~repro.service.queue.JobQueue` with its worker pool;
* a ``ThreadingHTTPServer`` in a second daemon thread, serving the
  API in :mod:`repro.service.api`.

``start()`` replays the journal (resuming any jobs that were in
flight when the previous process died) and binds the port;
``stop()`` tears everything down in reverse.  Tests run the whole
service in-process on port 0 with the ``"thread"`` executor; the CLI
(``repro serve``) runs it in the foreground with process workers.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path
from typing import Optional

from repro.harness.cache import ArtifactCache
from repro.service.api import ServiceAPI, make_http_server
from repro.service.journal import ServiceJournal
from repro.service.queue import JobQueue

#: default journal directory, relative to the cache root
DEFAULT_JOURNAL_DIRNAME = "service"


def default_journal_root(cache: ArtifactCache) -> Path:
    return Path(cache.root) / DEFAULT_JOURNAL_DIRNAME


class CampaignService:
    """One running campaign server (loop thread + HTTP thread)."""

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        journal_root=None,
        host: str = "127.0.0.1",
        port: int = 8753,
        workers: int = 2,
        executor: str = "process",
        retries: int = 1,
        backoff: float = 0.05,
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        root = (
            Path(journal_root) if journal_root is not None
            else default_journal_root(self.cache)
        )
        self.journal = ServiceJournal(root)
        self.queue = JobQueue(
            self.cache, self.journal,
            workers=workers, executor=executor,
            retries=retries, backoff=backoff,
        )
        self.host = host
        self.port = port
        self.resumed = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._http = None
        self._http_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spin up the loop, replay the journal, bind the port."""
        if self._loop is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run_loop() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._loop_thread = threading.Thread(
            target=run_loop, name="repro-service-loop", daemon=True
        )
        self._loop_thread.start()
        started.wait()
        self.resumed = asyncio.run_coroutine_threadsafe(
            self.queue.start(), self._loop
        ).result(60)
        api = ServiceAPI(self.queue, self._loop)
        self._http = make_http_server(self.host, self.port, api)
        self.port = self._http.server_address[1]  # resolve port 0
        self._http_thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-service-http", daemon=True,
        )
        self._http_thread.start()

    def stop(self) -> None:
        """Stop accepting requests, drain the pool, stop the loop.

        Journal state survives — a later ``start()`` on the same
        journal root resumes whatever was still in flight.
        """
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            self._http = None
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self.queue.close(), self._loop
            ).result(60)
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=10)
            self._loop.close()
            self._loop = None
            self._loop_thread = None

    # -- conveniences (tests, CLI) -------------------------------------

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "CampaignService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Block until interrupted (the ``repro serve`` foreground)."""
        try:
            while self._http_thread is not None and (
                self._http_thread.is_alive()
            ):
                self._http_thread.join(timeout=1.0)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()
