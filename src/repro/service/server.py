"""The campaign service process: event loop + queue + HTTP server.

``CampaignService`` owns the three moving parts and their threads:

* an asyncio event loop running in a daemon thread — the only place
  queue state mutates;
* the :class:`~repro.service.queue.JobQueue` with its worker pool;
* a ``ThreadingHTTPServer`` in a second daemon thread, serving the
  API in :mod:`repro.service.api`.

``start()`` replays the journal (resuming any jobs that were in
flight when the previous process died) and binds the port;
``stop()`` tears everything down in reverse; :meth:`drain` is the
*graceful* teardown — refuse new work, give in-flight shards a grace
period, checkpoint the journal, and only then stop, so a restarted
server resumes whatever the drain abandoned and converges to the
same bytes.  ``repro serve`` installs :meth:`install_sigterm_drain`
so orchestrators get drain semantics from a plain SIGTERM.

Tests run the whole service in-process on port 0 with the
``"thread"`` executor; the CLI (``repro serve``) runs it in the
foreground with process workers.  The chaos harness
(:mod:`repro.service.chaos`) threads a fault plan through ``chaos``
and ``journal_fault_hook``.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from pathlib import Path
from typing import Optional

from repro.harness.cache import ArtifactCache
from repro.service.api import ServiceAPI, make_http_server
from repro.service.journal import ServiceJournal
from repro.service.queue import JobQueue

#: default journal directory, relative to the cache root
DEFAULT_JOURNAL_DIRNAME = "service"


def default_journal_root(cache: ArtifactCache) -> Path:
    return Path(cache.root) / DEFAULT_JOURNAL_DIRNAME


class CampaignService:
    """One running campaign server (loop thread + HTTP thread)."""

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        journal_root=None,
        host: str = "127.0.0.1",
        port: int = 8753,
        workers: int = 2,
        executor: str = "process",
        retries: int = 1,
        backoff: float = 0.05,
        max_queue_depth: int = 64,
        max_inflight_shards: Optional[int] = None,
        shard_deadline_base: float = 60.0,
        shard_deadline_per_spec: float = 20.0,
        shard_retries: int = 2,
        journal_compact_bytes: int = 4 << 20,
        request_timeout: float = 30.0,
        chaos=None,
        journal_fault_hook=None,
    ) -> None:
        self.cache = cache if cache is not None else ArtifactCache()
        root = (
            Path(journal_root) if journal_root is not None
            else default_journal_root(self.cache)
        )
        self.journal = ServiceJournal(root, fault_hook=journal_fault_hook)
        self.queue = JobQueue(
            self.cache, self.journal,
            workers=workers, executor=executor,
            retries=retries, backoff=backoff,
            max_queue_depth=max_queue_depth,
            max_inflight_shards=max_inflight_shards,
            shard_deadline_base=shard_deadline_base,
            shard_deadline_per_spec=shard_deadline_per_spec,
            shard_retries=shard_retries,
            journal_compact_bytes=journal_compact_bytes,
            chaos=chaos,
        )
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.resumed = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._http = None
        self._http_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spin up the loop, replay the journal, bind the port."""
        if self._loop is not None:
            raise RuntimeError("service already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run_loop() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._loop_thread = threading.Thread(
            target=run_loop, name="repro-service-loop", daemon=True
        )
        self._loop_thread.start()
        started.wait()
        self.resumed = asyncio.run_coroutine_threadsafe(
            self.queue.start(), self._loop
        ).result(60)
        api = ServiceAPI(
            self.queue, self._loop, request_timeout=self.request_timeout,
        )
        self._http = make_http_server(self.host, self.port, api)
        self.port = self._http.server_address[1]  # resolve port 0
        self._http_thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-service-http", daemon=True,
        )
        self._http_thread.start()

    def stop(self) -> None:
        """Stop accepting requests, drop the pool, stop the loop.

        The *immediate* teardown: in-flight shards are abandoned to
        the journal (their jobs replay as queued on the next start).
        Journal state survives — a later ``start()`` on the same
        journal root resumes whatever was still in flight.
        """
        self._teardown_http()
        if self._loop is not None:
            asyncio.run_coroutine_threadsafe(
                self.queue.close(), self._loop
            ).result(60)
            self._teardown_loop()

    def drain(self, grace: float = 30.0) -> dict:
        """Graceful teardown: finish what fits in ``grace``, checkpoint.

        While draining, ``/healthz`` reports ``draining`` and new
        submissions get 503 — readers keep working until the end.
        Returns the queue's drain summary (requeued job ids, whether
        the journal's pending buffer flushed).
        """
        if self._loop is None:
            return {"requeued": [], "already_stopped": True}
        info = asyncio.run_coroutine_threadsafe(
            self.queue.drain(grace), self._loop
        ).result(grace + 60)
        self._teardown_http()
        self._teardown_loop()
        return info

    def install_sigterm_drain(self, grace: float = 30.0) -> None:
        """Make SIGTERM drain instead of kill (main thread only).

        This is the contract orchestrators expect: on SIGTERM the
        server checkpoints its journal, requeues unfinished work, and
        exits; the replacement process resumes to byte-identical
        results.
        """

        def _handler(signum, frame):  # noqa: ARG001 — signal signature
            self.drain(grace)

        signal.signal(signal.SIGTERM, _handler)

    def _teardown_http(self) -> None:
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            self._http = None

    def _teardown_loop(self) -> None:
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10)
        self._loop.close()
        self._loop = None
        self._loop_thread = None

    # -- conveniences (tests, CLI) -------------------------------------

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "CampaignService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Block until interrupted (the ``repro serve`` foreground)."""
        try:
            while self._http_thread is not None and (
                self._http_thread.is_alive()
            ):
                self._http_thread.join(timeout=1.0)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()
