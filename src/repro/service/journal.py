"""Crash-safe queue-state persistence for the campaign service.

The journal is to the job queue what the run ledger is to a grid: an
append-only, schema-versioned JSONL file that records every
submission and every state transition::

    {"ts": 1699.2, "journal_schema": 1, "event": "submitted",
     "job_id": "figure5-ab12cd34ef56-1", "job_seq": 1,
     "request": {"kind": "figure5", "params": {...}}, "cells": 16}
    {"ts": ..., "journal_schema": 1, "event": "state",
     "job_id": "...", "state": "running"}
    {"ts": ..., "journal_schema": 1, "event": "state",
     "job_id": "...", "state": "done", "misses": 16, "hits": 0}

Appends go through the harness's single-write
:func:`~repro.harness.ledger.append_jsonl_line`, so a server killed
mid-append leaves at worst one torn tail line, which
:func:`replay_journal` skips — exactly the tolerant-reader contract
the run ledger already obeys.  Replaying the journal after a restart
reconstructs every job's final state; jobs that were ``queued`` or
``running`` when the process died are re-enqueued, and their
completed cells resolve as artifact-cache hits, so a resumed job
finishes exactly like ``--resume`` finishes an interrupted grid.

Alongside the journal file the service keeps per-job artefacts under
the same directory::

    journal.jsonl            the queue journal (this module)
    ledgers/<job_id>.jsonl   per-job run ledger (shard workers append)
    results/<job_id>.json    the assembled result document
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.harness.ledger import append_jsonl_line
from repro.service.jobs import TERMINAL_STATES, Job, JobRequest

#: current journal schema; bump when the event shape changes
JOURNAL_SCHEMA_VERSION = 1


class ServiceJournal:
    """Appends queue events under a journal directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- paths ---------------------------------------------------------

    @property
    def path(self) -> Path:
        return self.root / "journal.jsonl"

    def ledger_path(self, job_id: str) -> Path:
        return self.root / "ledgers" / f"{job_id}.jsonl"

    def result_path(self, job_id: str) -> Path:
        return self.root / "results" / f"{job_id}.json"

    # -- writes --------------------------------------------------------

    def _append(self, event: str, **detail) -> None:
        payload = {
            "ts": round(time.time(), 3),
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "event": event,
        }
        payload.update(detail)
        append_jsonl_line(self.path, payload)

    def submitted(self, job: Job, job_seq: int) -> None:
        self._append(
            "submitted",
            job_id=job.job_id,
            job_seq=job_seq,
            request=job.request.payload(),
            cells=job.cells,
        )

    def state(self, job: Job, **detail) -> None:
        self._append("state", job_id=job.job_id, state=job.state, **detail)

    def write_result(self, job_id: str, result: Dict) -> None:
        """Persist the assembled result document (atomic enough: the
        journal's ``done`` event is only appended afterwards, so a
        crash between the two re-runs assembly on resume)."""
        path = self.result_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def read_result(self, job_id: str) -> Optional[Dict]:
        path = self.result_path(job_id)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None


@dataclass
class JournalReplay:
    """Everything :func:`replay_journal` reconstructs."""

    #: job_id -> Job, with final journalled state
    jobs: Dict[str, Job] = field(default_factory=dict)
    #: submission order of every job (job_ids)
    order: List[str] = field(default_factory=list)
    #: highest job_seq seen (the next submission continues from here)
    last_seq: int = 0

    @property
    def unfinished(self) -> List[Job]:
        """Jobs to re-enqueue, in their original submission order."""
        return [
            self.jobs[job_id] for job_id in self.order
            if not self.jobs[job_id].terminal
        ]


def replay_journal(path) -> JournalReplay:
    """Reconstruct queue state from a journal file.

    Torn or malformed lines are skipped (single-write appends mean
    only the tail can tear); unknown events and unknown fields are
    ignored, so old servers read journals written by newer ones.
    State transitions are applied through the same
    :meth:`~repro.service.jobs.Job.transition` state machine the live
    queue uses — an illegal edge in a (hand-edited or truncated)
    journal degrades to keeping the last legal state rather than
    crashing the server at startup.
    """
    replay = JournalReplay()
    path = Path(path)
    if not path.exists():
        return replay
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail
            if not isinstance(entry, dict):
                continue
            event = entry.get("event")
            job_id = entry.get("job_id")
            if not job_id:
                continue
            if event == "submitted":
                request = entry.get("request") or {}
                try:
                    job = Job(
                        job_id=job_id,
                        request=JobRequest(
                            kind=request.get("kind", ""),
                            params=dict(request.get("params", {})),
                        ),
                        cells=int(entry.get("cells", 0)),
                        submitted_ts=float(entry.get("ts", 0.0)),
                    )
                except (TypeError, ValueError):
                    continue
                replay.jobs[job_id] = job
                if job_id not in replay.order:
                    replay.order.append(job_id)
                seq = entry.get("job_seq")
                if isinstance(seq, int) and seq > replay.last_seq:
                    replay.last_seq = seq
            elif event == "state":
                job = replay.jobs.get(job_id)
                state = entry.get("state")
                if job is None or not isinstance(state, str):
                    continue
                try:
                    job.transition(state)
                except ValueError:
                    continue
                if state == "running":
                    job.started_ts = entry.get("ts")
                if state in TERMINAL_STATES:
                    job.finished_ts = entry.get("ts")
                    job.error = entry.get("error")
                    job.misses = entry.get("misses")
                    job.hits = entry.get("hits")
    return replay
