"""Crash-safe queue-state persistence for the campaign service.

The journal is to the job queue what the run ledger is to a grid: an
append-only, schema-versioned JSONL file that records every
submission and every state transition::

    {"ts": 1699.2, "journal_schema": 1, "event": "submitted",
     "job_id": "figure5-ab12cd34ef56-1", "job_seq": 1,
     "request": {"kind": "figure5", "params": {...}}, "cells": 16}
    {"ts": ..., "journal_schema": 1, "event": "state",
     "job_id": "...", "state": "running"}
    {"ts": ..., "journal_schema": 1, "event": "poisoned",
     "job_id": "...", "spec_hash": "ab12..", "spec": "compress/..."}
    {"ts": ..., "journal_schema": 1, "event": "state",
     "job_id": "...", "state": "done", "misses": 16, "hits": 0}

Appends go through the harness's single-write
:func:`~repro.harness.ledger.append_jsonl_line`, so a server killed
mid-append leaves at worst one torn tail line, which
:func:`replay_journal` skips — exactly the tolerant-reader contract
the run ledger already obeys.  Replaying the journal after a restart
reconstructs every job's final state; jobs that were ``queued`` or
``running`` when the process died are re-enqueued, and their
completed cells resolve as artifact-cache hits, so a resumed job
finishes exactly like ``--resume`` finishes an interrupted grid.

Disk failures degrade instead of crashing the queue: an append that
raises ``OSError`` (ENOSPC, a yanked volume, an injected chaos
fault) parks the event on a bounded in-memory **pending buffer** and
every later append retries the buffer first, so a transient disk
error costs nothing once the disk recovers.  :meth:`flush` drains
the buffer explicitly — the drain path calls it so a SIGTERM
checkpoint gets every event onto disk that the disk will take.
While events are pending the service reports itself ``degraded``
(see ``JobQueue.service_state``).

A journal that only ever grows would eventually become the disk
problem it guards against, so :meth:`maybe_compact` rewrites it once
it exceeds a size threshold: replay the file, then atomically
replace it with one ``submitted`` line, any ``poisoned`` lines, and
one terminal ``state`` line per job — dropping the intermediate
``running``/``resumed``/note chatter that dominates a long-lived
server's journal.

Alongside the journal file the service keeps per-job artefacts under
the same directory::

    journal.jsonl            the queue journal (this module)
    ledgers/<job_id>.jsonl   per-job run ledger (shard workers append)
    results/<job_id>.json    the assembled result document
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.harness.ledger import append_jsonl_line
from repro.service.jobs import TERMINAL_STATES, Job, JobRequest

#: current journal schema; bump when the event shape changes
JOURNAL_SCHEMA_VERSION = 1

#: events parked on the pending buffer before the oldest are dropped
PENDING_LIMIT = 256


class ServiceJournal:
    """Appends queue events under a journal directory.

    ``fault_hook`` is a test/chaos seam: a callable invoked with each
    payload about to be written; raising ``OSError`` from it simulates
    a failing disk (the event is buffered exactly like a real ENOSPC).
    ``on_write_error`` is called once per failed write attempt — the
    queue wires it to a metrics counter.
    """

    def __init__(
        self,
        root,
        fault_hook: Optional[Callable[[dict], None]] = None,
        on_write_error: Optional[Callable[[], None]] = None,
    ) -> None:
        self.root = Path(root)
        self.fault_hook = fault_hook
        self.on_write_error = on_write_error
        self.write_errors = 0
        self.dropped_events = 0
        self.compactions = 0
        self._pending: List[dict] = []

    # -- paths ---------------------------------------------------------

    @property
    def path(self) -> Path:
        return self.root / "journal.jsonl"

    def ledger_path(self, job_id: str) -> Path:
        return self.root / "ledgers" / f"{job_id}.jsonl"

    def result_path(self, job_id: str) -> Path:
        return self.root / "results" / f"{job_id}.json"

    # -- writes --------------------------------------------------------

    def _append(self, event: str, **detail) -> None:
        payload = {
            "ts": round(time.time(), 3),
            "journal_schema": JOURNAL_SCHEMA_VERSION,
            "event": event,
        }
        payload.update(detail)
        self._pending.append(payload)
        self.flush()

    def flush(self) -> bool:
        """Write every pending event; True when the buffer drained.

        Failed writes leave the remaining events pending (oldest
        first, so the on-disk order still matches the event order).
        When the buffer overflows :data:`PENDING_LIMIT` the oldest
        events are dropped and counted — bounded memory beats an
        unbounded queue on a dead disk.
        """
        while self._pending:
            payload = self._pending[0]
            try:
                if self.fault_hook is not None:
                    self.fault_hook(payload)
                append_jsonl_line(self.path, payload)
            except OSError:
                self.write_errors += 1
                if self.on_write_error is not None:
                    self.on_write_error()
                overflow = len(self._pending) - PENDING_LIMIT
                if overflow > 0:
                    del self._pending[:overflow]
                    self.dropped_events += overflow
                return False
            self._pending.pop(0)
        return True

    @property
    def pending_events(self) -> int:
        """Events buffered in memory waiting for the disk to recover."""
        return len(self._pending)

    def submitted(self, job: Job, job_seq: int) -> None:
        self._append(
            "submitted",
            job_id=job.job_id,
            job_seq=job_seq,
            request=job.request.payload(),
            cells=job.cells,
        )

    def state(self, job: Job, **detail) -> None:
        self._append("state", job_id=job.job_id, state=job.state, **detail)

    def poisoned(self, job: Job, spec_hash: str, spec: str) -> None:
        """One quarantined RunSpec: the job continues without it."""
        self._append(
            "poisoned", job_id=job.job_id, spec_hash=spec_hash, spec=spec,
        )

    def note(self, event: str, **detail) -> None:
        """A service lifecycle event not tied to one job (e.g. drain).

        Replay ignores events without a ``job_id``, so notes are pure
        observability — they never change reconstructed state.
        """
        self._append(event, **detail)

    def write_result(self, job_id: str, result: Dict) -> None:
        """Persist the assembled result document (atomic enough: the
        journal's ``done`` event is only appended afterwards, so a
        crash between the two re-runs assembly on resume)."""
        path = self.result_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def read_result(self, job_id: str) -> Optional[Dict]:
        path = self.result_path(job_id)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    # -- compaction ----------------------------------------------------

    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def maybe_compact(self, threshold_bytes: int) -> bool:
        """Compact the journal when it exceeds ``threshold_bytes``.

        Returns True when a compaction happened.  Skipped while
        events are pending (compacting around a failing disk would
        race the retry buffer).
        """
        if threshold_bytes <= 0 or self.size_bytes() <= threshold_bytes:
            return False
        if not self.flush():
            return False
        return self.compact()

    def compact(self) -> bool:
        """Rewrite the journal as the minimal equivalent event stream.

        Per job, in the original submission order: the ``submitted``
        event, every ``poisoned`` event, and (for jobs that reached a
        terminal state) one final ``state`` event.  Queued and running
        jobs keep only their submission — replay re-enqueues them
        either way.  The rewrite goes through a temp file +
        ``os.replace`` so a crash mid-compaction leaves the old
        journal intact.
        """
        replay = replay_journal(self.path)
        lines: List[str] = []
        for job_id in replay.order:
            job = replay.jobs[job_id]
            lines.append(json.dumps({
                "ts": job.submitted_ts,
                "journal_schema": JOURNAL_SCHEMA_VERSION,
                "event": "submitted",
                "job_id": job_id,
                "job_seq": replay.seqs.get(job_id, 0),
                "request": job.request.payload(),
                "cells": job.cells,
            }))
            for spec_hash in job.poisoned:
                lines.append(json.dumps({
                    "journal_schema": JOURNAL_SCHEMA_VERSION,
                    "event": "poisoned",
                    "job_id": job_id,
                    "spec_hash": spec_hash,
                }))
            if job.terminal:
                if job.state != "cancelled":
                    # replay walks the legal state machine, and
                    # done/failed are only reachable via running —
                    # keep that edge or the terminal event is inert
                    lines.append(json.dumps({
                        "ts": job.started_ts,
                        "journal_schema": JOURNAL_SCHEMA_VERSION,
                        "event": "state",
                        "job_id": job_id,
                        "state": "running",
                    }))
                lines.append(json.dumps({
                    "ts": job.finished_ts,
                    "journal_schema": JOURNAL_SCHEMA_VERSION,
                    "event": "state",
                    "job_id": job_id,
                    "state": job.state,
                    "error": job.error,
                    "misses": job.misses,
                    "hits": job.hits,
                }))
        tmp = self.path.parent / f".{self.path.name}.{uuid.uuid4().hex[:8]}.tmp"
        try:
            tmp.write_text(
                "".join(line + "\n" for line in lines), encoding="utf-8"
            )
            os.replace(tmp, self.path)
        except OSError:
            self.write_errors += 1
            if self.on_write_error is not None:
                self.on_write_error()
            return False
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.compactions += 1
        return True


@dataclass
class JournalReplay:
    """Everything :func:`replay_journal` reconstructs."""

    #: job_id -> Job, with final journalled state
    jobs: Dict[str, Job] = field(default_factory=dict)
    #: submission order of every job (job_ids)
    order: List[str] = field(default_factory=list)
    #: highest job_seq seen (the next submission continues from here)
    last_seq: int = 0
    #: job_id -> its journalled job_seq (compaction preserves these)
    seqs: Dict[str, int] = field(default_factory=dict)

    @property
    def unfinished(self) -> List[Job]:
        """Jobs to re-enqueue, in their original submission order."""
        return [
            self.jobs[job_id] for job_id in self.order
            if not self.jobs[job_id].terminal
        ]


def replay_journal(path) -> JournalReplay:
    """Reconstruct queue state from a journal file.

    Torn or malformed lines are skipped (single-write appends mean
    only the tail can tear — but a disk that corrupted lines
    mid-file degrades to losing those events, not the whole journal);
    unknown events and unknown fields are ignored, so old servers
    read journals written by newer ones.  State transitions are
    applied through the same :meth:`~repro.service.jobs.Job.transition`
    state machine the live queue uses — an illegal edge in a
    (hand-edited or truncated) journal degrades to keeping the last
    legal state rather than crashing the server at startup.
    """
    replay = JournalReplay()
    path = Path(path)
    if not path.exists():
        return replay
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail or corrupted span
            if not isinstance(entry, dict):
                continue
            event = entry.get("event")
            job_id = entry.get("job_id")
            if not job_id or not isinstance(job_id, str):
                continue
            if event == "submitted":
                request = entry.get("request") or {}
                try:
                    job = Job(
                        job_id=job_id,
                        request=JobRequest(
                            kind=request.get("kind", ""),
                            params=dict(request.get("params", {})),
                        ),
                        cells=int(entry.get("cells", 0)),
                        submitted_ts=float(entry.get("ts", 0.0)),
                    )
                except (TypeError, ValueError):
                    continue
                replay.jobs[job_id] = job
                if job_id not in replay.order:
                    replay.order.append(job_id)
                seq = entry.get("job_seq")
                if isinstance(seq, int):
                    replay.seqs[job_id] = seq
                    if seq > replay.last_seq:
                        replay.last_seq = seq
            elif event == "poisoned":
                job = replay.jobs.get(job_id)
                spec_hash = entry.get("spec_hash")
                if job is None or not isinstance(spec_hash, str):
                    continue
                if spec_hash not in job.poisoned:
                    job.poisoned.append(spec_hash)
            elif event == "state":
                job = replay.jobs.get(job_id)
                state = entry.get("state")
                if job is None or not isinstance(state, str):
                    continue
                try:
                    job.transition(state)
                except ValueError:
                    continue
                if state == "running":
                    job.started_ts = entry.get("ts")
                if state in TERMINAL_STATES:
                    job.finished_ts = entry.get("ts")
                    job.error = entry.get("error")
                    job.misses = entry.get("misses")
                    job.hits = entry.get("hits")
    return replay
