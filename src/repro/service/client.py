"""Thin stdlib HTTP client for the campaign service.

``ServiceClient`` is what ``repro submit`` / ``repro jobs`` /
``repro fetch`` speak, and what tests use to drive an in-process
server.  It is deliberately simple — JSON in, JSON out — but not
naive about transport: a connection reset, refused connection, or
dropped socket mid-poll (a server restarting under an orchestrator,
a laptop waking up) is retried a bounded number of times with
full-jitter backoff before surfacing as ``ServiceUnavailable``.
*Application* errors are never retried here: a 4xx/5xx answer is the
server speaking, and what to do with a 429's ``Retry-After`` is the
caller's policy (``ServiceError.retry_after`` carries it).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.harness.scheduler import backoff_delay


class ServiceUnavailable(RuntimeError):
    """The server could not be reached (after transport retries)."""


class ServiceError(RuntimeError):
    """The server answered with an error status.

    ``retry_after`` is the parsed ``Retry-After`` header (seconds)
    when the server sent one — 429 and 503 responses do — so callers
    can obey the server's own backpressure estimate.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """Talks to one campaign server at ``base_url``.

    ``retries`` bounds transport-level retries per request (connection
    refused/reset, DNS hiccups); ``backoff`` seeds the full-jitter
    delay between them.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 3, backoff: float = 0.2) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> tuple:
        """One HTTP exchange -> ``(status, text, retry_after)``.

        Transport failures retry with full-jitter backoff; HTTP error
        *responses* return normally — reaching the server and being
        told "no" are different failures with different remedies.
        """
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempt = 0
        while True:
            request = urllib.request.Request(
                url, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as resp:
                    return (
                        resp.status,
                        resp.read().decode("utf-8"),
                        _parse_retry_after(resp.headers),
                    )
            except urllib.error.HTTPError as exc:
                return (
                    exc.code,
                    exc.read().decode("utf-8"),
                    _parse_retry_after(exc.headers),
                )
            except (urllib.error.URLError, OSError) as exc:
                if attempt >= self.retries:
                    raise ServiceUnavailable(
                        f"cannot reach campaign service at "
                        f"{self.base_url} after {attempt + 1} "
                        f"attempt(s): {exc}"
                    ) from exc
                time.sleep(backoff_delay(attempt, self.backoff, cap=5.0))
                attempt += 1

    def _json(self, method: str, path: str,
              body: Optional[dict] = None) -> dict:
        status, text, retry_after = self._request(method, path, body)
        try:
            payload = json.loads(text)
        except ValueError:
            payload = {"error": text.strip() or f"HTTP {status}"}
        if status >= 400:
            raise ServiceError(
                status, payload.get("error", f"HTTP {status}"),
                retry_after=retry_after,
            )
        return payload

    # -- API surface ---------------------------------------------------

    def submit(self, kind: str, params: Optional[dict] = None) -> dict:
        payload = {"kind": kind, "params": params or {}}
        return self._json("POST", "/jobs", payload)["job"]

    def jobs(self) -> List[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> bool:
        return self._json("POST", f"/jobs/{job_id}/cancel")["cancelled"]

    def ledger_lines(self, job_id: str) -> List[dict]:
        status, text, _ = self._request("GET", f"/jobs/{job_id}/ledger")
        if status >= 400:
            raise ServiceError(status, text.strip())
        lines = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                lines.append(json.loads(line))
            except ValueError:
                continue  # torn tail: same tolerance as read_ledger
        return lines

    def record(self, spec_hash: str) -> dict:
        return self._json("GET", f"/records/{spec_hash}")

    def metrics(self) -> dict:
        return self._json("GET", "/metrics")

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the job reaches a terminal state.

        Returns the final ``GET /jobs/<id>`` view (job + result).
        Transport blips mid-poll are already retried by
        ``_request``, so a server restart under this loop costs a
        few polls, not the wait.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["job"]["state"] in ("done", "failed", "cancelled"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['job']['state']!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)


def _parse_retry_after(headers) -> Optional[float]:
    """Seconds from a ``Retry-After`` header, if present and numeric."""
    if headers is None:
        return None
    value = headers.get("Retry-After")
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def parse_grid_arg(grid: str) -> Dict[str, object]:
    """Turn a CLI grid argument into a submission payload.

    Accepts the campaign names the CLI already uses — ``figure5``,
    ``table1``, ``breakdown``, ``centralized``, ``scaling``,
    ``fuzz`` — plus ``ablation:<sweep>`` for the six ablation sweeps.
    """
    grid = grid.strip()
    if grid.startswith("ablation:"):
        sweep = grid.split(":", 1)[1]
        return {"kind": "ablation", "params": {"sweep": sweep}}
    return {"kind": grid, "params": {}}
