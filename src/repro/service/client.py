"""Thin stdlib HTTP client for the campaign service.

``ServiceClient`` is what ``repro submit`` / ``repro jobs`` /
``repro fetch`` speak, and what tests use to drive an in-process
server.  It is deliberately dumb: JSON in, JSON out, no retries —
the service itself owns retry semantics for simulation work, and a
dead server should surface immediately as ``ServiceUnavailable``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional


class ServiceUnavailable(RuntimeError):
    """The server could not be reached at all."""


class ServiceError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talks to one campaign server at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> tuple:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.status, resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8")
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceUnavailable(
                f"cannot reach campaign service at {self.base_url}: {exc}"
            ) from exc

    def _json(self, method: str, path: str,
              body: Optional[dict] = None) -> dict:
        status, text = self._request(method, path, body)
        try:
            payload = json.loads(text)
        except ValueError:
            payload = {"error": text.strip() or f"HTTP {status}"}
        if status >= 400:
            raise ServiceError(
                status, payload.get("error", f"HTTP {status}")
            )
        return payload

    # -- API surface ---------------------------------------------------

    def submit(self, kind: str, params: Optional[dict] = None) -> dict:
        payload = {"kind": kind, "params": params or {}}
        return self._json("POST", "/jobs", payload)["job"]

    def jobs(self) -> List[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> bool:
        return self._json("POST", f"/jobs/{job_id}/cancel")["cancelled"]

    def ledger_lines(self, job_id: str) -> List[dict]:
        status, text = self._request("GET", f"/jobs/{job_id}/ledger")
        if status >= 400:
            raise ServiceError(status, text.strip())
        lines = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                lines.append(json.loads(line))
            except ValueError:
                continue  # torn tail: same tolerance as read_ledger
        return lines

    def record(self, spec_hash: str) -> dict:
        return self._json("GET", f"/records/{spec_hash}")

    def metrics(self) -> dict:
        return self._json("GET", "/metrics")

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the job reaches a terminal state.

        Returns the final ``GET /jobs/<id>`` view (job + result).
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["job"]["state"] in ("done", "failed", "cancelled"):
                return view
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['job']['state']!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)


def parse_grid_arg(grid: str) -> Dict[str, object]:
    """Turn a CLI grid argument into a submission payload.

    Accepts the campaign names the CLI already uses — ``figure5``,
    ``table1``, ``breakdown``, ``centralized``, ``fuzz`` — plus
    ``ablation:<sweep>`` for the six ablation sweeps.
    """
    grid = grid.strip()
    if grid.startswith("ablation:"):
        sweep = grid.split(":", 1)[1]
        return {"kind": "ablation", "params": {"sweep": sweep}}
    return {"kind": grid, "params": {}}
