"""The campaign service's HTTP API (stdlib only, no new deps).

Endpoints::

    POST /jobs                submit {"kind": ..., "params": {...}}
                              -> 202 {"job": {...}}
                              -> 429 + Retry-After when saturated
                              -> 503 while draining
                              -> 413 for oversized bodies
    GET  /jobs                -> {"jobs": [...]} submission-ordered
    GET  /jobs/<id>           -> {"job": {...}, "result": {...}|null}
    GET  /jobs/<id>/ledger    -> the per-job run ledger, raw JSONL
    POST /jobs/<id>/cancel    -> {"cancelled": true|false}
    GET  /records/<spec_hash> -> one cached RunRecord as JSON
    GET  /metrics             -> service counters/gauges + cache stats
    GET  /healthz             -> {"status": "healthy"|"degraded"
                                            |"draining", ...}

``GET /records/<spec_hash>`` is the "answers from cache in
milliseconds" path: it reads the content-addressed store directly —
no queue, no simulation — so any client that knows a spec hash (from
a ledger, a records JSON, or a previous submission) gets the full
record of that cell straight from disk.

The server is a ``ThreadingHTTPServer``: handler threads serve reads
from queue snapshots and files, and funnel mutations (submit/cancel)
onto the event loop with ``run_coroutine_threadsafe``.  Loop calls
are bounded by the server's ``request_timeout``; a loop that cannot
answer in time yields **503** (the service is overloaded or wedged,
and saying so beats an opaque 500), and admission-control rejections
map to **429** with a ``Retry-After`` header carrying the queue's
own estimate — backpressure a dumb retry loop can obey.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.harness.serialize import record_to_dict
from repro.service.jobs import JobError, JobRequest
from repro.service.queue import ServiceDraining, ServiceSaturated

#: bound on request bodies (a submission is a small JSON object)
MAX_BODY_BYTES = 1 << 20


class ServiceTimeout(RuntimeError):
    """The event loop did not answer within the request timeout."""


class _BadBody(ValueError):
    """A request body the server refuses (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceAPI:
    """Glue between HTTP handlers, the queue, and its event loop."""

    def __init__(
        self,
        queue,
        loop: asyncio.AbstractEventLoop,
        request_timeout: float = 30.0,
    ) -> None:
        self.queue = queue
        self.loop = loop
        self.request_timeout = request_timeout

    def _call(self, coro, timeout: Optional[float] = None):
        """Run a queue coroutine from a handler thread, bounded.

        The bound is the server-configured ``request_timeout`` unless
        a caller overrides it.  On expiry the pending call is
        cancelled (so an abandoned submit cannot fire minutes later
        behind the client's back) and :class:`ServiceTimeout` maps to
        a 503 — the honest answer when the loop is wedged.
        """
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        try:
            return future.result(
                self.request_timeout if timeout is None else timeout
            )
        except FutureTimeout:
            future.cancel()
            raise ServiceTimeout(
                f"service event loop did not answer within "
                f"{self.request_timeout:.0f}s"
            )

    def submit(self, payload: dict) -> dict:
        request = JobRequest.from_payload(payload)
        job = self._call(self.queue.submit(request))
        return job.as_dict()

    def cancel(self, job_id: str) -> bool:
        return self._call(self.queue.cancel(job_id))

    def job_view(self, job_id: str) -> Optional[dict]:
        job = self.queue.jobs.get(job_id)
        if job is None:
            return None
        view = {"job": job.as_dict(), "result": None}
        if job.state == "done":
            view["result"] = self.queue.journal.read_result(job_id)
        return view

    def jobs_view(self) -> dict:
        return {"jobs": self.queue.snapshot()}

    def ledger_text(self, job_id: str) -> Optional[str]:
        if self.queue.jobs.get(job_id) is None:
            return None
        path = self.queue.journal.ledger_path(job_id)
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return ""  # job exists but has not executed a cell yet

    def record_view(self, spec_hash: str) -> Optional[dict]:
        record = self.queue.cache.get_record_by_hash(spec_hash)
        if record is None:
            return None
        return {"spec_hash": spec_hash, "record": record_to_dict(record)}

    def metrics_view(self) -> dict:
        summary = self.queue.metrics_summary()
        summary["state"] = self.queue.service_state()
        summary["cache"] = self.queue.cache.stats()
        return summary

    def health_view(self) -> dict:
        return {
            "status": self.queue.service_state(),
            "jobs": len(self.queue.jobs),
            "queue_depth": self.queue.queue_depth(),
            "max_queue_depth": self.queue.max_queue_depth,
            "journal_pending_events": self.queue.journal.pending_events,
            "workers": self.queue.workers,
            "executor": self.queue.executor_kind,
        }


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the :class:`ServiceAPI` attached to the
    server.  Silent by default: the service narrates through its
    journal and metrics, not an access log."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass

    @property
    def api(self) -> ServiceAPI:
        return self.server.api  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------

    def _send_json(self, status: int, payload: dict,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "application/x-ndjson") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: Optional[Dict[str, str]] = None) -> None:
        self._send_json(status, {"error": message}, headers)

    def _read_body(self) -> dict:
        """Parse the JSON request body; :class:`_BadBody` on refusal.

        Oversized bodies are 413, not 400 — the client sent valid
        intent at invalid scale, and the distinction matters to a
        retry loop (shrink the request, don't resend it)."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise _BadBody(400, "Content-Length must be an integer")
        if length <= 0:
            raise _BadBody(400, "request body must be JSON")
        if length > MAX_BODY_BYTES:
            raise _BadBody(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise _BadBody(400, "request body must be JSON")
        if not isinstance(payload, dict):
            raise _BadBody(400, "request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0]
        return tuple(part for part in path.split("/") if part)

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        route = self._route()
        try:
            if route == ("healthz",):
                return self._send_json(200, self.api.health_view())
            if route == ("metrics",):
                return self._send_json(200, self.api.metrics_view())
            if route == ("jobs",):
                return self._send_json(200, self.api.jobs_view())
            if len(route) == 2 and route[0] == "jobs":
                view = self.api.job_view(route[1])
                if view is None:
                    return self._error(404, f"no job {route[1]!r}")
                return self._send_json(200, view)
            if len(route) == 3 and route[0] == "jobs" and route[2] == "ledger":
                text = self.api.ledger_text(route[1])
                if text is None:
                    return self._error(404, f"no job {route[1]!r}")
                return self._send_text(200, text)
            if len(route) == 2 and route[0] == "records":
                view = self.api.record_view(route[1])
                if view is None:
                    return self._error(404, f"no record {route[1]!r}")
                return self._send_json(200, view)
            return self._error(404, f"no route for GET {self.path}")
        except ServiceTimeout as exc:
            return self._error(503, str(exc))
        except Exception as exc:  # noqa: BLE001 — a handler must answer
            return self._error(500, repr(exc))

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        route = self._route()
        try:
            if route == ("jobs",):
                try:
                    payload = self._read_body()
                except _BadBody as exc:
                    return self._error(exc.status, str(exc))
                try:
                    job = self.api.submit(payload)
                except JobError as exc:
                    return self._error(400, str(exc))
                except ServiceSaturated as exc:
                    retry_after = max(1, int(round(exc.retry_after)))
                    return self._error(
                        429, str(exc),
                        {"Retry-After": str(retry_after)},
                    )
                except ServiceDraining as exc:
                    return self._error(
                        503, str(exc), {"Retry-After": "5"},
                    )
                return self._send_json(202, {"job": job})
            if (len(route) == 3 and route[0] == "jobs"
                    and route[2] == "cancel"):
                if self.api.queue.jobs.get(route[1]) is None:
                    return self._error(404, f"no job {route[1]!r}")
                cancelled = self.api.cancel(route[1])
                return self._send_json(200, {"cancelled": cancelled})
            return self._error(404, f"no route for POST {self.path}")
        except ServiceTimeout as exc:
            return self._error(503, str(exc))
        except Exception as exc:  # noqa: BLE001 — a handler must answer
            return self._error(500, repr(exc))


def make_http_server(host: str, port: int, api: ServiceAPI) -> ThreadingHTTPServer:
    """Bind the threading HTTP server (port 0 picks a free port)."""
    server = ThreadingHTTPServer((host, port), ServiceRequestHandler)
    server.daemon_threads = True
    server.api = api  # type: ignore[attr-defined]
    return server
