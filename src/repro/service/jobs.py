"""The campaign service's job model: grids as serializable jobs.

A :class:`JobRequest` names one submittable campaign — any of the
paper-artefact grids (``figure5``, ``table1``, ``breakdown``,
``centralized``, ``ablation``), the manycore scaling study
(``scaling``), or a synth fuzzing campaign (``fuzz``) — as a plain
JSON-able ``(kind, params)`` pair.  Two
functions give it meaning:

* :func:`expand_specs` turns a request into the exact
  :class:`~repro.harness.spec.RunSpec` list the corresponding driver
  would submit, in the driver's canonical order — this is what the
  queue shards across workers;
* :func:`assemble_result` re-invokes the *original* driver with
  ``jobs=1`` against the artifact cache after every shard finished.
  Every cell is a cache hit by then, so assembly re-simulates
  nothing, and the job's result is **byte-identical** to a direct
  single-process invocation — the service can never drift from the
  paper pipeline, because it *is* the paper pipeline behind a queue.

A :class:`Job` wraps a request with its queue lifecycle::

    queued ──> running ──> done
       │          ├──────> failed
       └──────────┴──────> cancelled

Transitions are validated (:meth:`Job.transition`); every transition
is journalled, so a restarted server reconstructs the same state
machine (see :mod:`repro.service.journal`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler import HeuristicLevel
from repro.harness.spec import RunSpec, digest

#: states a job can be in; terminal states never transition again
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: legal state-machine edges
_TRANSITIONS = {
    "queued": {"running", "cancelled", "failed"},
    "running": {"done", "failed", "cancelled"},
}

_LEVELS = {level.value: level for level in HeuristicLevel}

#: request kinds the service accepts
JOB_KINDS = (
    "figure5", "table1", "breakdown", "centralized", "ablation",
    "scaling", "fuzz",
)


class JobError(ValueError):
    """A malformed or unsatisfiable job request (HTTP 400)."""


@dataclass(frozen=True)
class JobRequest:
    """One submittable campaign, fully determined by (kind, params)."""

    kind: str
    params: Dict = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Dict) -> "JobRequest":
        """Validate and normalise a client-supplied JSON payload."""
        if not isinstance(payload, dict):
            raise JobError("job payload must be a JSON object")
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {kind!r} (known: {', '.join(JOB_KINDS)})"
            )
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise JobError("job params must be a JSON object")
        request = cls(kind=kind, params=dict(params))
        expand_specs(request)  # fail loudly before anything is queued
        return request

    def payload(self) -> Dict:
        """The JSON shape that round-trips through journal and API."""
        return {"kind": self.kind, "params": dict(self.params)}

    def content_hash(self) -> str:
        """Content hash of the request (the job-id prefix)."""
        return digest(("job", self.kind, _canonical_params(self.params)))

    def describe(self) -> str:
        parts = [self.kind]
        for key in sorted(self.params):
            parts.append(f"{key}={self.params[key]}")
        return " ".join(parts)


def _canonical_params(params: Dict):
    """Params as a canonicalisable tree (JSON primitives only)."""
    try:
        return json.loads(json.dumps(params, sort_keys=True))
    except (TypeError, ValueError) as exc:
        raise JobError(f"job params are not JSON-serializable: {exc}")


def _levels_param(params: Dict) -> Optional[List[HeuristicLevel]]:
    raw = params.get("levels")
    if raw is None:
        return None
    try:
        return [_LEVELS[value] for value in raw]
    except (KeyError, TypeError):
        raise JobError(
            f"unknown heuristic level in {raw!r} "
            f"(known: {', '.join(sorted(_LEVELS))})"
        )


def _configs_param(params: Dict) -> Optional[List[Tuple[int, bool]]]:
    raw = params.get("configs")
    if raw is None:
        return None
    configs = []
    try:
        for n_pus, ooo in raw:
            configs.append((int(n_pus), bool(ooo)))
    except (TypeError, ValueError):
        raise JobError(
            f"configs must be [[n_pus, out_of_order], ...], got {raw!r}"
        )
    return configs


def _benchmarks_param(params: Dict) -> List[str]:
    raw = params.get("benchmarks", [])
    if isinstance(raw, str):
        raw = [name for name in raw.split(",") if name]
    if not isinstance(raw, list) or not all(isinstance(n, str) for n in raw):
        raise JobError(f"benchmarks must be a list of names, got {raw!r}")
    known = {bm.name for bm in _all_benchmarks()}
    unknown = [name for name in raw if name not in known
               and not name.startswith("synth:")]
    if unknown:
        raise JobError(f"unknown benchmark(s): {', '.join(unknown)}")
    return raw


def _all_benchmarks():
    from repro.workloads import all_benchmarks

    return all_benchmarks()


def _names_param(params: Dict, key: str) -> List[str]:
    """A list-of-strings param (accepts a comma-joined string too)."""
    raw = params.get(key, [])
    if isinstance(raw, str):
        raw = [name for name in raw.split(",") if name]
    if not isinstance(raw, list) or not all(isinstance(n, str) for n in raw):
        raise JobError(f"{key} must be a list of names, got {raw!r}")
    return raw


def _scaling_args(params: Dict) -> Dict:
    """Validated keyword arguments shared by the scaling driver calls."""
    from repro.experiments.scaling import (
        DEFAULT_MACHINES,
        DEFAULT_PREDICTORS,
    )
    from repro.machines import resolve_machine

    machines = _names_param(params, "machines") or list(DEFAULT_MACHINES)
    try:
        for name in machines:
            resolve_machine(name)
    except ValueError as exc:
        raise JobError(str(exc))
    predictors = (_names_param(params, "predictors")
                  or list(DEFAULT_PREDICTORS))
    from repro.machines import PREDICTOR_KINDS

    unknown = [p for p in predictors if p not in PREDICTOR_KINDS]
    if unknown:
        raise JobError(
            f"unknown predictor(s): {', '.join(unknown)} "
            f"(known: {', '.join(PREDICTOR_KINDS)})"
        )
    from repro.experiments.figure5 import LEVELS

    return {
        "benchmarks": _benchmarks_param(params),
        "machines": machines,
        "predictors": predictors,
        "levels": _levels_param(params) or LEVELS,
        "scale": float(params.get("scale", 1.0)),
        "engine": params.get("engine", "fast"),
    }


def expand_specs(request: JobRequest) -> List[RunSpec]:
    """The specs a request shards into, in driver-canonical order."""
    params = request.params
    kind = request.kind
    scale = float(params.get("scale", 1.0))
    if kind == "figure5":
        from repro.experiments.figure5 import (
            DEFAULT_CONFIGS,
            LEVELS,
            figure5_specs,
        )

        _, specs = figure5_specs(
            benchmarks=_benchmarks_param(params),
            configs=_configs_param(params) or list(DEFAULT_CONFIGS),
            levels=_levels_param(params) or LEVELS,
            scale=scale,
            engine=params.get("engine", "fast"),
        )
        return specs
    if kind == "table1":
        from repro.experiments.table1 import table1_specs

        _, specs = table1_specs(
            benchmarks=_benchmarks_param(params),
            n_pus=int(params.get("n_pus", 8)),
            scale=scale,
        )
        return specs
    if kind == "breakdown":
        from repro.experiments.breakdown import breakdown_specs

        benchmarks = _benchmarks_param(params) or [
            "compress", "m88ksim", "tomcatv", "hydro2d",
        ]
        _, specs = breakdown_specs(
            benchmarks, n_pus=int(params.get("n_pus", 4)), scale=scale,
        )
        return specs
    if kind == "centralized":
        from repro.experiments.centralized import centralized_specs

        benchmarks = _benchmarks_param(params) or [
            "compress", "m88ksim", "tomcatv", "wave5",
        ]
        _, specs = centralized_specs(
            benchmarks, n_pus=int(params.get("n_pus", 8)), scale=scale,
        )
        return specs
    if kind == "ablation":
        from repro.experiments.ablations import SWEEPS

        sweep = params.get("sweep")
        if sweep not in SWEEPS:
            raise JobError(
                f"unknown ablation sweep {sweep!r} "
                f"(known: {', '.join(sorted(SWEEPS))})"
            )
        benchmarks = _benchmarks_param(params)
        if not benchmarks:
            raise JobError("ablation jobs need explicit benchmarks")
        _, specs = SWEEPS[sweep](
            benchmarks,
            n_pus=int(params.get("n_pus", 4)),
            scale=scale,
        )
        return specs
    if kind == "scaling":
        from repro.experiments.scaling import scaling_specs

        _, specs = scaling_specs(**_scaling_args(params))
        return specs
    if kind == "fuzz":
        from repro.synth.campaign import fuzz_specs

        budget = params.get("budget")
        if not isinstance(budget, int) or budget <= 0:
            raise JobError("fuzz jobs need an integer budget >= 1")
        try:
            specs, _ = fuzz_specs(
                budget=budget,
                seed=int(params.get("seed", 1)),
                preset=params.get("preset", "default"),
                machines=_names_param(params, "machines"),
            )
        except ValueError as exc:
            raise JobError(str(exc))
        return specs
    raise JobError(f"unknown job kind {kind!r}")


def shard_worker_kind(request: JobRequest) -> str:
    """Which harness worker the shards of this request run under."""
    return "fuzz" if request.kind == "fuzz" else "default"


def assemble_result(request: JobRequest, cache) -> Dict:
    """Build the finished job's result document from the warm cache.

    Called after every shard committed its records; re-runs the
    original driver serially with the cache attached, so every cell
    resolves as a hit and the rendered artefacts (records JSON, the
    paper-style text report) are byte-identical to a direct
    ``--jobs 1`` invocation.
    """
    params = request.params
    kind = request.kind
    scale = float(params.get("scale", 1.0))
    if kind == "figure5":
        from repro.experiments.figure5 import (
            DEFAULT_CONFIGS,
            LEVELS,
            figure5_specs,
            format_figure5,
            run_figure5,
        )
        from repro.harness.serialize import grid_records, records_to_json

        configs = _configs_param(params) or list(DEFAULT_CONFIGS)
        result = run_figure5(
            benchmarks=_benchmarks_param(params),
            configs=configs,
            levels=_levels_param(params) or LEVELS,
            scale=scale,
            engine=params.get("engine", "fast"),
            jobs=1, cache=cache,
        )
        return {
            "records_json": records_to_json(
                "figure5", grid_records(result.records), scale
            ),
            "report": format_figure5(result, configs=configs),
        }
    if kind == "table1":
        from repro.experiments.table1 import format_table1, run_table1
        from repro.harness.serialize import grid_records, records_to_json

        result = run_table1(
            benchmarks=_benchmarks_param(params),
            n_pus=int(params.get("n_pus", 8)), scale=scale,
            jobs=1, cache=cache,
        )
        return {
            "records_json": records_to_json(
                "table1", grid_records(result.records), scale
            ),
            "report": format_table1(result),
        }
    if kind == "breakdown":
        from repro.experiments.breakdown import (
            format_breakdown,
            run_breakdown,
        )
        from repro.harness.serialize import grid_records, records_to_json

        benchmarks = _benchmarks_param(params) or [
            "compress", "m88ksim", "tomcatv", "hydro2d",
        ]
        result = run_breakdown(
            benchmarks, n_pus=int(params.get("n_pus", 4)), scale=scale,
            jobs=1, cache=cache,
        )
        return {
            "records_json": records_to_json(
                "breakdown", grid_records(result.records), scale
            ),
            "report": format_breakdown(result),
        }
    if kind == "centralized":
        from repro.experiments.centralized import (
            format_centralized,
            run_centralized_comparison,
        )
        from repro.harness.serialize import grid_records, records_to_json

        benchmarks = _benchmarks_param(params) or [
            "compress", "m88ksim", "tomcatv", "wave5",
        ]
        result = run_centralized_comparison(
            benchmarks, n_pus=int(params.get("n_pus", 8)), scale=scale,
            jobs=1, cache=cache,
        )
        return {
            "records_json": records_to_json(
                "centralized", grid_records(result.records), scale
            ),
            "report": format_centralized(result),
        }
    if kind == "ablation":
        from repro.experiments.ablations import SWEEPS, format_sweep
        from repro.harness.scheduler import run_specs

        sweep = params["sweep"]
        keys, specs = SWEEPS[sweep](
            _benchmarks_param(params),
            n_pus=int(params.get("n_pus", 4)),
            scale=scale,
        )
        records = dict(zip(keys, run_specs(specs, jobs=1, cache=cache)))
        return {"report": format_sweep(records, sweep)}
    if kind == "scaling":
        from repro.experiments.scaling import format_scaling, run_scaling
        from repro.harness.serialize import grid_records, records_to_json

        args = _scaling_args(params)
        result = run_scaling(jobs=1, cache=cache, **args)
        return {
            "records_json": records_to_json(
                "scaling", grid_records(result.records), args["scale"]
            ),
            "report": format_scaling(result),
            "ranking_changes": [
                list(change) for change in result.ranking_changes()
            ],
        }
    if kind == "fuzz":
        from repro.synth.campaign import run_campaign

        result = run_campaign(
            budget=int(params["budget"]),
            seed=int(params.get("seed", 1)),
            preset=params.get("preset", "default"),
            machines=_names_param(params, "machines"),
            jobs=1, cache=cache,
        )
        return {
            "report": result.summary(),
            "ok": result.ok,
            "divergences": list(result.divergences),
            "metrics": result.metrics,
        }
    raise JobError(f"unknown job kind {kind!r}")


@dataclass
class Job:
    """One submitted request plus its queue lifecycle."""

    job_id: str
    request: JobRequest
    state: str = "queued"
    cells: int = 0
    submitted_ts: float = 0.0
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    error: Optional[str] = None
    #: ledger tally after completion: fresh executions vs cache hits
    misses: Optional[int] = None
    hits: Optional[int] = None
    #: populated when the job was re-enqueued from the journal
    resumed: bool = False
    #: spec hashes quarantined by the shard watchdog's bisection —
    #: these cells failed persistently in workers; the job completed
    #: without them (assembly retries them serially and only then
    #: gives up on the cell)
    poisoned: List[str] = field(default_factory=list)

    def transition(self, state: str) -> None:
        """Move the state machine; illegal edges are hard errors."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        allowed = _TRANSITIONS.get(self.state, frozenset())
        if state not in allowed:
            raise ValueError(
                f"job {self.job_id}: illegal transition "
                f"{self.state!r} -> {state!r}"
            )
        self.state = state

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_dict(self) -> Dict:
        """The API's job view (no result payload — that is fetched
        separately so list endpoints stay small)."""
        return {
            "job_id": self.job_id,
            "kind": self.request.kind,
            "params": dict(self.request.params),
            "state": self.state,
            "cells": self.cells,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "error": self.error,
            "misses": self.misses,
            "hits": self.hits,
            "resumed": self.resumed,
            "poisoned": list(self.poisoned),
        }
