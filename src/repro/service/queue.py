"""Asyncio job queue with content-hash worker sharding.

The queue is the service's engine room.  Submissions become
:class:`~repro.service.jobs.Job` objects; a single dispatcher task
drains them FIFO (deterministic, and cells within a job already
saturate the workers); each job is:

1. expanded to its :class:`~repro.harness.spec.RunSpec` list
   (:func:`~repro.service.jobs.expand_specs`),
2. sharded by **content hash**
   (:func:`~repro.harness.scheduler.shard_specs`) into at most
   ``workers`` batches — placement is a pure function of the spec
   hash, so resubmissions and restarts land cells on the same shard,
3. dispatched to the worker pool; every shard executes through the
   existing harness (:func:`~repro.harness.scheduler.run_specs` with
   its retry + full-jitter backoff), appending to the job's private
   run ledger and committing records to the shared artifact cache,
4. assembled: the original driver re-runs serially against the now
   warm cache (zero simulation) and the result document is persisted
   before the journal's terminal ``done`` event.

Worker pools come in three flavours: ``"process"`` (the real thing —
one OS process per shard slot), ``"thread"`` (tests, and cache-bound
servers), ``"inline"`` (a single-thread executor — deterministic
unit tests).  Everything that mutates queue state runs on the event
loop; the HTTP layer reads snapshots and submits mutations through
``asyncio.run_coroutine_threadsafe``.

Crash safety: every transition is journalled *before* the work it
announces begins (submitted before enqueue, running before dispatch,
done only after the result document is on disk), so replaying the
journal after a crash re-enqueues exactly the unfinished jobs, whose
completed cells then resolve as cache hits — the service-level
equivalent of ``--resume``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.harness.cache import ArtifactCache
from repro.harness.ledger import RunLedger, read_ledger
from repro.harness.scheduler import run_specs, shard_specs
from repro.harness.spec import RunSpec
from repro.service.jobs import (
    Job,
    JobError,
    JobRequest,
    assemble_result,
    expand_specs,
    shard_worker_kind,
)
from repro.service.journal import ServiceJournal
from repro.telemetry.metrics import MetricsRegistry

#: executor flavours the queue can dispatch shards to
EXECUTOR_KINDS = ("process", "thread", "inline")


def _execute_shard(
    specs: List[RunSpec],
    cache_root: str,
    salt: str,
    ledger_path: str,
    worker_kind: str,
    retries: int,
    backoff: float,
) -> int:
    """One shard, run inside a worker (process or thread).

    Rebuilds the cache handle from (root, salt) so the call is
    picklable, appends to the job's shared ledger file (safe under
    concurrent shard writers — see ``append_jsonl_line``), and leans
    on ``run_specs`` for per-group retry with full-jitter backoff.
    Returns the number of cells committed; records themselves stay in
    the content-addressed store rather than crossing the process
    boundary.
    """
    cache = ArtifactCache(root=cache_root, salt=salt)
    ledger = RunLedger(ledger_path, progress=None)
    worker = None
    if worker_kind == "fuzz":
        from repro.synth.campaign import execute_fuzz_spec

        worker = execute_fuzz_spec
    records = run_specs(
        specs, jobs=1, cache=cache, ledger=ledger,
        retries=retries, backoff=backoff, worker=worker,
    )
    return len(records)


class JobQueue:
    """The service's asyncio queue + job table + worker pool."""

    def __init__(
        self,
        cache: ArtifactCache,
        journal: ServiceJournal,
        workers: int = 2,
        executor: str = "process",
        retries: int = 1,
        backoff: float = 0.05,
    ) -> None:
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r} "
                f"(known: {', '.join(EXECUTOR_KINDS)})"
            )
        if workers < 1:
            raise ValueError("JobQueue needs workers >= 1")
        self.cache = cache
        self.journal = journal
        self.workers = workers
        self.executor_kind = executor
        self.retries = retries
        self.backoff = backoff
        self.jobs: Dict[str, Job] = {}
        self.order: List[str] = []
        self.registry = MetricsRegistry()
        self.started_at = time.time()
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._done_events: Dict[str, asyncio.Event] = {}
        self._cancel_requested: set = set()
        self._job_seq = 0
        self._pool: Optional[Executor] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._draining = False

    # -- lifecycle -----------------------------------------------------

    def _make_pool(self) -> Executor:
        if self.executor_kind == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        if self.executor_kind == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=1)

    async def start(self) -> int:
        """Replay the journal, re-enqueue unfinished jobs, start the
        dispatcher.  Returns the number of resumed jobs."""
        from repro.service.journal import replay_journal

        replay = replay_journal(self.journal.path)
        self._job_seq = replay.last_seq
        resumed = 0
        for job_id in replay.order:
            job = replay.jobs[job_id]
            self.jobs[job_id] = job
            self.order.append(job_id)
            self._done_events[job_id] = asyncio.Event()
            if job.terminal:
                self._done_events[job_id].set()
            else:
                # A job journalled as running died mid-flight; its
                # completed cells are cache hits, so re-running it is
                # exactly the remainder.  Reset the state machine to
                # queued via a fresh Job rather than a back-edge.
                if job.state == "running":
                    job.state = "queued"
                    job.started_ts = None
                job.resumed = True
                resumed += 1
                self.journal.state(job, resumed=True)
                await self._queue.put(job_id)
        self.registry.counter("service.jobs_resumed").inc(resumed)
        self._pool = self._make_pool()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return resumed

    async def close(self) -> None:
        """Stop dispatching and tear the pool down (jobs stay journalled)."""
        self._draining = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- submission + queries ------------------------------------------

    async def submit(self, request: JobRequest) -> Job:
        """Validate, journal, and enqueue one request."""
        if self._draining:
            raise JobError("service is shutting down")
        specs = expand_specs(request)  # raises JobError on bad requests
        self._job_seq += 1
        job_id = (
            f"{request.kind}-{request.content_hash()[:12]}-{self._job_seq}"
        )
        job = Job(
            job_id=job_id, request=request, cells=len(specs),
            submitted_ts=round(time.time(), 3),
        )
        self.jobs[job_id] = job
        self.order.append(job_id)
        self._done_events[job_id] = asyncio.Event()
        self.journal.submitted(job, self._job_seq)
        self.registry.counter("service.jobs_submitted").inc()
        self.registry.counter("service.cells_submitted").inc(len(specs))
        await self._queue.put(job_id)
        return job

    async def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job can still honour it."""
        job = self.jobs.get(job_id)
        if job is None or job.terminal:
            return False
        self._cancel_requested.add(job_id)
        if job.state == "queued":
            # The dispatcher also checks, but cancelling eagerly makes
            # the state visible to clients immediately.
            self._finish(job, "cancelled")
        return True

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        event = self._done_events[job_id]
        await asyncio.wait_for(event.wait(), timeout)
        return self.jobs[job_id]

    def snapshot(self) -> List[Dict]:
        """All jobs, submission-ordered (read-only; any thread)."""
        return [self.jobs[job_id].as_dict() for job_id in self.order]

    def queue_depth(self) -> int:
        return sum(
            1 for job in self.jobs.values() if job.state == "queued"
        )

    def running_count(self) -> int:
        return sum(
            1 for job in self.jobs.values() if job.state == "running"
        )

    def metrics_summary(self) -> Dict:
        """Counters plus freshly sampled gauges (the /metrics body)."""
        self.registry.gauge("service.queue_depth").set(self.queue_depth())
        self.registry.gauge("service.jobs_running").set(self.running_count())
        self.registry.gauge("service.workers").set(self.workers)
        self.registry.gauge("service.uptime_seconds").set(
            round(time.time() - self.started_at, 3)
        )
        return self.registry.summary()

    # -- execution -----------------------------------------------------

    def _finish(self, job: Job, state: str, **detail) -> None:
        job.transition(state)
        job.finished_ts = round(time.time(), 3)
        if "error" in detail:
            job.error = detail["error"]
        self.journal.state(job, **detail)
        self.registry.counter(f"service.jobs_{state}").inc()
        self._done_events[job.job_id].set()

    async def _dispatch_loop(self) -> None:
        while True:
            job_id = await self._queue.get()
            job = self.jobs.get(job_id)
            if job is None or job.terminal:
                continue  # cancelled while queued
            if job_id in self._cancel_requested:
                if not job.terminal:
                    self._finish(job, "cancelled")
                continue
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — journalled below
                if not job.terminal:
                    self._finish(job, "failed", error=repr(exc))

    async def _run_job(self, job: Job) -> None:
        job.started_ts = round(time.time(), 3)
        job.transition("running")
        self.journal.state(job)
        specs = expand_specs(job.request)
        shards = shard_specs(specs, self.workers, self.cache.salt)
        ledger_path = self.journal.ledger_path(job.job_id)
        loop = asyncio.get_running_loop()
        futures = [
            loop.run_in_executor(
                self._pool, _execute_shard,
                shard, str(self.cache.root), self.cache.salt,
                str(ledger_path), shard_worker_kind(job.request),
                self.retries, self.backoff,
            )
            for shard in shards
        ]
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        errors = [o for o in outcomes if isinstance(o, BaseException)]
        if job.job_id in self._cancel_requested:
            self._finish(job, "cancelled")
            return
        if errors:
            self._finish(job, "failed", error=repr(errors[0]))
            return
        misses, hits = _ledger_tally(ledger_path)
        job.misses, job.hits = misses, hits
        self.registry.counter("service.cells_executed").inc(misses)
        self.registry.counter("service.cells_cached").inc(hits)
        # Assembly replays the driver against the warm cache (pure
        # hits, no simulation) — run it off-loop so a large grid's
        # JSON rendering never stalls the dispatcher.
        result = await loop.run_in_executor(
            None, assemble_result, job.request, self.cache
        )
        self.journal.write_result(job.job_id, result)
        self._finish(job, "done", misses=misses, hits=hits)


def _ledger_tally(ledger_path) -> tuple:
    """(fresh executions, cache hits) recorded in a per-job ledger."""
    misses = hits = 0
    for entry in read_ledger(ledger_path):
        if entry.get("outcome") != "ok" or "spec_hash" not in entry:
            continue
        if entry.get("cache") == "miss":
            misses += 1
        else:
            hits += 1
    return misses, hits
