"""Asyncio job queue with content-hash worker sharding.

The queue is the service's engine room.  Submissions become
:class:`~repro.service.jobs.Job` objects; a single dispatcher task
drains them FIFO (deterministic, and cells within a job already
saturate the workers); each job is:

1. expanded to its :class:`~repro.harness.spec.RunSpec` list
   (:func:`~repro.service.jobs.expand_specs`),
2. sharded by **content hash**
   (:func:`~repro.harness.scheduler.shard_specs`) into at most
   ``workers`` batches — placement is a pure function of the spec
   hash, so resubmissions and restarts land cells on the same shard,
3. dispatched to the worker pool; every shard executes through the
   existing harness (:func:`~repro.harness.scheduler.run_specs` with
   its retry + full-jitter backoff), appending to the job's private
   run ledger and committing records to the shared artifact cache,
4. assembled: the original driver re-runs serially against the now
   warm cache (zero simulation) and the result document is persisted
   before the journal's terminal ``done`` event.

Fault containment (the service-level extension of the harness's
self-healing):

* every shard runs under a **watchdog**: a deadline derived from the
  shard's spec count (:func:`~repro.harness.scheduler.shard_deadline`)
  bounds each attempt, so a hung worker (deadlock, OOM thrash,
  runaway cell) surfaces as a timeout instead of stalling the shard
  forever.  Timeouts and killed workers (``BrokenProcessPool``)
  replace the pool with a fresh one and retry the shard with
  full-jitter backoff;
* a shard that keeps failing is **bisected**: its spec list is split
  and each half retried, recursively, until the failing cells are
  isolated to single specs — which are then **quarantined** onto the
  job's ``poisoned`` list (journalled per spec) instead of failing
  the whole job.  One poison RunSpec costs one cell, not a campaign;
* **admission control** bounds the queue: past ``max_queue_depth``
  submissions are rejected with :class:`ServiceSaturated` (HTTP 429
  + ``Retry-After``), and at most ``max_inflight_shards`` shards
  occupy workers at once.  The service reports itself
  ``healthy`` / ``degraded`` / ``draining`` through
  :meth:`JobQueue.service_state`;
* **graceful drain** (:meth:`JobQueue.drain`) stops accepting work,
  gives in-flight shards a grace period, journals a checkpoint, and
  flushes the journal's pending buffer — a restarted server replays
  the journal and resumes to byte-identical results.

Worker pools come in three flavours: ``"process"`` (the real thing —
one OS process per shard slot), ``"thread"`` (tests, and cache-bound
servers), ``"inline"`` (a single-thread executor — deterministic
unit tests).  Everything that mutates queue state runs on the event
loop; the HTTP layer reads snapshots and submits mutations through
``asyncio.run_coroutine_threadsafe``.

Crash safety: every transition is journalled *before* the work it
announces begins (submitted before enqueue, running before dispatch,
done only after the result document is on disk), so replaying the
journal after a crash re-enqueues exactly the unfinished jobs, whose
completed cells then resolve as cache hits — the service-level
equivalent of ``--resume``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Dict, List, Optional, Sequence

from repro.harness.cache import ArtifactCache
from repro.harness.ledger import RunLedger, read_ledger
from repro.harness.scheduler import (
    backoff_delay,
    run_specs,
    shard_deadline,
    shard_specs,
)
from repro.harness.spec import RunSpec
from repro.service.jobs import (
    Job,
    JobError,
    JobRequest,
    assemble_result,
    expand_specs,
    shard_worker_kind,
)
from repro.service.journal import ServiceJournal
from repro.telemetry.metrics import MetricsRegistry

#: executor flavours the queue can dispatch shards to
EXECUTOR_KINDS = ("process", "thread", "inline")

#: service states surfaced through /healthz and /metrics
SERVICE_STATES = ("healthy", "degraded", "draining")

#: how long after a fault the service keeps reporting "degraded"
DEGRADED_WINDOW_SECONDS = 30.0

#: counters pre-registered so /metrics shows them even at zero
_ROBUSTNESS_COUNTERS = (
    "service.shards_retried",
    "service.shards_timed_out",
    "service.shards_bisected",
    "service.specs_quarantined",
    "service.pools_replaced",
    "service.jobs_rejected_429",
    "service.drain_events",
    "service.journal_write_errors",
    "service.journal_compactions",
)


class WorkerKilled(RuntimeError):
    """A worker died mid-shard (raised by chaos in thread pools; the
    process-pool equivalent surfaces as ``BrokenProcessPool``)."""


class ServiceSaturated(RuntimeError):
    """Admission control rejected a submission (HTTP 429).

    ``retry_after`` is the server's estimate (seconds) of when the
    queue will have drained enough to accept the request.
    """

    def __init__(self, depth: int, limit: int, retry_after: float) -> None:
        super().__init__(
            f"queue saturated: {depth} job(s) queued (limit {limit})"
        )
        self.retry_after = retry_after


class ServiceDraining(RuntimeError):
    """The service is shutting down and not accepting work (HTTP 503)."""


def _execute_shard(
    specs: List[RunSpec],
    cache_root: str,
    salt: str,
    ledger_path: str,
    worker_kind: str,
    retries: int,
    backoff: float,
    chaos: Optional[dict] = None,
) -> int:
    """One shard, run inside a worker (process or thread).

    Rebuilds the cache handle from (root, salt) so the call is
    picklable, appends to the job's shared ledger file (safe under
    concurrent shard writers — see ``append_jsonl_line``), and leans
    on ``run_specs`` for per-group retry with full-jitter backoff.
    Returns the number of cells committed; records themselves stay in
    the content-addressed store rather than crossing the process
    boundary.

    ``chaos`` is the seeded fault-injection seam: a plain dict (it
    crosses the process boundary) that can kill this worker, raise a
    shard exception, stall past the watchdog deadline, or poison
    specific spec hashes — see :mod:`repro.service.chaos`.
    """
    cache = ArtifactCache(root=cache_root, salt=salt)
    ledger = RunLedger(ledger_path, progress=None)
    worker = None
    if worker_kind == "fuzz":
        from repro.synth.campaign import execute_fuzz_spec

        worker = execute_fuzz_spec
    if chaos:
        from repro.service.chaos import apply_shard_chaos, poison_worker

        apply_shard_chaos(chaos)
        worker = poison_worker(chaos.get("poison_hashes"), worker, salt)
    records = run_specs(
        specs, jobs=1, cache=cache, ledger=ledger,
        retries=retries, backoff=backoff, worker=worker,
    )
    return len(records)


class JobQueue:
    """The service's asyncio queue + job table + worker pool."""

    def __init__(
        self,
        cache: ArtifactCache,
        journal: ServiceJournal,
        workers: int = 2,
        executor: str = "process",
        retries: int = 1,
        backoff: float = 0.05,
        max_queue_depth: int = 64,
        max_inflight_shards: Optional[int] = None,
        shard_deadline_base: float = 60.0,
        shard_deadline_per_spec: float = 20.0,
        shard_retries: int = 2,
        journal_compact_bytes: int = 4 << 20,
        chaos=None,
    ) -> None:
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r} "
                f"(known: {', '.join(EXECUTOR_KINDS)})"
            )
        if workers < 1:
            raise ValueError("JobQueue needs workers >= 1")
        if max_queue_depth < 1:
            raise ValueError("JobQueue needs max_queue_depth >= 1")
        self.cache = cache
        self.journal = journal
        self.workers = workers
        self.executor_kind = executor
        self.retries = retries
        self.backoff = backoff
        self.max_queue_depth = max_queue_depth
        self.max_inflight_shards = max_inflight_shards or workers * 2
        self.shard_deadline_base = shard_deadline_base
        self.shard_deadline_per_spec = shard_deadline_per_spec
        self.shard_retries = shard_retries
        self.journal_compact_bytes = journal_compact_bytes
        self.chaos = chaos
        self.jobs: Dict[str, Job] = {}
        self.order: List[str] = []
        self.registry = MetricsRegistry()
        for name in _ROBUSTNESS_COUNTERS:
            self.registry.counter(name)
        self.journal.on_write_error = (
            self.registry.counter("service.journal_write_errors").inc
        )
        self.started_at = time.time()
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._done_events: Dict[str, asyncio.Event] = {}
        self._cancel_requested: set = set()
        self._job_seq = 0
        self._pool: Optional[Executor] = None
        self._pool_gen = 0
        self._dispatcher: Optional[asyncio.Task] = None
        self._draining = False
        self._degraded_until = 0.0
        self._shard_sem = asyncio.Semaphore(self.max_inflight_shards)

    # -- lifecycle -----------------------------------------------------

    def _make_pool(self) -> Executor:
        if self.executor_kind == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        if self.executor_kind == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=1)

    def _replace_pool(self, generation: int, reason: str) -> None:
        """Swap in a fresh worker pool after a hang or a killed worker.

        Guarded by a generation counter so concurrent shards that all
        observed the same broken pool replace it exactly once.  The
        old pool is shut down without cancelling its futures: threads
        that are merely *slow* (not hung) finish their idempotent
        cache writes in the background instead of being abandoned.
        """
        if generation != self._pool_gen:
            return  # another shard already replaced this pool
        self._pool_gen += 1
        old, self._pool = self._pool, self._make_pool()
        if old is not None:
            old.shutdown(wait=False)
        self.registry.counter("service.pools_replaced").inc()
        self._mark_degraded()

    def _mark_degraded(self) -> None:
        self._degraded_until = (
            time.monotonic() + DEGRADED_WINDOW_SECONDS
        )

    async def start(self) -> int:
        """Replay the journal, re-enqueue unfinished jobs, start the
        dispatcher.  Returns the number of resumed jobs."""
        from repro.service.journal import replay_journal

        replay = replay_journal(self.journal.path)
        self._job_seq = replay.last_seq
        resumed = 0
        for job_id in replay.order:
            job = replay.jobs[job_id]
            self.jobs[job_id] = job
            self.order.append(job_id)
            self._done_events[job_id] = asyncio.Event()
            if job.terminal:
                self._done_events[job_id].set()
            else:
                # A job journalled as running died mid-flight; its
                # completed cells are cache hits, so re-running it is
                # exactly the remainder.  Reset the state machine to
                # queued via a fresh Job rather than a back-edge.
                if job.state == "running":
                    job.state = "queued"
                    job.started_ts = None
                job.resumed = True
                resumed += 1
                self.journal.state(job, resumed=True)
                await self._queue.put(job_id)
        self.registry.counter("service.jobs_resumed").inc(resumed)
        self._pool = self._make_pool()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return resumed

    async def close(self) -> None:
        """Stop dispatching and tear the pool down (jobs stay journalled)."""
        self._draining = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.journal.flush()

    async def drain(self, grace: float = 30.0) -> Dict:
        """Graceful shutdown: refuse new work, checkpoint, hand back.

        In-flight shards get ``grace`` seconds to finish; whatever is
        still running afterwards is abandoned to the journal — its
        ``running`` line makes a restarted server re-enqueue the job,
        and the cells its shards *did* commit resolve as cache hits,
        so the resumed job converges to the same bytes.  Ends by
        flushing the journal's pending buffer (the SIGTERM
        checkpoint) and stopping the dispatcher + pool.
        """
        already = self._draining
        self._draining = True
        if not already:
            self.registry.counter("service.drain_events").inc()
            self.journal.note("drain", grace=grace)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        while self.running_count() and loop.time() < deadline:
            await asyncio.sleep(0.05)
        requeued = [
            job.job_id for job in self.jobs.values()
            if job.state == "running"
        ]
        await self.close()
        self.journal.note(
            "drain_complete",
            finished=not requeued,
            requeued=requeued,
        )
        # The checkpoint write: insist a little — a transiently
        # failing disk (or an injected one) should not cost the
        # restart its journal tail.
        flushed = False
        for _ in range(5):
            flushed = self.journal.flush()
            if flushed:
                break
        return {
            "requeued": requeued,
            "journal_flushed": flushed,
            "pending_events": self.journal.pending_events,
        }

    # -- submission + queries ------------------------------------------

    async def submit(self, request: JobRequest) -> Job:
        """Validate, admit, journal, and enqueue one request.

        Raises :class:`ServiceDraining` during shutdown and
        :class:`ServiceSaturated` past ``max_queue_depth`` — the HTTP
        layer maps these to 503 and 429 + ``Retry-After``.
        """
        if self._draining:
            raise ServiceDraining("service is draining; resubmit later")
        depth = self.queue_depth()
        if depth >= self.max_queue_depth:
            self.registry.counter("service.jobs_rejected_429").inc()
            raise ServiceSaturated(
                depth, self.max_queue_depth, self.retry_after_hint()
            )
        specs = expand_specs(request)  # raises JobError on bad requests
        self._job_seq += 1
        job_id = (
            f"{request.kind}-{request.content_hash()[:12]}-{self._job_seq}"
        )
        job = Job(
            job_id=job_id, request=request, cells=len(specs),
            submitted_ts=round(time.time(), 3),
        )
        self.jobs[job_id] = job
        self.order.append(job_id)
        self._done_events[job_id] = asyncio.Event()
        self.journal.submitted(job, self._job_seq)
        self.registry.counter("service.jobs_submitted").inc()
        self.registry.counter("service.cells_submitted").inc(len(specs))
        await self._queue.put(job_id)
        return job

    def retry_after_hint(self) -> float:
        """Seconds a rejected client should wait before resubmitting."""
        return max(1.0, min(60.0, 2.0 * self.queue_depth() / self.workers))

    async def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job can still honour it."""
        job = self.jobs.get(job_id)
        if job is None or job.terminal:
            return False
        self._cancel_requested.add(job_id)
        if job.state == "queued":
            # The dispatcher also checks, but cancelling eagerly makes
            # the state visible to clients immediately.
            self._finish(job, "cancelled")
        return True

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        event = self._done_events[job_id]
        await asyncio.wait_for(event.wait(), timeout)
        return self.jobs[job_id]

    def snapshot(self) -> List[Dict]:
        """All jobs, submission-ordered (read-only; any thread)."""
        return [self.jobs[job_id].as_dict() for job_id in self.order]

    def queue_depth(self) -> int:
        return sum(
            1 for job in self.jobs.values() if job.state == "queued"
        )

    def running_count(self) -> int:
        return sum(
            1 for job in self.jobs.values() if job.state == "running"
        )

    def service_state(self) -> str:
        """``healthy`` / ``degraded`` / ``draining``.

        Degraded means "working, but something recently went wrong or
        is backed up": a watchdog fired, a pool was replaced, journal
        events are stuck in memory, or the queue is near saturation.
        Clients should keep reading but back off on writes.
        """
        if self._draining:
            return "draining"
        if self.journal.pending_events:
            return "degraded"
        if time.monotonic() < self._degraded_until:
            return "degraded"
        if self.queue_depth() >= max(1, int(0.8 * self.max_queue_depth)):
            return "degraded"
        return "healthy"

    def metrics_summary(self) -> Dict:
        """Counters plus freshly sampled gauges (the /metrics body)."""
        self.registry.gauge("service.queue_depth").set(self.queue_depth())
        self.registry.gauge("service.jobs_running").set(self.running_count())
        self.registry.gauge("service.workers").set(self.workers)
        self.registry.gauge("service.uptime_seconds").set(
            round(time.time() - self.started_at, 3)
        )
        self.registry.gauge("service.max_queue_depth").set(
            self.max_queue_depth
        )
        self.registry.gauge("service.journal_pending_events").set(
            self.journal.pending_events
        )
        self.registry.gauge("service.journal_bytes").set(
            self.journal.size_bytes()
        )
        return self.registry.summary()

    # -- execution -----------------------------------------------------

    def _finish(self, job: Job, state: str, **detail) -> None:
        job.transition(state)
        job.finished_ts = round(time.time(), 3)
        if "error" in detail:
            job.error = detail["error"]
        self.journal.state(job, **detail)
        self.registry.counter(f"service.jobs_{state}").inc()
        self._done_events[job.job_id].set()
        if self.journal.maybe_compact(self.journal_compact_bytes):
            self.registry.counter("service.journal_compactions").inc()

    async def _dispatch_loop(self) -> None:
        while True:
            job_id = await self._queue.get()
            job = self.jobs.get(job_id)
            if job is None or job.terminal:
                continue  # cancelled while queued
            if job_id in self._cancel_requested:
                if not job.terminal:
                    self._finish(job, "cancelled")
                continue
            try:
                await self._run_job(job)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — journalled below
                if not job.terminal:
                    self._finish(job, "failed", error=repr(exc))

    async def _run_job(self, job: Job) -> None:
        job.started_ts = round(time.time(), 3)
        job.transition("running")
        self.journal.state(job)
        specs = expand_specs(job.request)
        shards = shard_specs(specs, self.workers, self.cache.salt)
        ledger_path = self.journal.ledger_path(job.job_id)
        worker_kind = shard_worker_kind(job.request)
        loop = asyncio.get_running_loop()
        tasks = [
            asyncio.ensure_future(self._run_shard(
                job, shard, index, ledger_path, worker_kind,
            ))
            for index, shard in enumerate(shards)
        ]
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        errors = [
            o for o in outcomes
            if isinstance(o, BaseException)
            and not isinstance(o, asyncio.CancelledError)
        ]
        if job.job_id in self._cancel_requested:
            self._finish(job, "cancelled")
            return
        if errors:
            self._finish(job, "failed", error=repr(errors[0]))
            return
        misses, hits = _ledger_tally(ledger_path)
        job.misses, job.hits = misses, hits
        self.registry.counter("service.cells_executed").inc(misses)
        self.registry.counter("service.cells_cached").inc(hits)
        # Assembly replays the driver against the warm cache (pure
        # hits, no simulation) — run it off-loop so a large grid's
        # JSON rendering never stalls the dispatcher.  Quarantined
        # cells are *not* in the cache; assembly retries them serially
        # in-process (no pool, no chaos seam), so a spec poisoned by a
        # flaky worker environment still converges — only a spec that
        # fails even here costs the job its full result document.
        try:
            result = await loop.run_in_executor(
                None, assemble_result, job.request, self.cache
            )
        except Exception as exc:  # noqa: BLE001 — quarantine fallback
            if not job.poisoned:
                raise
            result = {
                "partial": True,
                "poisoned": sorted(job.poisoned),
                "report": (
                    f"{len(job.poisoned)} cell(s) quarantined as poison; "
                    f"result assembly failed on them: {exc!r}"
                ),
            }
        self.journal.write_result(job.job_id, result)
        self._finish(
            job, "done", misses=misses, hits=hits,
            poisoned=len(job.poisoned),
        )

    async def _run_shard(
        self,
        job: Job,
        specs: Sequence[RunSpec],
        shard_index: int,
        ledger_path,
        worker_kind: str,
    ) -> None:
        """One shard under the watchdog; never raises for shard-level
        faults — persistent failures bisect down to quarantined specs."""
        async with self._shard_sem:
            gauge = self.registry.gauge("service.shards_inflight")
            gauge.add(1)
            try:
                ok = await self._attempt_specs(
                    job, list(specs), shard_index, ledger_path,
                    worker_kind, self.shard_retries,
                )
                if not ok:
                    self.registry.counter("service.shards_bisected").inc()
                    await self._bisect_specs(
                        job, list(specs), shard_index, ledger_path,
                        worker_kind,
                    )
            finally:
                gauge.add(-1)

    async def _attempt_specs(
        self,
        job: Job,
        specs: List[RunSpec],
        shard_index: int,
        ledger_path,
        worker_kind: str,
        retries: int,
        bisecting: bool = False,
    ) -> bool:
        """Run one spec batch with watchdog + retry; True on success.

        Every attempt is bounded by a deadline scaled to the batch
        size.  A timeout or a killed worker replaces the pool (the
        only way to reclaim a hung worker) before the full-jitter
        backoff retry; an ordinary exception retries on the same
        pool.  Exhausted retries return False — the caller decides
        whether to bisect.
        """
        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            deadline = shard_deadline(
                len(specs), self.shard_deadline_base,
                self.shard_deadline_per_spec,
            )
            chaos = self._shard_chaos(
                job, specs, shard_index, attempt, deadline, bisecting,
            )
            generation = self._pool_gen
            future = loop.run_in_executor(
                self._pool, _execute_shard,
                specs, str(self.cache.root), self.cache.salt,
                str(ledger_path), worker_kind,
                self.retries, self.backoff, chaos,
            )
            try:
                await asyncio.wait_for(future, timeout=deadline)
                return True
            except asyncio.CancelledError:
                raise
            except (asyncio.TimeoutError, TimeoutError):
                self.registry.counter("service.shards_timed_out").inc()
                self._replace_pool(generation, "shard deadline exceeded")
            except (BrokenExecutor, WorkerKilled) as exc:
                self._replace_pool(generation, repr(exc))
            except Exception:  # noqa: BLE001 — bounded retry below
                self._mark_degraded()
            attempt += 1
            if attempt > retries:
                return False
            self.registry.counter("service.shards_retried").inc()
            await asyncio.sleep(
                backoff_delay(attempt - 1, self.backoff, cap=5.0)
            )

    async def _bisect_specs(
        self,
        job: Job,
        specs: List[RunSpec],
        shard_index: int,
        ledger_path,
        worker_kind: str,
    ) -> None:
        """Isolate a persistently failing batch down to poison specs.

        Splits the batch and retries each half; halves that keep
        failing recurse.  A single spec that still fails is
        quarantined: journalled as ``poisoned``, recorded on the
        job's ``poisoned`` list, and noted in the per-job run ledger —
        the job then completes without it instead of failing.
        """
        if len(specs) == 1:
            spec = specs[0]
            spec_hash = spec.spec_hash(self.cache.salt)
            if spec_hash not in job.poisoned:
                job.poisoned.append(spec_hash)
            self.journal.poisoned(job, spec_hash, spec.describe())
            RunLedger(ledger_path, progress=None).event(
                "spec_quarantined",
                spec_hash=spec_hash, job=spec.describe(),
            )
            self.registry.counter("service.specs_quarantined").inc()
            return
        mid = len(specs) // 2
        for half in (specs[:mid], specs[mid:]):
            ok = await self._attempt_specs(
                job, half, shard_index, ledger_path, worker_kind,
                retries=1, bisecting=True,
            )
            if not ok:
                await self._bisect_specs(
                    job, half, shard_index, ledger_path, worker_kind,
                )

    def _shard_chaos(
        self,
        job: Job,
        specs: List[RunSpec],
        shard_index: int,
        attempt: int,
        deadline: float,
        bisecting: bool,
    ) -> Optional[dict]:
        """The chaos payload for one shard attempt (None without a plan)."""
        if self.chaos is None:
            return None
        return self.chaos.shard_chaos(
            job_id=job.job_id,
            shard_index=shard_index,
            attempt=attempt,
            spec_hashes=[s.spec_hash(self.cache.salt) for s in specs],
            deadline=deadline,
            executor=self.executor_kind,
            bisecting=bisecting,
        )


def _ledger_tally(ledger_path) -> tuple:
    """(fresh executions, cache hits) recorded in a per-job ledger.

    Deduplicated by spec hash: watchdog retries can execute a cell
    on two attempts (the slow first attempt finishes in the
    background), and a cell seen both fresh and cached counts once,
    as a miss — the tally answers "how many distinct cells had to be
    simulated", not "how many ledger lines exist".
    """
    status: Dict[str, str] = {}
    for entry in read_ledger(ledger_path):
        if entry.get("outcome") != "ok" or "spec_hash" not in entry:
            continue
        spec_hash = entry["spec_hash"]
        if entry.get("cache") == "miss":
            status[spec_hash] = "miss"
        else:
            status.setdefault(spec_hash, "hit")
    misses = sum(1 for value in status.values() if value == "miss")
    return misses, len(status) - misses
