"""Seeded chaos injection for the campaign service.

The service claims to survive killed workers, hung shards, poison
specs, a disk that stops taking journal writes, and corrupted cache
entries — this module is the claim's test harness.  A
:class:`ChaosPlan` is a **seeded, deterministic** fault schedule:
every injection decision is a pure hash draw over
``(seed, site identity)``, so the same seed schedules the same
faults at the same sites, and a failing campaign replays exactly.

Fault kinds and where they bite:

``kill_worker``
    The shard's worker dies mid-flight: ``SIGKILL`` to the worker
    process (process pools — surfaces as ``BrokenProcessPool``) or a
    raised :class:`~repro.service.queue.WorkerKilled` (thread pools).
    Exercises pool replacement.
``shard_exception``
    The shard raises before running any cell.  Exercises the
    watchdog's same-pool retry.
``slow_shard``
    The shard sleeps past its watchdog deadline before doing the
    work.  Exercises timeout detection, fresh-pool retry, and the
    ledger tally's tolerance of late background completions.
``poison_spec``
    Specific spec hashes raise :class:`PoisonSpecError` inside the
    worker on *every* attempt (the poison set is a pure function of
    the spec hash, so bisection converges).  Exercises bisection +
    quarantine; the cell still completes because result assembly
    re-runs it serially without the chaos seam — modelling the
    common real poison, a spec that only fails in worker
    environments.
``journal_error``
    A journal append raises ``OSError`` (injected ENOSPC).
    Exercises the pending buffer + flush-on-drain path.
``cache_corrupt``
    A committed cache entry's bytes are flipped on disk between
    jobs.  Exercises checksum quarantine + re-execution.

:func:`run_chaos_campaign` drives an in-process
:class:`~repro.service.server.CampaignService` through the full
gauntlet — including a mid-campaign SIGTERM-style drain + restart —
and then **proves convergence**: every job terminal and accounted
for exactly once, every result byte-identical to a fault-free
serial re-run on a fresh cache, every quarantined spec explained by
the plan.  ``repro chaos --budget N --seed S`` is the CLI face; CI
runs it as the ``chaos-smoke`` job.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.harness.cache import ArtifactCache
from repro.harness.scheduler import execute_spec
from repro.service.jobs import JobRequest, assemble_result, expand_specs
from repro.service.queue import WorkerKilled

#: every fault kind a plan can schedule
CHAOS_KINDS = (
    "kill_worker", "shard_exception", "slow_shard",
    "poison_spec", "journal_error", "cache_corrupt",
)

#: per-site injection probabilities (tuned so a handful of micro
#: rounds accumulates a budget's worth of faults without the slow
#: kinds dominating wall time)
DEFAULT_RATES: Dict[str, float] = {
    "kill_worker": 0.12,
    "shard_exception": 0.15,
    "slow_shard": 0.05,
    "poison_spec": 0.12,
    "journal_error": 0.15,
}


class PoisonSpecError(RuntimeError):
    """An injected poison cell: fails in workers, every attempt."""


class ChaosPlan:
    """A seeded fault schedule plus the ledger of what it injected.

    Decisions are pure draws — ``_draw(*site) < rate`` — so they are
    independent of execution order; only the global ``max_faults``
    cap (a runaway backstop, far above any real campaign) couples
    sites, under a lock.  ``injected`` records every fault for the
    campaign report and the convergence checks.
    """

    def __init__(
        self,
        seed: int,
        rates: Optional[Dict[str, float]] = None,
        max_faults: int = 10_000,
        slow_extra: float = 0.5,
    ) -> None:
        self.seed = int(seed)
        self.rates = dict(DEFAULT_RATES)
        if rates:
            unknown = set(rates) - set(DEFAULT_RATES)
            if unknown:
                raise ValueError(
                    f"unknown chaos rate(s): {', '.join(sorted(unknown))}"
                )
            self.rates.update(rates)
        self.max_faults = max_faults
        self.slow_extra = slow_extra
        self.injected: List[dict] = []
        self._lock = threading.Lock()
        self._journal_writes = 0
        self._poison_recorded: set = set()

    # -- deterministic draws -------------------------------------------

    def _draw(self, *site) -> float:
        """Uniform-ish in [0, 1), a pure function of (seed, site)."""
        key = ":".join([str(self.seed), *(str(part) for part in site)])
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return int(digest[:12], 16) / float(1 << 48)

    def is_poison(self, spec_hash: str) -> bool:
        """Whether a spec is scheduled as poison (pure per-hash draw,
        so every shard attempt and every bisection half agrees)."""
        return self._draw("poison", spec_hash) < self.rates["poison_spec"]

    def _record(self, kind: str, **site) -> bool:
        """Account one injection; False once the backstop cap is hit."""
        with self._lock:
            if len(self.injected) >= self.max_faults:
                return False
            self.injected.append({"kind": kind, **site})
            return True

    @property
    def fault_count(self) -> int:
        with self._lock:
            return len(self.injected)

    def faults_by_kind(self) -> Dict[str, int]:
        with self._lock:
            out: Dict[str, int] = {}
            for fault in self.injected:
                out[fault["kind"]] = out.get(fault["kind"], 0) + 1
            return out

    # -- injection sites -----------------------------------------------

    def shard_chaos(
        self,
        *,
        job_id: str,
        shard_index: int,
        attempt: int,
        spec_hashes: List[str],
        deadline: float,
        executor: str,
        bisecting: bool,
    ) -> Optional[dict]:
        """The picklable fault payload for one shard attempt.

        Poison hashes ride every attempt (they must, or bisection
        could not converge on them); the transient faults fire only
        on a shard's first non-bisecting attempt, so retries are
        guaranteed to make progress and the only thing bisection ever
        isolates is genuine poison.
        """
        payload: Dict[str, object] = {}
        poison = [h for h in spec_hashes if self.is_poison(h)]
        if poison:
            payload["poison_hashes"] = poison
            for spec_hash in poison:
                with self._lock:
                    if (spec_hash not in self._poison_recorded
                            and len(self.injected) < self.max_faults):
                        self._poison_recorded.add(spec_hash)
                        self.injected.append({
                            "kind": "poison_spec",
                            "spec_hash": spec_hash,
                            "job_id": job_id,
                        })
        if attempt == 0 and not bisecting:
            draw = self._draw("shard", job_id, shard_index)
            edge = 0.0
            fault = None
            for kind in ("kill_worker", "shard_exception", "slow_shard"):
                edge += self.rates[kind]
                if draw < edge:
                    fault = kind
                    break
            if fault is not None and self._record(
                fault, job_id=job_id, shard=shard_index,
            ):
                if fault == "kill_worker":
                    payload["kill"] = executor
                elif fault == "shard_exception":
                    payload["raise"] = (
                        f"chaos: injected shard exception "
                        f"({job_id} shard {shard_index})"
                    )
                else:
                    payload["sleep"] = deadline + self.slow_extra
        return payload or None

    def journal_fault_hook(self) -> Callable[[dict], None]:
        """A :class:`~repro.service.journal.ServiceJournal`
        ``fault_hook``: fails individual write attempts with an
        injected ENOSPC.  Keyed by attempt number, not payload, so a
        buffered event's retry eventually lands — a transient disk,
        not a dead one."""

        def hook(payload: dict) -> None:
            with self._lock:
                write_no = self._journal_writes
                self._journal_writes += 1
            if self._draw("journal", write_no) < self.rates["journal_error"]:
                if self._record(
                    "journal_error",
                    write=write_no, event=payload.get("event"),
                ):
                    raise OSError(28, "chaos: injected journal ENOSPC")

        return hook

    def corrupt_cache_entry(self, cache_root, site: str) -> Optional[str]:
        """Flip bytes inside one committed record, deterministically.

        Picks the entry by a draw over the sorted listing, overwrites
        a slice of its pickled payload (leaving the ``RPC1`` header
        so the checksum check, not a parse error, catches it), and
        returns the victim's filename.  The cache quarantines it on
        the next read and the cell re-executes — corruption costs one
        re-simulation, never a wrong result.
        """
        records_dir = Path(cache_root) / "records"
        victims = sorted(records_dir.glob("*.pkl"))
        if not victims:
            return None
        victim = victims[int(self._draw("corrupt", site) * len(victims))
                         % len(victims)]
        raw = bytearray(victim.read_bytes())
        offset = min(len(raw) - 1, 40)  # inside the pickled payload
        for i in range(offset, min(len(raw), offset + 8)):
            raw[i] ^= 0xFF
        victim.write_bytes(bytes(raw))
        self._record("cache_corrupt", entry=victim.name, site=site)
        return victim.name


# -- worker-side application (crosses the pool boundary as a dict) ----

def apply_shard_chaos(chaos: dict) -> None:
    """Fire the shard-level faults encoded in a chaos payload.

    Runs at the top of ``_execute_shard``, inside the worker.  Order
    matters: a slow shard sleeps first (so the watchdog sees a hang,
    not an error), then kills, then raises.
    """
    sleep = chaos.get("sleep")
    if sleep:
        time.sleep(float(sleep))
    kill = chaos.get("kill")
    if kill == "process":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kill:
        raise WorkerKilled("chaos: worker killed mid-shard")
    message = chaos.get("raise")
    if message:
        raise RuntimeError(message)


def poison_worker(poison_hashes, base, salt: str):
    """Wrap a spec worker so scheduled poison hashes always fail.

    With no poison scheduled the base worker is returned *unchanged* —
    identity matters, because the scheduler only warm-starts the
    compiled-artifact cache for the canonical ``execute_spec``.
    """
    if not poison_hashes:
        return base
    hashes = frozenset(poison_hashes)
    inner = base or execute_spec

    def worker(spec):
        if spec.spec_hash(salt) in hashes:
            raise PoisonSpecError(
                f"chaos: poison spec {spec.describe()}"
            )
        return inner(spec)

    return worker


# -- the campaign ------------------------------------------------------

@dataclass
class ChaosReport:
    """What a chaos campaign injected and whether the service held."""

    seed: int
    budget: int
    rounds: int
    restarts: int
    resumed_jobs: int
    faults: Dict[str, int]
    fault_count: int
    jobs_submitted: int
    jobs_done: int
    rejected_429: int
    quarantined_specs: int
    #: human-readable convergence violations; empty means the service
    #: absorbed every fault without losing, duplicating, or corrupting
    #: a single job
    violations: List[str] = field(default_factory=list)
    metrics: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.fault_count >= self.budget

    def summary(self) -> str:
        lines = [
            f"chaos campaign: seed={self.seed} budget={self.budget} "
            f"-> {self.fault_count} fault(s) injected over "
            f"{self.rounds} round(s), {self.restarts} restart(s)",
            f"  jobs: {self.jobs_done}/{self.jobs_submitted} done, "
            f"{self.resumed_jobs} resumed after drain, "
            f"{self.rejected_429} rejected with 429, "
            f"{self.quarantined_specs} spec(s) quarantined",
        ]
        for kind in CHAOS_KINDS:
            count = self.faults.get(kind, 0)
            if count:
                lines.append(f"  {kind:<16} {count}")
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    {v}" for v in self.violations)
        else:
            lines.append(
                "  converged: all results byte-identical to fault-free "
                "serial runs; zero jobs lost or duplicated"
            )
        return "\n".join(lines)


def _chaos_job_mix(round_no: int) -> List[dict]:
    """One round's submissions: every request kind family the service
    shards differently, at micro scale, made unique per round via an
    inert ``chaos_round`` param (drivers ignore it; the content hash
    does not)."""
    micro = {"benchmarks": ["compress"], "scale": 0.05,
             "chaos_round": round_no}
    return [
        {"kind": "figure5",
         "params": {**micro, "levels": ["basic_block"]}},
        {"kind": "table1", "params": {**micro, "n_pus": 4}},
        {"kind": "breakdown", "params": {**micro, "n_pus": 2}},
        {"kind": "fuzz",
         "params": {"budget": 3, "seed": 7, "chaos_round": round_no}},
    ]


def run_chaos_campaign(
    budget: int = 25,
    seed: int = 1,
    root=None,
    workers: int = 2,
    max_rounds: int = 12,
    rates: Optional[Dict[str, float]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Drive a service through seeded faults and prove convergence.

    Each round submits the micro job mix over HTTP (retrying 429/503
    like a well-behaved client) and waits it out; rounds repeat until
    at least ``budget`` faults have been injected.  Round 1 ends with
    an injected cache corruption; round 2 ends with a short-grace
    drain + restart on the same journal and cache (the SIGTERM path),
    resuming whatever the drain abandoned.

    Convergence is then checked the hard way: every submitted job
    must appear exactly once and be ``done``; every distinct request
    is re-assembled serially on a **fresh** cache with no chaos and
    must byte-compare equal to what the service returned; every
    quarantined spec must be one the plan actually poisoned, and
    every poisoned cell must still be present in the final result.
    """
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.server import CampaignService

    say = progress or (lambda _line: None)
    owns_root = root is None
    root = Path(root) if root is not None else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    cache_root = root / "cache"
    plan = ChaosPlan(seed, rates=rates)

    def make_service() -> CampaignService:
        service = CampaignService(
            cache=ArtifactCache(root=cache_root),
            journal_root=root / "service",
            port=0,
            workers=workers,
            executor="thread",
            retries=1,
            backoff=0.01,
            max_queue_depth=16,
            shard_deadline_base=4.0,
            shard_deadline_per_spec=1.5,
            shard_retries=1,
            journal_compact_bytes=48 << 10,
            chaos=plan,
            journal_fault_hook=plan.journal_fault_hook(),
        )
        service.start()
        return service

    def submit_patiently(client, payload, deadline: float) -> dict:
        """Submit with backpressure manners: sleep out 429/503."""
        nonlocal rejected_429
        while True:
            try:
                return client.submit(payload["kind"], payload["params"])
            except ServiceError as exc:
                if exc.status not in (429, 503):
                    raise
                if exc.status == 429:
                    rejected_429 += 1
                if time.monotonic() >= deadline:
                    raise
                time.sleep(min(exc.retry_after or 0.2, 1.0))

    submitted: List[str] = []
    payload_of: Dict[str, dict] = {}
    rejected_429 = 0
    restarts = 0
    resumed_jobs = 0
    rounds = 0
    merged_metrics: Optional[Dict] = None
    service = make_service()
    try:
        # at least 3 rounds, always: round 1 seeds the cache and gets
        # corrupted, round 2 drains + restarts mid-flight, round 3
        # proves the resumed server is healthy — then keep going
        # until the fault budget is met
        while rounds < max_rounds and (
            rounds < 3 or plan.fault_count < budget
        ):
            rounds += 1
            client = ServiceClient(service.base_url, timeout=15.0)
            round_ids: List[str] = []
            for payload in _chaos_job_mix(rounds):
                job = submit_patiently(
                    client, payload, time.monotonic() + 60.0,
                )
                submitted.append(job["job_id"])
                payload_of[job["job_id"]] = payload
                round_ids.append(job["job_id"])
            if rounds == 2:
                # Drain mid-round with a grace too short to finish:
                # the SIGTERM path.  Whatever was in flight must be
                # resumed — not lost, not restarted from zero — by
                # the replacement server on the same journal.  The
                # round's regular jobs are warm-cache and can outrun
                # the drain, so pin down a cold one first: a grid no
                # earlier round has compiled, guaranteed to still be
                # unfinished when the server goes down.
                cold = {"kind": "fuzz", "params": {
                    "budget": 6, "seed": 20_000 + seed,
                }}
                job = submit_patiently(
                    client, cold, time.monotonic() + 60.0,
                )
                submitted.append(job["job_id"])
                payload_of[job["job_id"]] = cold
                round_ids.append(job["job_id"])
                say("round 2: drain + restart with jobs in flight")
                from repro.telemetry.metrics import merge_summaries

                service.drain(grace=0.05)
                # snapshot *after* the drain so jobs that finished
                # inside the grace window are counted; the restarted
                # server's registry starts from zero and the two are
                # merged into one cross-generation view
                snapshot = service.queue.metrics_summary()
                merged_metrics = (
                    snapshot if merged_metrics is None
                    else merge_summaries(merged_metrics, snapshot)
                )
                restarts += 1
                service = make_service()
                resumed_jobs += service.resumed
                client = ServiceClient(service.base_url, timeout=15.0)
            for job_id in round_ids:
                client.wait(job_id, timeout=180.0)
            if rounds == 1:
                victim = plan.corrupt_cache_entry(cache_root, "round1")
                say(f"round 1: corrupted cache entry {victim}")
            say(
                f"round {rounds}: {plan.fault_count}/{budget} faults, "
                f"{len(submitted)} jobs submitted"
            )

        # -- convergence checks ----------------------------------------
        client = ServiceClient(service.base_url, timeout=15.0)
        job_views = client.jobs()
        final_jobs = {view["job_id"]: view for view in job_views}
        violations: List[str] = []
        if len(job_views) != len(final_jobs):
            violations.append("duplicate job_ids in final job list")
        for job_id in submitted:
            view = final_jobs.get(job_id)
            if view is None:
                violations.append(f"job {job_id} lost")
            elif view["state"] != "done":
                violations.append(
                    f"job {job_id} ended {view['state']!r}: "
                    f"{view.get('error')}"
                )
        unknown = set(final_jobs) - set(submitted)
        if unknown:
            violations.append(
                f"{len(unknown)} job(s) appeared that were never "
                f"submitted: {sorted(unknown)[:3]}"
            )

        quarantined = 0
        with tempfile.TemporaryDirectory(
            prefix="repro-chaos-ref-"
        ) as ref_root:
            reference_cache = ArtifactCache(root=ref_root)
            reference: Dict[str, str] = {}
            for job_id in submitted:
                payload = payload_of[job_id]
                request = JobRequest(
                    kind=payload["kind"], params=dict(payload["params"]),
                )
                key = json.dumps(payload, sort_keys=True)
                if key not in reference:
                    reference[key] = json.dumps(
                        assemble_result(request, reference_cache),
                        indent=2, sort_keys=True,
                    )
                view = final_jobs.get(job_id)
                if view is None or view["state"] != "done":
                    continue
                result = client.job(job_id)["result"]
                got = json.dumps(result, indent=2, sort_keys=True)
                if got != reference[key]:
                    violations.append(
                        f"job {job_id} result diverged from the "
                        f"fault-free serial run"
                    )
                poisoned = set(view.get("poisoned") or [])
                quarantined += len(poisoned)
                salt = reference_cache.salt
                expected = {
                    h for h in (
                        s.spec_hash(salt) for s in expand_specs(request)
                    ) if plan.is_poison(h)
                }
                bogus = poisoned - expected
                if bogus:
                    violations.append(
                        f"job {job_id} quarantined spec(s) the plan "
                        f"never poisoned: {sorted(bogus)[:3]}"
                    )

        snapshot = service.queue.metrics_summary()
        from repro.telemetry.metrics import merge_summaries

        merged_metrics = (
            snapshot if merged_metrics is None
            else merge_summaries(merged_metrics, snapshot)
        )
        if plan.fault_count < budget:
            violations.append(
                f"only {plan.fault_count}/{budget} faults injected in "
                f"{rounds} round(s) — raise max_rounds or rates"
            )
        if restarts and not resumed_jobs:
            violations.append(
                "drain + restart never caught a job in flight — the "
                "resume path went unexercised"
            )
        return ChaosReport(
            seed=seed,
            budget=budget,
            rounds=rounds,
            restarts=restarts,
            resumed_jobs=resumed_jobs,
            faults=plan.faults_by_kind(),
            fault_count=plan.fault_count,
            jobs_submitted=len(submitted),
            jobs_done=sum(
                1 for v in final_jobs.values() if v["state"] == "done"
            ),
            rejected_429=rejected_429,
            quarantined_specs=quarantined,
            violations=violations,
            metrics=merged_metrics,
        )
    finally:
        service.stop()
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)
