"""Trace-based profiler feeding the task-selection heuristics."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.block import BlockId
from repro.ir.dataflow import DefUseEdge
from repro.ir.instructions import Opcode
from repro.ir.interp import Trace, run_program
from repro.ir.program import Program

DefUseKey = Tuple[str, str, int, str, int, str]
"""Def-use dependence key:
``(function, def_block, def_index, use_block, use_index, register)``."""


@dataclass
class Profile:
    """Aggregated dynamic statistics of one program execution."""

    #: dynamic executions per basic block
    block_counts: Dict[BlockId, int] = field(default_factory=dict)
    #: dynamic traversals per intra-function CFG edge
    edge_counts: Dict[Tuple[BlockId, BlockId], int] = field(default_factory=dict)
    #: dynamic occurrences per register def-use dependence
    defuse_counts: Dict[DefUseKey, int] = field(default_factory=dict)
    #: invocation count per function
    call_counts: Dict[str, int] = field(default_factory=dict)
    #: total dynamic instructions executed inside each function,
    #: inclusive of its callees
    call_cycles: Dict[str, int] = field(default_factory=dict)
    #: total dynamic instructions in the profiled run
    total_instructions: int = 0

    def block_count(self, block: BlockId) -> int:
        """Executions of ``block`` (0 if never executed)."""
        return self.block_counts.get(block, 0)

    def edge_count(self, src: BlockId, dst: BlockId) -> int:
        """Traversals of the intra-function edge ``src -> dst``."""
        return self.edge_counts.get((src, dst), 0)

    def defuse_count(self, function: str, edge: DefUseEdge) -> int:
        """Dynamic frequency of a def-use dependence edge."""
        key = (
            function,
            edge.def_block,
            edge.def_index,
            edge.use_block,
            edge.use_index,
            edge.register,
        )
        return self.defuse_counts.get(key, 0)

    def mean_dynamic_call_size(self, function: str) -> Optional[float]:
        """Average dynamic instructions per invocation of ``function``.

        Inclusive of nested callees.  ``None`` if never invoked.
        """
        count = self.call_counts.get(function, 0)
        if count == 0:
            return None
        return self.call_cycles.get(function, 0) / count


def profile_trace(trace: Trace) -> Profile:
    """Build a :class:`Profile` from an execution trace."""
    profile = Profile()
    block_counts: Dict[BlockId, int] = defaultdict(int)
    edge_counts: Dict[Tuple[BlockId, BlockId], int] = defaultdict(int)
    defuse_counts: Dict[DefUseKey, int] = defaultdict(int)
    call_counts: Dict[str, int] = defaultdict(int)
    call_cycles: Dict[str, int] = defaultdict(int)

    # --- block and edge counts (walk block entries, attribute returns
    # to the originating call block).
    insts = trace.insts
    call_block_stack: List[BlockId] = []
    prev_block: Optional[BlockId] = None
    for start_idx, block in trace.block_entries:
        block_counts[block] += 1
        if start_idx > 0:
            last = insts[start_idx - 1]
            if last.op is Opcode.CALL:
                call_block_stack.append(last.block)
            elif last.op is Opcode.RET:
                if call_block_stack:
                    caller_block = call_block_stack.pop()
                    edge_counts[(caller_block, block)] += 1
            elif prev_block is not None and prev_block[0] == block[0]:
                edge_counts[(prev_block, block)] += 1
        prev_block = block

    # --- function invocation counts & inclusive dynamic sizes.
    main_name = trace.program.main_name
    call_counts[main_name] = 1
    open_frames: List[str] = [main_name]
    for dyn in insts:
        for fname in open_frames:
            call_cycles[fname] += 1
        if dyn.op is Opcode.CALL:
            assert dyn.callee is not None
            call_counts[dyn.callee] += 1
            open_frames.append(dyn.callee)
        elif dyn.op is Opcode.RET and len(open_frames) > 1:
            open_frames.pop()

    # --- exact dynamic def-use frequencies via last-writer tracking.
    # last_writer[reg] = (function, block_label, inst_index)
    last_writer: Dict[str, Tuple[str, str, int]] = {}
    for dyn in insts:
        func_name, label = dyn.block
        for reg in dyn.reads:
            writer = last_writer.get(reg)
            if writer is not None and writer[0] == func_name:
                defuse_counts[
                    (func_name, writer[1], writer[2], label, dyn.iidx, reg)
                ] += 1
        if dyn.write is not None:
            last_writer[dyn.write] = (func_name, label, dyn.iidx)

    profile.block_counts = dict(block_counts)
    profile.edge_counts = dict(edge_counts)
    profile.defuse_counts = dict(defuse_counts)
    profile.call_counts = dict(call_counts)
    profile.call_cycles = dict(call_cycles)
    profile.total_instructions = len(insts)
    return profile


def profile_program(program: Program, max_instructions: int = 2_000_000) -> Profile:
    """Run ``program`` functionally and profile the resulting trace."""
    return profile_trace(run_program(program, max_instructions=max_instructions))
