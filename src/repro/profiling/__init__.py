"""Dynamic profiling support (Section 4.2: "The compiler uses basic
block frequency, obtained via dynamic profiling, for register
communication scheduling and task selection").

:class:`~repro.profiling.profiler.Profile` aggregates, from a
functional-execution trace:

* basic block execution counts,
* intra-function CFG edge counts (call continuations attributed to the
  call block),
* dynamic register def-use dependence frequencies (exact, from
  last-writer tracking),
* per-function invocation counts and average dynamic body sizes
  (inclusive of callees) — the input to the CALL_THRESH decision.
"""

from repro.profiling.profiler import Profile, profile_program, profile_trace

__all__ = ["Profile", "profile_program", "profile_trace"]
