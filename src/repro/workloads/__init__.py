"""Synthetic workloads standing in for SPEC95 (see DESIGN.md §2).

The paper compiles SPEC95 with a modified gcc; neither the suite nor
the binaries are redistributable, so this package builds deterministic
IR programs — one per SPEC95 benchmark name — whose *task-shaping*
characteristics match each benchmark class:

* integer codes: small basic blocks, irregular data-dependent control
  flow, pointer-style memory access, frequent calls (and recursion for
  ``li``);
* floating point codes: regular loop nests over arrays, large basic
  blocks, long fp dependence chains, highly predictable branches
  (and, for ``fpppp``, the famously enormous straight-line blocks).

Use :func:`~repro.workloads.registry.get_benchmark` /
:func:`~repro.workloads.registry.all_benchmarks` to obtain programs.
"""

from repro.workloads.registry import (
    Benchmark,
    all_benchmarks,
    fp_benchmarks,
    get_benchmark,
    integer_benchmarks,
)

__all__ = [
    "Benchmark",
    "all_benchmarks",
    "fp_benchmarks",
    "get_benchmark",
    "integer_benchmarks",
]
