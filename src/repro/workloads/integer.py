"""Synthetic SPECint95 stand-ins.

Shapes per benchmark (matching Table 1's qualitative profile):

* ``go`` — irregular game-position evaluation: tiny blocks,
  LCG-driven unpredictable branches, a non-absorbable helper call.
* ``m88ksim`` — fetch/decode/dispatch interpreter over a packed
  instruction array.
* ``cc`` — token-driven parser with an explicit stack, a bump
  allocator, and a small absorbable helper.
* ``compress`` — LZW-style hash probing with a *short* inner probe
  loop (the benchmark the paper notes responds to the task size
  heuristic).
* ``li`` — recursive expression-tree evaluator (frequent calls, the
  smallest tasks of the suite).
* ``ijpeg`` — blocked 8x8 transform with regular inner loops
  (loop-level tasks).
* ``perl`` — opcode dispatch with hash-table and short string loops.
* ``vortex`` — record store: binary-search lookups, field
  validation, medium-sized update calls.

Loop bound registers: ``r30`` outer, ``r29`` middle, ``r24`` inner.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.program import Program
from repro.workloads.kernels import (
    counted_loop,
    counted_loop_imm,
    fill_words,
    host_lcg as _host_lcg,
    if_then_else,
    lcg_next,
    lcg_seed,
    switch_chain,
)
from repro.workloads.registry import register


@register("go", "int", "game position evaluation with irregular control flow")
def build_go(scale: float = 1.0) -> Program:
    moves = max(1, int(300 * scale))
    board_base, board_cells = 1000, 361
    b = IRBuilder()

    with b.function("evaluate"):
        # Sum a strided sample of the board: a ~50-instruction helper,
        # too big to absorb, called on a fraction of moves.
        b.li("r2", 0)

        def eval_body(bb: IRBuilder) -> None:
            bb.muli("r8", "r3", 19)
            bb.addi("r8", "r8", board_base)
            bb.load("r9", "r8", 0)
            bb.add("r2", "r2", "r9")
            bb.load("r9", "r8", 5)
            bb.add("r2", "r2", "r9")
            bb.load("r9", "r8", 11)
            bb.sub("r2", "r2", "r9")

        counted_loop_imm(b, "r3", 0, 19, eval_body, stem="eval", bound_reg="r24")
        b.ret()

    with b.function("main"):
        lcg_seed(b, "r26", 20230)
        b.li("r16", 0)  # score
        b.li("r17", 0)  # captures

        def move(bb: IRBuilder) -> None:
            lcg_next(bb, "r8", "r26")
            bb.remi("r9", "r8", board_cells)  # position
            bb.addi("r10", "r9", board_base)
            bb.load("r11", "r10", 0)  # cell occupancy
            bb.shr("r12", "r8", 8)
            bb.andi("r12", "r12", 1)  # colour bit

            def claim(cb: IRBuilder) -> None:
                cb.addi("r13", "r12", 1)
                cb.store("r13", "r10", 0)
                # Inspect two neighbours with unpredictable guards.
                cb.slti("r14", "r9", board_cells - 1)

                def right(nb: IRBuilder) -> None:
                    nb.load("r15", "r10", 1)
                    nb.seq("r15", "r15", "r13")
                    nb.add("r17", "r17", "r15")

                if_then_else(cb, "r14", right, stem="right")
                cb.slti("r14", "r9", 19)
                cb.xori("r14", "r14", 1)  # pos >= 19

                def up(nb: IRBuilder) -> None:
                    nb.load("r15", "r10", -19)
                    nb.seq("r15", "r15", "r13")
                    nb.add("r17", "r17", "r15")

                if_then_else(cb, "r14", up, stem="up")

            def contested(cb: IRBuilder) -> None:
                cb.addi("r13", "r12", 1)
                cb.sne("r14", "r11", "r13")

                def enemy(nb: IRBuilder) -> None:
                    nb.subi("r16", "r16", 1)
                    nb.store("r0", "r10", 0)

                def friend(nb: IRBuilder) -> None:
                    nb.addi("r16", "r16", 2)

                if_then_else(cb, "r14", enemy, friend, stem="fight")

            if_then_else(bb, "r11", contested, claim, stem="cell")
            bb.andi("r13", "r8", 15)
            # Call evaluate on every 16th move.
            eval_lbl = bb.new_label("deep")
            skip_lbl = bb.new_label("skip")
            bb.bnez("r13", skip_lbl, fallthrough=eval_lbl)
            with bb.block(eval_lbl):
                cont = bb.new_label("cont")
                bb.call("evaluate", fallthrough=cont)
                with bb.block(cont):
                    bb.add("r16", "r16", "r2")
                    bb.jump(skip_lbl)
            bb.open_block(skip_lbl)

        counted_loop_imm(b, "r1", 0, moves, move, stem="move")
        b.store("r16", "r0", 900)
        b.store("r17", "r0", 901)
        b.halt()

    program = b.build()
    rng = _host_lcg(77)
    fill_words(program, board_base, [rng() % 3 for _ in range(board_cells)])
    return program


@register("m88ksim", "int", "fetch/decode/dispatch CPU interpreter")
def build_m88ksim(scale: float = 1.0) -> Program:
    steps = max(1, int(1100 * scale))
    imem_base, imem_size = 2000, 512
    regs_base = 3500  # 32 simulated registers
    dmem_base = 4000  # simulated data memory (256 words)
    b = IRBuilder()

    with b.function("main"):
        b.li("r16", 0)  # simulated PC
        b.li("r17", 0)  # cycle counter

        def step(bb: IRBuilder) -> None:
            # fetch
            bb.remi("r8", "r16", imem_size)
            bb.addi("r8", "r8", imem_base)
            bb.load("r9", "r8", 0)  # packed instruction word
            bb.addi("r16", "r16", 1)
            # decode
            bb.andi("r10", "r9", 7)        # opcode
            bb.shr("r11", "r9", 3)
            bb.andi("r11", "r11", 31)      # rs
            bb.shr("r12", "r9", 8)
            bb.andi("r12", "r12", 31)      # rt
            bb.addi("r13", "r11", regs_base)
            bb.load("r14", "r13", 0)       # rs value
            bb.addi("r15", "r12", regs_base)

            def op_add(cb: IRBuilder) -> None:
                cb.load("r18", "r15", 0)
                cb.add("r18", "r18", "r14")
                cb.store("r18", "r15", 0)

            def op_sub(cb: IRBuilder) -> None:
                cb.load("r18", "r15", 0)
                cb.sub("r18", "r18", "r14")
                cb.store("r18", "r15", 0)

            def op_logic(cb: IRBuilder) -> None:
                cb.load("r18", "r15", 0)
                cb.xor("r18", "r18", "r14")
                cb.andi("r18", "r18", 0xFFFF)
                cb.store("r18", "r15", 0)

            def op_load(cb: IRBuilder) -> None:
                cb.andi("r18", "r14", 255)
                cb.addi("r18", "r18", dmem_base)
                cb.load("r19", "r18", 0)
                cb.store("r19", "r15", 0)

            def op_store(cb: IRBuilder) -> None:
                cb.load("r18", "r15", 0)
                cb.andi("r19", "r14", 255)
                cb.addi("r19", "r19", dmem_base)
                cb.store("r18", "r19", 0)

            def op_branch(cb: IRBuilder) -> None:
                cb.slti("r18", "r14", 1 << 29)

                def taken(tb: IRBuilder) -> None:
                    tb.shr("r19", "r9", 13)
                    tb.andi("r19", "r19", 63)
                    tb.add("r16", "r16", "r19")

                if_then_else(cb, "r18", taken, stem="brsim")

            switch_chain(
                bb, "r10",
                [op_add, op_sub, op_logic, op_load, op_store, op_branch],
                stem="op",
            )
            bb.addi("r17", "r17", 1)

        counted_loop_imm(b, "r1", 0, steps, step, stem="sim")
        b.store("r17", "r0", 900)
        b.halt()

    program = b.build()
    rng = _host_lcg(424242)
    fill_words(program, imem_base, [rng() for _ in range(imem_size)])
    fill_words(program, regs_base, [rng() % 1000 for _ in range(32)])
    fill_words(program, dmem_base, [rng() % 5000 for _ in range(256)])
    return program


@register("cc", "int", "token-driven parser with stack and bump allocator")
def build_cc(scale: float = 1.0) -> Program:
    tokens = max(1, int(900 * scale))
    token_base = 2000
    stack_base = 6000
    heap_base = 8000
    b = IRBuilder()

    with b.function("make_node"):
        # Tiny constructor: absorbable under CALL_THRESH.
        b.store("r4", "r5", 0)   # kind
        b.store("r6", "r5", 1)   # payload
        b.store("r0", "r5", 2)   # link
        b.addi("r2", "r5", 0)
        b.ret()

    with b.function("main"):
        b.li("r16", stack_base)  # parse stack pointer
        b.li("r17", heap_base)   # bump allocator
        b.li("r18", 0)           # node count
        b.li("r19", 0)           # error count

        def consume(bb: IRBuilder) -> None:
            bb.addi("r8", "r1", token_base)
            bb.load("r9", "r8", 0)  # token kind in [0, 6)

            def t_ident(cb: IRBuilder) -> None:
                cb.mov("r4", "r9")
                cb.mov("r5", "r17")
                cb.addi("r17", "r17", 4)
                cb.mov("r6", "r1")
                cont = cb.new_label("cc_cont")
                cb.call("make_node", fallthrough=cont)
                cb.open_block(cont)
                cb.store("r2", "r16", 0)
                cb.addi("r16", "r16", 1)
                cb.addi("r18", "r18", 1)

            def t_number(cb: IRBuilder) -> None:
                cb.muli("r10", "r9", 3)
                cb.add("r10", "r10", "r1")
                cb.store("r10", "r16", 0)
                cb.addi("r16", "r16", 1)

            def t_binop(cb: IRBuilder) -> None:
                cb.slti("r11", "r16", stack_base + 2)

                def underflow(ub: IRBuilder) -> None:
                    ub.addi("r19", "r19", 1)

                def reduce(ub: IRBuilder) -> None:
                    ub.subi("r16", "r16", 1)
                    ub.load("r12", "r16", 0)
                    ub.load("r13", "r16", -1)
                    ub.add("r12", "r12", "r13")
                    ub.store("r12", "r16", -1)

                if_then_else(cb, "r11", underflow, reduce, stem="binop")

            def t_lparen(cb: IRBuilder) -> None:
                cb.li("r12", -1)
                cb.store("r12", "r16", 0)
                cb.addi("r16", "r16", 1)

            def t_rparen(cb: IRBuilder) -> None:
                # Pop until the matching marker (short, variable loop).
                head = cb.new_label("pop_head")
                body = cb.new_label("pop_body")
                out = cb.new_label("pop_out")
                cb.jump(head)
                with cb.block(head):
                    cb.slti("r11", "r16", stack_base + 1)
                    cb.bnez("r11", out, fallthrough=body)
                with cb.block(body):
                    cb.subi("r16", "r16", 1)
                    cb.load("r12", "r16", 0)
                    cb.seqi("r13", "r12", -1)
                    cb.beqz("r13", head, fallthrough=out)
                cb.open_block(out)

            def t_other(cb: IRBuilder) -> None:
                cb.addi("r19", "r19", 1)
                cb.andi("r11", "r9", 3)
                cb.add("r18", "r18", "r11")

            switch_chain(
                bb, "r9",
                [t_ident, t_number, t_binop, t_lparen, t_rparen, t_other],
                stem="tok",
            )

        counted_loop_imm(b, "r1", 0, tokens, consume, stem="parse")
        b.store("r18", "r0", 900)
        b.store("r19", "r0", 901)
        b.halt()

    program = b.build()
    rng = _host_lcg(99)
    # Skewed token mix, as in real source text: identifiers and
    # numbers dominate, stray tokens are rare.
    mix = [0] * 6 + [1] * 5 + [2] * 2 + [3, 4, 5]
    fill_words(program, token_base, [mix[rng() % 16] for _ in range(tokens)])
    return program


@register("compress", "int", "LZW-style hashing with a short probe loop")
def build_compress(scale: float = 1.0) -> Program:
    length = max(1, int(600 * scale))
    input_base = 2000
    table_base = 12000  # 512 entries of (key, code)
    table_mask = 511
    b = IRBuilder()

    with b.function("main"):
        b.li("r16", 0)    # prev code
        b.li("r17", 256)  # next free code
        b.li("r18", 0)    # output count
        b.li("r20", 0)    # running checksum (independent of the chain)

        def step(bb: IRBuilder) -> None:
            bb.addi("r8", "r1", input_base)
            bb.load("r9", "r8", 0)          # next byte
            # Bit-packing bookkeeping: depends only on the input byte
            # and the loop index, so it overlaps the hash chain.
            bb.muli("r21", "r9", 31)
            bb.xor("r20", "r20", "r21")
            bb.andi("r22", "r1", 255)
            bb.addi("r22", "r22", input_base + 2048)
            bb.store("r9", "r22", 0)
            bb.shl("r10", "r16", 8)
            bb.or_("r10", "r10", "r9")      # pair key
            bb.muli("r11", "r10", 2654435761)
            bb.shr("r11", "r11", 16)
            bb.andi("r11", "r11", table_mask)
            # Short linear-probe loop (the unrolling candidate).
            head = bb.new_label("probe_head")
            hit = bb.new_label("probe_hit")
            miss = bb.new_label("probe_miss")
            out = bb.new_label("probe_out")
            bb.li("r12", 0)                 # probe count
            bb.jump(head)
            with bb.block(head):
                bb.add("r13", "r11", "r12")
                bb.andi("r13", "r13", table_mask)
                bb.shl("r13", "r13", 1)
                bb.addi("r13", "r13", table_base)
                bb.load("r14", "r13", 0)    # stored key
                bb.seq("r15", "r14", "r10")
                bb.bnez("r15", hit, fallthrough=miss)
            with bb.block(miss):
                bb.addi("r12", "r12", 1)
                bb.slti("r15", "r12", 4)
                bb.bnez("r15", head, fallthrough=out)
            with bb.block(hit):
                bb.load("r16", "r13", 1)    # chain: prev = stored code
                bb.jump(out)
            bb.open_block(out)
            # On miss (probe exhausted, r15 == 0): emit + insert.
            bb.seqi("r15", "r12", 4)

            def emit(cb: IRBuilder) -> None:
                cb.store("r16", "r0", 950)  # "output" the prev code
                cb.addi("r18", "r18", 1)
                cb.store("r10", "r13", 0)   # insert at last probe slot
                cb.store("r17", "r13", 1)
                cb.addi("r17", "r17", 1)
                cb.mov("r16", "r9")

            if_then_else(bb, "r15", emit, stem="emit")

        counted_loop_imm(b, "r1", 0, length, step, stem="comp")
        b.store("r18", "r0", 900)
        b.store("r20", "r0", 902)
        b.halt()

    program = b.build()
    rng = _host_lcg(1234)
    # Skewed byte distribution: repeats make the hash chains hit.
    fill_words(program, input_base, [(rng() >> 5) % 17 for _ in range(length)])
    return program


@register("li", "int", "recursive expression-tree interpreter")
def build_li(scale: float = 1.0) -> Program:
    # Complete binary tree of height h: nodes stored as 4 words
    # [op, left_addr, right_addr, value].
    height = 9 if scale >= 1.0 else max(4, int(9 * scale))
    repeats = max(1, round(2 * max(scale, 0.25)))
    tree_base = 8000
    stack_base = 30000
    b = IRBuilder()

    with b.function("eval"):
        # r4 = node address; result in r2; explicit memory stack (r25).
        b.load("r8", "r4", 0)  # op

        leaf = b.new_label("leaf")
        inner = b.new_label("inner")
        b.beqz("r8", leaf, fallthrough=inner)
        with b.block(leaf):
            b.load("r2", "r4", 3)
            b.ret()
        with b.block(inner):
            b.store("r4", "r25", 0)
            b.addi("r25", "r25", 1)
            b.load("r4", "r4", 1)  # left child
            left_done = b.new_label("left_done")
            b.call("eval", fallthrough=left_done)
        with b.block(left_done):
            b.load("r9", "r25", -1)   # node
            b.store("r2", "r25", 0)   # push left result
            b.addi("r25", "r25", 1)
            b.load("r4", "r9", 2)     # right child
            right_done = b.new_label("right_done")
            b.call("eval", fallthrough=right_done)
        with b.block(right_done):
            b.subi("r25", "r25", 1)
            b.load("r10", "r25", 0)   # left result
            b.subi("r25", "r25", 1)
            b.load("r9", "r25", 0)    # node
            b.load("r8", "r9", 0)     # op again

            def c_add(cb: IRBuilder) -> None:
                cb.add("r2", "r10", "r2")

            def c_sub(cb: IRBuilder) -> None:
                cb.sub("r2", "r10", "r2")

            def c_min(cb: IRBuilder) -> None:
                cb.slt("r11", "r10", "r2")

                def pick_left(pb: IRBuilder) -> None:
                    pb.mov("r2", "r10")

                if_then_else(cb, "r11", pick_left, stem="min")

            switch_chain(b, "r8", [c_add, c_add, c_sub, c_min], stem="comb")
            b.ret()

    with b.function("main"):
        b.li("r25", stack_base)
        b.li("r17", 0)

        def run(bb: IRBuilder) -> None:
            bb.li("r4", tree_base)
            done = bb.new_label("eval_done")
            bb.call("eval", fallthrough=done)
            bb.open_block(done)
            bb.add("r17", "r17", "r2")

        counted_loop_imm(b, "r1", 0, repeats, run, stem="rep")
        b.store("r17", "r0", 900)
        b.halt()

    program = b.build()
    # Lay out the complete tree breadth-first.
    rng = _host_lcg(555)
    n_nodes = (1 << height) - 1
    first_leaf = (1 << (height - 1)) - 1
    for i in range(n_nodes):
        addr = tree_base + 4 * i
        if i >= first_leaf:
            program.memory_image[addr] = 0
            program.memory_image[addr + 3] = rng() % 100
        else:
            program.memory_image[addr] = 1 + rng() % 3
            program.memory_image[addr + 1] = tree_base + 4 * (2 * i + 1)
            program.memory_image[addr + 2] = tree_base + 4 * (2 * i + 2)
            program.memory_image[addr + 3] = 0
    return program


@register("ijpeg", "int", "blocked 8x8 transform with regular inner loops")
def build_ijpeg(scale: float = 1.0) -> Program:
    blocks = max(1, int(24 * scale))  # number of 8x8 blocks processed
    image_base = 2000
    out_base = 20000
    quant_base = 40000
    b = IRBuilder()

    with b.function("main"):
        b.li("r16", 0)  # nonzero coefficient count

        def per_block(bb: IRBuilder) -> None:
            bb.muli("r17", "r1", 64)  # block offset

            def per_row(rb: IRBuilder) -> None:
                # 1D transform along the row: accumulate 8 taps.
                rb.muli("r18", "r2", 8)
                rb.add("r18", "r18", "r17")
                rb.li("r19", 0)  # accumulator

                def tap(tb: IRBuilder) -> None:
                    tb.add("r8", "r18", "r3")
                    tb.addi("r8", "r8", image_base)
                    tb.load("r9", "r8", 0)
                    tb.addi("r10", "r3", 1)
                    tb.mul("r9", "r9", "r10")
                    tb.add("r19", "r19", "r9")

                counted_loop_imm(rb, "r3", 0, 8, tap, stem="tap",
                                 bound_reg="r24")
                # Quantise and store the row coefficient.
                rb.addi("r8", "r2", quant_base)
                rb.load("r9", "r8", 0)
                rb.div("r10", "r19", "r9")
                rb.add("r11", "r18", "r2")
                rb.addi("r11", "r11", out_base)
                rb.store("r10", "r11", 0)

                def count_nz(cb: IRBuilder) -> None:
                    cb.addi("r16", "r16", 1)

                rb.sne("r12", "r10", "r0")
                if_then_else(rb, "r12", count_nz, stem="nz")

            counted_loop_imm(bb, "r2", 0, 8, per_row, stem="row",
                             bound_reg="r29")

        counted_loop_imm(b, "r1", 0, blocks, per_block, stem="blk")
        b.store("r16", "r0", 900)
        b.halt()

    program = b.build()
    rng = _host_lcg(31415)
    fill_words(program, image_base, [rng() % 256 for _ in range(blocks * 64)])
    fill_words(program, quant_base, [3 + (i % 13) for i in range(8)])
    return program


@register("perl", "int", "opcode dispatch with hash table and string loops")
def build_perl(scale: float = 1.0) -> Program:
    ops = max(1, int(700 * scale))
    ops_base = 2000
    hash_base = 10000  # 256 buckets of (key, value)
    str_base = 14000
    b = IRBuilder()

    with b.function("intern"):
        # Tiny symbol hash: absorbable under CALL_THRESH.
        b.muli("r2", "r4", 2654435761)
        b.shr("r2", "r2", 20)
        b.andi("r2", "r2", 255)
        b.ret()

    with b.function("main"):
        b.li("r16", 0)  # value accumulator
        b.li("r17", 0)  # defined-count

        def dispatch(bb: IRBuilder) -> None:
            bb.addi("r8", "r1", ops_base)
            bb.load("r9", "r8", 0)   # packed op
            bb.andi("r10", "r9", 3)  # opcode in [0, 4)
            bb.shr("r11", "r9", 2)   # operand

            def op_set(cb: IRBuilder) -> None:
                cb.mov("r4", "r11")
                cont = cb.new_label("perl_cont")
                cb.call("intern", fallthrough=cont)
                cb.open_block(cont)
                cb.shl("r12", "r2", 1)
                cb.addi("r12", "r12", hash_base)
                cb.store("r11", "r12", 0)
                cb.store("r16", "r12", 1)
                cb.addi("r17", "r17", 1)

            def op_get(cb: IRBuilder) -> None:
                cb.mov("r4", "r11")
                cont = cb.new_label("perl_cont")
                cb.call("intern", fallthrough=cont)
                cb.open_block(cont)
                cb.shl("r12", "r2", 1)
                cb.addi("r12", "r12", hash_base)
                cb.load("r13", "r12", 0)
                cb.seq("r14", "r13", "r11")

                def hit(hb: IRBuilder) -> None:
                    hb.load("r15", "r12", 1)
                    hb.add("r16", "r16", "r15")

                def miss(hb: IRBuilder) -> None:
                    hb.subi("r16", "r16", 1)

                if_then_else(cb, "r14", hit, miss, stem="lookup")

            def op_string(cb: IRBuilder) -> None:
                # Walk a short "string" (4-11 chars) summing chars.
                cb.andi("r12", "r11", 7)
                cb.addi("r12", "r12", 4)

                def ch(sb: IRBuilder) -> None:
                    sb.addi("r13", "r3", str_base)
                    sb.load("r14", "r13", 0)
                    sb.add("r16", "r16", "r14")

                counted_loop(cb, "r3", 0, "r12", ch, stem="str")

            def op_arith(cb: IRBuilder) -> None:
                cb.muli("r12", "r11", 3)
                cb.addi("r12", "r12", 7)
                cb.remi("r12", "r12", 1000)
                cb.add("r16", "r16", "r12")

            switch_chain(bb, "r10", [op_set, op_get, op_string, op_arith],
                         stem="perlop")

        counted_loop_imm(b, "r1", 0, ops, dispatch, stem="interp")
        b.store("r16", "r0", 900)
        b.store("r17", "r0", 901)
        b.halt()

    program = b.build()
    rng = _host_lcg(2718)
    fill_words(program, ops_base, [rng() % 4096 for _ in range(ops)])
    fill_words(program, str_base, [32 + rng() % 96 for _ in range(16)])
    return program


@register("vortex", "int", "record store with binary search and updates")
def build_vortex(scale: float = 1.0) -> Program:
    n_records = 256
    lookups = max(1, int(260 * scale))
    index_base = 5000            # sorted keys
    records_base = 10000         # 8 words per record
    b = IRBuilder()

    with b.function("update_record"):
        # Medium-sized transaction body: NOT absorbable (~35 dyn insts).
        b.load("r8", "r4", 2)
        b.addi("r8", "r8", 1)
        b.store("r8", "r4", 2)      # bump version
        b.load("r9", "r4", 3)
        b.add("r9", "r9", "r5")
        b.store("r9", "r4", 3)      # add amount
        b.load("r10", "r4", 4)
        b.load("r11", "r4", 5)
        b.add("r12", "r10", "r11")
        b.store("r12", "r4", 6)     # recompute checksum
        b.slti("r13", "r9", 0)

        def clamp(cb: IRBuilder) -> None:
            cb.store("r0", "r4", 3)
            cb.li("r2", 0)
            cb.ret()

        def ok(cb: IRBuilder) -> None:
            cb.li("r2", 1)
            cb.ret()

        neg = b.new_label("neg")
        pos = b.new_label("pos")
        b.bnez("r13", neg, fallthrough=pos)
        with b.block(neg):
            clamp(b)
        with b.block(pos):
            ok(b)

    with b.function("main"):
        lcg_seed(b, "r26", 867)
        b.li("r16", 0)  # found count
        b.li("r17", 0)  # committed count

        def transact(bb: IRBuilder) -> None:
            lcg_next(bb, "r8", "r26")
            bb.remi("r9", "r8", n_records * 2)  # probe key (half miss)
            # Audit-trail bookkeeping: independent of the search chain.
            bb.andi("r18", "r8", 127)
            bb.addi("r18", "r18", records_base + n_records * 8)
            bb.load("r19", "r18", 0)
            bb.addi("r19", "r19", 1)
            bb.store("r19", "r18", 0)
            bb.shr("r20", "r8", 3)
            bb.xor("r21", "r20", "r9")
            bb.andi("r21", "r21", 1023)
            # Binary search over the sorted index.
            bb.li("r10", 0)                 # lo
            bb.li("r11", n_records)         # hi
            head = bb.new_label("bs_head")
            body = bb.new_label("bs_body")
            go_lo = bb.new_label("bs_lo")
            go_hi = bb.new_label("bs_hi")
            out = bb.new_label("bs_out")
            bb.jump(head)
            with bb.block(head):
                bb.slt("r12", "r10", "r11")
                bb.beqz("r12", out, fallthrough=body)
            with bb.block(body):
                bb.add("r13", "r10", "r11")
                bb.shr("r13", "r13", 1)     # mid
                bb.addi("r14", "r13", index_base)
                bb.load("r15", "r14", 0)
                bb.slt("r12", "r15", "r9")
                bb.bnez("r12", go_lo, fallthrough=go_hi)
            with bb.block(go_lo):
                bb.addi("r10", "r13", 1)
                bb.jump(head)
            with bb.block(go_hi):
                bb.mov("r11", "r13")
                bb.jump(head)
            bb.open_block(out)
            # Validate the hit.
            bb.addi("r14", "r10", index_base)
            bb.load("r15", "r14", 0)
            bb.seq("r12", "r15", "r9")

            def found(cb: IRBuilder) -> None:
                cb.addi("r16", "r16", 1)
                cb.muli("r4", "r10", 8)
                cb.addi("r4", "r4", records_base)
                cb.andi("r5", "r8", 63)
                cont = cb.new_label("vx_cont")
                cb.call("update_record", fallthrough=cont)
                cb.open_block(cont)
                cb.add("r17", "r17", "r2")

            if_then_else(bb, "r12", found, stem="found")

        counted_loop_imm(b, "r1", 0, lookups, transact, stem="txn")
        b.store("r16", "r0", 900)
        b.store("r17", "r0", 901)
        b.halt()

    program = b.build()
    rng = _host_lcg(4242)
    keys = sorted(rng() % (n_records * 2) for _ in range(n_records))
    fill_words(program, index_base, keys)
    record_words = []
    for i in range(n_records):
        record_words.extend(
            [keys[i], i, 0, rng() % 500, rng() % 97, rng() % 89, 0, 0]
        )
    fill_words(program, records_base, record_words)
    return program
