"""Benchmark registry: the 18 synthetic SPEC95 stand-ins.

Integer suite: go, m88ksim, gcc (``cc``), compress, li, ijpeg, perl,
vortex.  Floating point suite: tomcatv, swim, su2cor, hydro2d, mgrid,
applu, turb3d, apsi, wave5, fpppp.  Each entry builds a fresh,
deterministic :class:`~repro.ir.program.Program`; ``scale`` multiplies
the dominant trip counts for longer or shorter runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.ir.program import Program

BuilderFn = Callable[[float], Program]


@dataclass(frozen=True)
class Benchmark:
    """A registered synthetic benchmark."""

    name: str
    suite: str  #: "int" or "fp"
    description: str
    builder: BuilderFn

    def build(self, scale: float = 1.0, input_set: str = "ref") -> Program:
        """Construct a fresh program instance.

        ``input_set`` selects the deterministic input data ("ref",
        "train", "alt"); the static code is identical across sets —
        only the initial memory image differs.
        """
        from repro.workloads.kernels import input_set as activate

        with activate(input_set):
            program = self.builder(scale)
        program.validate()
        return program


_REGISTRY: Dict[str, Benchmark] = {}


def register(name: str, suite: str, description: str) -> Callable[[BuilderFn], BuilderFn]:
    """Decorator registering a builder function under ``name``."""

    def wrap(fn: BuilderFn) -> BuilderFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate benchmark {name!r}")
        _REGISTRY[name] = Benchmark(
            name=name, suite=suite, description=description, builder=fn
        )
        return fn

    return wrap


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by name (imports the suite modules lazily).

    ``synth:<preset>:<seed>`` names resolve to generated benchmarks on
    the fly (see :mod:`repro.synth`): deterministic per name, never
    added to the static registry, so every grid driver, the CLI, and
    worker processes can address fuzzing programs by name alone.
    """
    if name.startswith("synth:"):
        return _synth_benchmark(name)
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def _synth_benchmark(name: str) -> Benchmark:
    """A generated benchmark for a ``synth:<preset>:<seed>`` name."""
    from repro.synth.generator import generate_program, parse_synth_name

    try:
        preset, seed, params = parse_synth_name(name)
    except ValueError as exc:
        raise KeyError(str(exc)) from None

    def builder(scale: float) -> Program:
        return generate_program(seed, params.scaled(scale))

    return Benchmark(
        name=name,
        suite="synth",
        description=f"generated program (preset={preset}, seed={seed})",
        builder=builder,
    )


def all_benchmarks() -> List[Benchmark]:
    """Every registered benchmark, integer suite first."""
    _ensure_loaded()
    return integer_benchmarks() + fp_benchmarks()


def integer_benchmarks() -> List[Benchmark]:
    """The integer suite, in the paper's Figure 5 order."""
    _ensure_loaded()
    order = ["cc", "compress", "go", "ijpeg", "li", "m88ksim", "perl", "vortex"]
    return [_REGISTRY[name] for name in order]


def fp_benchmarks() -> List[Benchmark]:
    """The floating point suite, in the paper's Figure 5 order."""
    _ensure_loaded()
    order = [
        "tomcatv",
        "su2cor",
        "swim",
        "turb3d",
        "fpppp",
        "mgrid",
        "hydro2d",
        "applu",
        "apsi",
        "wave5",
    ]
    return [_REGISTRY[name] for name in order]


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if not _loaded:
        # Importing the suite modules runs their @register decorators.
        from repro.workloads import floating, integer  # noqa: F401

        _loaded = True
