"""Reusable IR-emission helpers for the synthetic benchmarks.

All helpers emit into an :class:`~repro.ir.builder.IRBuilder` whose
current block is open, and leave a (possibly different) block open on
return, so they compose sequentially.  Structured-control helpers take
callables that emit their bodies under the same contract.

Register conventions used by the workloads:

* ``r1``–``r3``: loop counters (outer to inner)
* ``r4``–``r7`` / ``f4``–``f7``: call arguments; ``r2`` / ``f2`` results
* ``r8``–``r15`` / ``f8``–``f11``: scratch
* ``r16``–``r25`` / ``f12``–``f15``: benchmark state
* ``r26``–``r28``: LCG pseudo-random state
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional, Sequence

from repro.ir.builder import IRBuilder

BodyFn = Callable[[IRBuilder], None]

LCG_MULTIPLIER = 1103515245
LCG_INCREMENT = 12345
LCG_MASK = 0x7FFFFFFF


#: named input sets: each offsets every data seed, giving the same
#: static program different (deterministic) input data — the "train"
#: set profiles task selection, the "ref" set is measured, mirroring
#: SPEC95 methodology.
INPUT_SETS = {"ref": 0, "train": 0x5EED1, "alt": 0xA17B3}

_active_input_offset = 0


@contextlib.contextmanager
def input_set(name: str):
    """Activate a named input set for workload builders (context)."""
    global _active_input_offset
    if name not in INPUT_SETS:
        known = ", ".join(sorted(INPUT_SETS))
        raise KeyError(f"unknown input set {name!r}; known: {known}")
    previous = _active_input_offset
    _active_input_offset = INPUT_SETS[name]
    try:
        yield
    finally:
        _active_input_offset = previous


def host_lcg(seed: int) -> Callable[[], int]:
    """A Python-side LCG matching the in-program generator.

    Used to fill deterministic input data into program memory images;
    the active :func:`input_set` perturbs the stream so the same
    static program gets different data.
    """
    state = (seed + _active_input_offset) & LCG_MASK

    def step() -> int:
        nonlocal state
        state = (state * LCG_MULTIPLIER + LCG_INCREMENT) & LCG_MASK
        return state

    return step


def fill_words(program, base: int, values) -> None:
    """Place input data into the program's initial memory image."""
    for offset, value in enumerate(values):
        program.memory_image[base + offset] = value


def lcg_seed(b: IRBuilder, state_reg: str, seed: int) -> None:
    """Initialise the in-program pseudo-random generator."""
    b.li(state_reg, seed & LCG_MASK)


def lcg_next(b: IRBuilder, dst: str, state_reg: str, scratch: str = "r28") -> None:
    """Advance the LCG; leave the new 31-bit state in ``dst`` and
    ``state_reg``.

    Used to generate data-dependent, hard-to-predict branch conditions
    (the integer benchmarks' irregular control flow).
    """
    b.muli(scratch, state_reg, LCG_MULTIPLIER)
    b.addi(scratch, scratch, LCG_INCREMENT)
    b.andi(state_reg, scratch, LCG_MASK)
    if dst != state_reg:
        b.mov(dst, state_reg)


def counted_loop(
    b: IRBuilder,
    var: str,
    start: int,
    bound: str,
    body: BodyFn,
    step: int = 1,
    stem: str = "loop",
) -> None:
    """Emit ``for (var = start; var < bound; var += step) body``.

    ``bound`` is a register holding the (exclusive) limit.  The body
    runs at least zero times (the condition is tested before entry).
    """
    head = b.new_label(f"{stem}_head")
    body_lbl = b.new_label(f"{stem}_body")
    exit_lbl = b.new_label(f"{stem}_exit")
    b.li(var, start)
    b.jump(head)
    with b.block(head):
        b.slt("r31", var, bound)
        b.beqz("r31", exit_lbl, fallthrough=body_lbl)
    with b.block(body_lbl):
        body(b)
        b.addi(var, var, step)
        b.jump(head)
    b.open_block(exit_lbl)


def counted_loop_imm(
    b: IRBuilder,
    var: str,
    start: int,
    bound: int,
    body: BodyFn,
    step: int = 1,
    stem: str = "loop",
    bound_reg: str = "r30",
) -> None:
    """:func:`counted_loop` with an immediate bound."""
    b.li(bound_reg, bound)
    counted_loop(b, var, start, bound_reg, body, step=step, stem=stem)


def if_then_else(
    b: IRBuilder,
    cond: str,
    then_body: BodyFn,
    else_body: Optional[BodyFn] = None,
    stem: str = "if",
) -> None:
    """Emit ``if (cond != 0) then_body else else_body`` (diamond)."""
    then_lbl = b.new_label(f"{stem}_then")
    join_lbl = b.new_label(f"{stem}_join")
    if else_body is not None:
        else_lbl = b.new_label(f"{stem}_else")
        b.bnez(cond, then_lbl, fallthrough=else_lbl)
        with b.block(else_lbl):
            else_body(b)
            b.jump(join_lbl)
    else:
        b.bnez(cond, then_lbl, fallthrough=join_lbl)
    with b.block(then_lbl):
        then_body(b)
        b.jump(join_lbl)
    b.open_block(join_lbl)


def switch_chain(
    b: IRBuilder,
    selector: str,
    cases: Sequence[BodyFn],
    scratch: str = "r31",
    stem: str = "case",
) -> None:
    """Emit an if-else chain dispatching ``selector`` over ``cases``.

    ``selector`` must hold a value in ``[0, len(cases))``; the last
    case is the default.  This is the decode/dispatch idiom of the
    interpreter-style integer benchmarks.
    """
    join_lbl = b.new_label(f"{stem}_join")
    for i, case in enumerate(cases[:-1]):
        case_lbl = b.new_label(f"{stem}_{i}")
        next_lbl = b.new_label(f"{stem}_next{i}")
        b.seqi(scratch, selector, i)
        b.bnez(scratch, case_lbl, fallthrough=next_lbl)
        with b.block(case_lbl):
            case(b)
            b.jump(join_lbl)
        b.open_block(next_lbl)
    cases[-1](b)
    b.jump(join_lbl)
    b.open_block(join_lbl)


def fp_chain(
    b: IRBuilder,
    length: int,
    acc: str = "f12",
    operand: str = "f8",
    pattern: Sequence[str] = ("fadd", "fmul"),
) -> None:
    """Emit a straight-line chain of ``length`` dependent fp ops.

    Builds the long in-block dependence chains typical of the fp
    benchmarks (and, with large ``length``, fpppp's giant blocks).
    """
    for i in range(length):
        op = pattern[i % len(pattern)]
        getattr(b, op)(acc, acc, operand)


def store_array_init(
    b: IRBuilder,
    base: int,
    count: int,
    value_fn: Callable[[IRBuilder, str], None],
    var: str = "r3",
    stem: str = "init",
) -> None:
    """Emit a loop storing ``count`` generated values at ``base``.

    ``value_fn(b, dst_reg)`` must leave each element's value in
    ``dst_reg`` (an integer register, or use the fp path by storing an
    fp register name).
    """

    def body(bb: IRBuilder) -> None:
        value_fn(bb, "r8")
        bb.addi("r9", var, base)
        bb.store("r8", "r9", 0)

    counted_loop_imm(b, var, 0, count, body, stem=stem)
