"""Synthetic SPECfp95 stand-ins.

All ten are loop-nest codes over in-memory arrays, with the
per-benchmark block-size and control-flow profiles the paper's
Table 1 reports: large predictable loop bodies for tomcatv / swim /
su2cor / mgrid / applu / turb3d / wave5, *small* bodies with boundary
conditionals for hydro2d and apsi, and fpppp's signature giant
straight-line basic blocks plus a tiny unrollable inner loop.

Loop bound registers: ``r30`` outer, ``r29`` middle, ``r24`` inner
(``r23`` for a fourth nesting level).
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.program import Program
from repro.workloads.kernels import (
    counted_loop,
    counted_loop_imm,
    fill_words,
    host_lcg,
    if_then_else,
)
from repro.workloads.registry import register


def _fp_values(seed: int, count: int, lo: float = 0.1, hi: float = 2.0):
    rng = host_lcg(seed)
    span = hi - lo
    return [lo + span * (rng() % 10_000) / 10_000.0 for _ in range(count)]


@register("tomcatv", "fp", "vectorised mesh generation (2D stencil sweeps)")
def build_tomcatv(scale: float = 1.0) -> Program:
    n = 18
    iters = max(1, int(2 * scale))
    x_base, y_base = 2000, 2000 + n * n
    rx_base, ry_base = 2000 + 2 * n * n, 2000 + 3 * n * n
    b = IRBuilder()

    with b.function("main"):
        b.fli("f15", 0.0)  # residual accumulator

        def iteration(bb: IRBuilder) -> None:
            def row(rb: IRBuilder) -> None:
                def point(pb: IRBuilder) -> None:
                    # addr = base + i*n + j
                    pb.muli("r8", "r2", n)
                    pb.add("r8", "r8", "r3")
                    pb.addi("r9", "r8", x_base)
                    pb.addi("r10", "r8", y_base)
                    # Load the 4-neighbourhood of X and Y.
                    pb.load("f4", "r9", -1)
                    pb.load("f5", "r9", 1)
                    pb.load("f6", "r9", -n)
                    pb.load("f7", "r9", n)
                    pb.load("f8", "r10", -1)
                    pb.load("f9", "r10", 1)
                    pb.load("f10", "r10", -n)
                    pb.load("f11", "r10", n)
                    # Large straight-line update (the tomcatv signature).
                    pb.fadd("f12", "f4", "f5")
                    pb.fadd("f13", "f6", "f7")
                    pb.fadd("f12", "f12", "f13")
                    pb.fli("f14", 0.25)
                    pb.fmul("f12", "f12", "f14")
                    pb.fadd("f13", "f8", "f9")
                    pb.fadd("f2", "f10", "f11")
                    pb.fadd("f13", "f13", "f2")
                    pb.fmul("f13", "f13", "f14")
                    pb.load("f2", "r9", 0)
                    pb.fsub("f3", "f12", "f2")
                    pb.fmul("f3", "f3", "f14")
                    pb.fadd("f2", "f2", "f3")
                    pb.addi("r11", "r8", rx_base)
                    pb.store("f2", "r11", 0)
                    pb.load("f2", "r10", 0)
                    pb.fsub("f3", "f13", "f2")
                    pb.fmul("f3", "f3", "f14")
                    pb.fadd("f2", "f2", "f3")
                    pb.addi("r11", "r8", ry_base)
                    pb.store("f2", "r11", 0)
                    pb.fadd("f15", "f15", "f3")

                counted_loop_imm(rb, "r3", 1, n - 1, point, stem="tcj",
                                 bound_reg="r24")

            counted_loop_imm(bb, "r2", 1, n - 1, row, stem="tci",
                             bound_reg="r29")

            # Copy the relaxed values back.
            def copy_row(rb: IRBuilder) -> None:
                def copy_point(pb: IRBuilder) -> None:
                    pb.muli("r8", "r2", n)
                    pb.add("r8", "r8", "r3")
                    pb.addi("r9", "r8", rx_base)
                    pb.load("f4", "r9", 0)
                    pb.addi("r10", "r8", x_base)
                    pb.store("f4", "r10", 0)
                    pb.addi("r9", "r8", ry_base)
                    pb.load("f5", "r9", 0)
                    pb.addi("r10", "r8", y_base)
                    pb.store("f5", "r10", 0)

                counted_loop_imm(rb, "r3", 1, n - 1, copy_point, stem="cpj",
                                 bound_reg="r24")

            counted_loop_imm(bb, "r2", 1, n - 1, copy_row, stem="cpi",
                             bound_reg="r29")

        counted_loop_imm(b, "r1", 0, iters, iteration, stem="tc")
        b.store("f15", "r0", 900)
        b.halt()

    program = b.build()
    fill_words(program, x_base, _fp_values(11, n * n))
    fill_words(program, y_base, _fp_values(13, n * n))
    fill_words(program, rx_base, [0.0] * (n * n))
    fill_words(program, ry_base, [0.0] * (n * n))
    return program


@register("swim", "fp", "shallow water equations (finite differences)")
def build_swim(scale: float = 1.0) -> Program:
    n = 16
    sweeps = max(1, int(3 * scale))
    u_base, v_base, p_base = 2000, 2000 + n * n, 2000 + 2 * n * n
    z_base = 2000 + 3 * n * n
    b = IRBuilder()

    with b.function("main"):
        b.fli("f14", 0.5)
        b.fli("f15", 0.05)  # dt-ish constant
        b.fli("f13", 0.0)   # z-field accumulator; the final store reads
                            # it even when a sweep loop is sized to zero

        def sweep(bb: IRBuilder) -> None:
            def row(rb: IRBuilder) -> None:
                def point(pb: IRBuilder) -> None:
                    pb.muli("r8", "r2", n)
                    pb.add("r8", "r8", "r3")
                    pb.addi("r9", "r8", u_base)
                    pb.addi("r10", "r8", v_base)
                    pb.addi("r11", "r8", p_base)
                    pb.load("f4", "r9", 0)
                    pb.load("f5", "r9", 1)
                    pb.load("f6", "r10", 0)
                    pb.load("f7", "r10", n)
                    pb.load("f8", "r11", 0)
                    pb.load("f9", "r11", -1)
                    pb.load("f10", "r11", -n)
                    # Vorticity / height updates.
                    pb.fsub("f11", "f5", "f4")
                    pb.fsub("f12", "f7", "f6")
                    pb.fadd("f11", "f11", "f12")
                    pb.fmul("f11", "f11", "f15")
                    pb.fadd("f13", "f8", "f9")
                    pb.fadd("f13", "f13", "f10")
                    pb.fmul("f13", "f13", "f14")
                    pb.fsub("f13", "f13", "f11")
                    pb.addi("r12", "r8", z_base)
                    pb.store("f13", "r12", 0)
                    pb.fmul("f4", "f4", "f14")
                    pb.fadd("f4", "f4", "f11")
                    pb.store("f4", "r9", 0)
                    pb.fmul("f6", "f6", "f14")
                    pb.fsub("f6", "f6", "f11")
                    pb.store("f6", "r10", 0)
                    pb.fadd("f8", "f8", "f13")
                    pb.fmul("f8", "f8", "f14")
                    pb.store("f8", "r11", 0)

                counted_loop_imm(rb, "r3", 1, n - 1, point, stem="swj",
                                 bound_reg="r24")

            counted_loop_imm(bb, "r2", 1, n - 1, row, stem="swi",
                             bound_reg="r29")

        counted_loop_imm(b, "r1", 0, sweeps, sweep, stem="sw")
        b.store("f13", "r0", 900)
        b.halt()

    program = b.build()
    fill_words(program, u_base, _fp_values(21, n * n))
    fill_words(program, v_base, _fp_values(23, n * n))
    fill_words(program, p_base, _fp_values(25, n * n))
    fill_words(program, z_base, [0.0] * (n * n))
    return program


@register("su2cor", "fp", "quark propagator (small dense matrix kernels)")
def build_su2cor(scale: float = 1.0) -> Program:
    sites = max(1, int(110 * scale))
    m_base = 2000   # a 4x4 coupling matrix
    vec_base = 2100  # per-site 16-element vectors (wrapped)
    out_base = 6000
    b = IRBuilder()

    with b.function("main"):
        def site(bb: IRBuilder) -> None:
            bb.muli("r16", "r1", 16)
            bb.andi("r16", "r16", 1023)

            def mrow(rb: IRBuilder) -> None:
                rb.fli("f12", 0.0)
                rb.muli("r8", "r2", 4)

                def mcol(cb: IRBuilder) -> None:
                    cb.add("r9", "r8", "r3")
                    cb.addi("r9", "r9", m_base)
                    cb.load("f4", "r9", 0)
                    cb.add("r10", "r16", "r3")
                    cb.addi("r10", "r10", vec_base)
                    cb.load("f5", "r10", 0)
                    cb.fmul("f6", "f4", "f5")
                    cb.fadd("f12", "f12", "f6")

                counted_loop_imm(rb, "r3", 0, 4, mcol, stem="mc",
                                 bound_reg="r24")
                rb.add("r11", "r16", "r2")
                rb.addi("r11", "r11", out_base)
                rb.store("f12", "r11", 0)

            counted_loop_imm(bb, "r2", 0, 4, mrow, stem="mr",
                             bound_reg="r29")
            # Normalise the output vector (dependent fp chain).
            bb.addi("r12", "r16", out_base)
            bb.load("f7", "r12", 0)
            bb.load("f8", "r12", 1)
            bb.fmul("f7", "f7", "f7")
            bb.fmul("f8", "f8", "f8")
            bb.fadd("f7", "f7", "f8")
            bb.fli("f9", 1.0)
            bb.fadd("f7", "f7", "f9")
            bb.fdiv("f10", "f9", "f7")
            bb.store("f10", "r12", 2)

        counted_loop_imm(b, "r1", 0, sites, site, stem="site")
        b.halt()

    program = b.build()
    fill_words(program, m_base, _fp_values(31, 16, 0.2, 0.9))
    fill_words(program, vec_base, _fp_values(33, 1100))
    return program


@register("hydro2d", "fp", "hydrodynamics (small bodies, boundary tests)")
def build_hydro2d(scale: float = 1.0) -> Program:
    n = 18
    passes = max(1, int(3 * scale))
    r_base, p_base = 2000, 2000 + n * n
    b = IRBuilder()

    with b.function("main"):
        b.fli("f14", 0.3)

        def hpass(bb: IRBuilder) -> None:
            def row(rb: IRBuilder) -> None:
                def point(pb: IRBuilder) -> None:
                    pb.muli("r8", "r2", n)
                    pb.add("r8", "r8", "r3")
                    pb.addi("r9", "r8", r_base)
                    pb.load("f4", "r9", 0)
                    pb.load("f5", "r9", 1)
                    pb.fsub("f6", "f5", "f4")
                    pb.fmul("f6", "f6", "f14")
                    # Boundary/limit conditional: the small-block
                    # control flow hydro2d is known for.
                    pb.cvtfi("r10", "f6")
                    pb.slti("r11", "r10", 1)

                    def limit(lb: IRBuilder) -> None:
                        lb.fadd("f4", "f4", "f6")
                        lb.addi("r12", "r8", p_base)
                        lb.store("f4", "r12", 0)

                    def clamp(lb: IRBuilder) -> None:
                        lb.fli("f7", 1.0)
                        lb.addi("r12", "r8", p_base)
                        lb.store("f7", "r12", 0)

                    if_then_else(pb, "r11", limit, clamp, stem="lim")

                counted_loop_imm(rb, "r3", 0, n - 1, point, stem="hyj",
                                 bound_reg="r24")

            counted_loop_imm(bb, "r2", 0, n, row, stem="hyi",
                             bound_reg="r29")

        counted_loop_imm(b, "r1", 0, passes, hpass, stem="hy")
        b.halt()

    program = b.build()
    fill_words(program, r_base, _fp_values(41, n * n))
    fill_words(program, p_base, [0.0] * (n * n))
    return program


@register("mgrid", "fp", "multigrid 3D stencil smoothing")
def build_mgrid(scale: float = 1.0) -> Program:
    n = 10
    passes = max(1, int(2 * scale))
    u_base = 2000
    r_base = 2000 + n * n * n
    b = IRBuilder()

    with b.function("main"):
        b.fli("f14", 0.125)

        def mpass(bb: IRBuilder) -> None:
            def plane(kb: IRBuilder) -> None:
                def row(rb: IRBuilder) -> None:
                    def point(pb: IRBuilder) -> None:
                        pb.muli("r8", "r2", n)
                        pb.add("r8", "r8", "r3")
                        pb.muli("r9", "r15", n * n)
                        pb.add("r8", "r8", "r9")
                        pb.addi("r9", "r8", u_base)
                        # 7-point stencil.
                        pb.load("f4", "r9", 0)
                        pb.load("f5", "r9", 1)
                        pb.load("f6", "r9", -1)
                        pb.load("f7", "r9", n)
                        pb.load("f8", "r9", -n)
                        pb.load("f9", "r9", n * n)
                        pb.load("f10", "r9", -(n * n))
                        pb.fadd("f11", "f5", "f6")
                        pb.fadd("f12", "f7", "f8")
                        pb.fadd("f13", "f9", "f10")
                        pb.fadd("f11", "f11", "f12")
                        pb.fadd("f11", "f11", "f13")
                        pb.fmul("f11", "f11", "f14")
                        pb.fadd("f11", "f11", "f4")
                        pb.fmul("f11", "f11", "f14")
                        pb.addi("r10", "r8", r_base)
                        pb.store("f11", "r10", 0)

                    counted_loop_imm(rb, "r3", 1, n - 1, point, stem="mgj",
                                     bound_reg="r24")

                counted_loop_imm(kb, "r2", 1, n - 1, row, stem="mgi",
                                 bound_reg="r29")

            counted_loop_imm(bb, "r15", 1, n - 1, plane, stem="mgk",
                             bound_reg="r23")

        counted_loop_imm(b, "r1", 0, passes, mpass, stem="mg")
        b.halt()

    program = b.build()
    fill_words(program, u_base, _fp_values(51, n * n * n))
    fill_words(program, r_base, [0.0] * (n * n * n))
    return program


@register("applu", "fp", "SSOR solver with per-point pivoting divides")
def build_applu(scale: float = 1.0) -> Program:
    n = 14
    passes = max(1, int(2 * scale))
    a_base = 2000
    d_base = 2000 + n * n
    b = IRBuilder()

    with b.function("main"):
        b.fli("f14", 0.2)
        b.fli("f15", 1.0)

        def spass(bb: IRBuilder) -> None:
            def row(rb: IRBuilder) -> None:
                def point(pb: IRBuilder) -> None:
                    pb.muli("r8", "r2", n)
                    pb.add("r8", "r8", "r3")
                    pb.addi("r9", "r8", a_base)
                    pb.addi("r13", "r8", d_base)
                    pb.load("f4", "r9", 0)
                    # West/north neighbours from the previous pass's
                    # results (Jacobi-style), keeping points in a pass
                    # independent.
                    pb.load("f5", "r13", -1)
                    pb.load("f6", "r13", -n)
                    # Lower-triangular relaxation with a pivot divide.
                    pb.fmul("f7", "f5", "f14")
                    pb.fmul("f8", "f6", "f14")
                    pb.fadd("f7", "f7", "f8")
                    pb.fsub("f9", "f4", "f7")
                    pb.fadd("f10", "f4", "f15")
                    pb.fdiv("f11", "f9", "f10")
                    pb.fmul("f11", "f11", "f14")
                    pb.fadd("f12", "f11", "f7")
                    pb.fmul("f12", "f12", "f14")
                    pb.fadd("f13", "f12", "f11")
                    pb.store("f13", "r9", 0)
                    pb.store("f11", "r13", n * n)

                counted_loop_imm(rb, "r3", 1, n, point, stem="apj",
                                 bound_reg="r24")

            counted_loop_imm(bb, "r2", 1, n, row, stem="api",
                             bound_reg="r29")

        counted_loop_imm(b, "r1", 0, passes, spass, stem="ap")
        b.halt()

    program = b.build()
    fill_words(program, a_base, _fp_values(61, n * n, 0.5, 1.5))
    fill_words(program, d_base, _fp_values(63, n * n, 0.5, 1.5))
    fill_words(program, d_base + n * n, [0.0] * (n * n))
    return program


@register("turb3d", "fp", "turbulence (FFT-style strided butterflies)")
def build_turb3d(scale: float = 1.0) -> Program:
    size = 256
    stages = max(1, int(4 * scale))
    re_base, im_base = 2000, 2000 + size
    b = IRBuilder()

    with b.function("main"):
        b.fli("f14", 0.7071)  # twiddle-ish constant

        def stage(bb: IRBuilder) -> None:
            def pair(pb: IRBuilder) -> None:
                # Partner index: j XOR (1 << stage), computed with shifts.
                pb.li("r8", 1)
                pb.remi("r9", "r1", 7)

                def shift_body(sb: IRBuilder) -> None:
                    sb.shl("r8", "r8", 1)

                counted_loop(pb, "r15", 0, "r9", shift_body, stem="sh")
                pb.xor("r10", "r3", "r8")
                pb.addi("r11", "r3", re_base)
                pb.addi("r12", "r10", re_base)
                pb.load("f4", "r11", 0)
                pb.load("f5", "r12", 0)
                pb.addi("r11", "r3", im_base)
                pb.addi("r13", "r10", im_base)
                pb.load("f6", "r11", 0)
                pb.load("f7", "r13", 0)
                # Butterfly.
                pb.fadd("f8", "f4", "f5")
                pb.fsub("f9", "f4", "f5")
                pb.fadd("f10", "f6", "f7")
                pb.fsub("f11", "f6", "f7")
                pb.fmul("f9", "f9", "f14")
                pb.fmul("f11", "f11", "f14")
                pb.addi("r11", "r3", re_base)
                pb.store("f8", "r11", 0)
                pb.addi("r11", "r3", im_base)
                pb.store("f10", "r11", 0)
                pb.store("f9", "r12", 0)
                pb.store("f11", "r13", 0)

            counted_loop_imm(bb, "r3", 0, size // 2, pair, stem="fly",
                             bound_reg="r29")

        counted_loop_imm(b, "r1", 0, stages, stage, stem="stg")
        b.halt()

    program = b.build()
    fill_words(program, re_base, _fp_values(71, size, -1.0, 1.0))
    fill_words(program, im_base, _fp_values(73, size, -1.0, 1.0))
    return program


@register("apsi", "fp", "mesoscale weather (vertical columns, sign tests)")
def build_apsi(scale: float = 1.0) -> Program:
    cols, levels = 24, 20
    passes = max(1, int(2 * scale))
    t_base = 2000
    q_base = 2000 + cols * levels
    b = IRBuilder()

    with b.function("main"):
        b.fli("f14", 0.1)
        b.fli("f15", 0.01)

        def apass(bb: IRBuilder) -> None:
            def column(cb: IRBuilder) -> None:
                def level(lb: IRBuilder) -> None:
                    lb.muli("r8", "r2", levels)
                    lb.add("r8", "r8", "r3")
                    lb.addi("r9", "r8", t_base)
                    lb.load("f4", "r9", 0)
                    lb.load("f5", "r9", -1)
                    lb.fsub("f6", "f4", "f5")
                    lb.fmul("f6", "f6", "f14")
                    lb.cvtfi("r10", "f6")
                    lb.slti("r11", "r10", 0)

                    def stable(sb: IRBuilder) -> None:
                        sb.fadd("f4", "f4", "f15")
                        sb.store("f4", "r9", 0)

                    def convect(sb: IRBuilder) -> None:
                        sb.fadd("f7", "f4", "f5")
                        sb.fli("f8", 0.5)
                        sb.fmul("f7", "f7", "f8")
                        sb.store("f7", "r9", 0)
                        sb.store("f7", "r9", -1)
                        sb.addi("r12", "r8", q_base)
                        sb.store("f6", "r12", 0)

                    if_then_else(lb, "r11", convect, stable, stem="cv")

                counted_loop_imm(cb, "r3", 1, levels, level, stem="lvl",
                                 bound_reg="r24")

            counted_loop_imm(bb, "r2", 0, cols, column, stem="col",
                             bound_reg="r29")

        counted_loop_imm(b, "r1", 0, passes, apass, stem="aps")
        b.halt()

    program = b.build()
    fill_words(program, t_base, _fp_values(81, cols * levels, 270.0, 300.0))
    fill_words(program, q_base, [0.0] * (cols * levels))
    return program


@register("wave5", "fp", "particle-in-cell push and charge deposition")
def build_wave5(scale: float = 1.0) -> Program:
    particles = max(1, int(700 * scale))
    cells = 128
    pos_base, vel_base = 2000, 2000 + particles
    field_base = 8000
    charge_base = 8000 + cells
    b = IRBuilder()

    with b.function("main"):
        b.fli("f14", 0.05)  # dt

        def push(bb: IRBuilder) -> None:
            bb.addi("r8", "r1", pos_base)
            bb.addi("r9", "r1", vel_base)
            bb.load("f4", "r8", 0)
            bb.load("f5", "r9", 0)
            # Gather the field at the particle's cell.
            bb.cvtfi("r10", "f4")
            bb.andi("r10", "r10", cells - 1)
            bb.addi("r11", "r10", field_base)
            bb.load("f6", "r11", 0)
            # Leapfrog update.
            bb.fmul("f7", "f6", "f14")
            bb.fadd("f5", "f5", "f7")
            bb.fmul("f8", "f5", "f14")
            bb.fadd("f4", "f4", "f8")
            bb.store("f4", "r8", 0)
            bb.store("f5", "r9", 0)
            # Scatter charge.
            bb.cvtfi("r12", "f4")
            bb.andi("r12", "r12", cells - 1)
            bb.addi("r13", "r12", charge_base)
            bb.load("r14", "r13", 0)
            bb.addi("r14", "r14", 1)
            bb.store("r14", "r13", 0)

        counted_loop_imm(b, "r1", 0, particles, push, stem="pcl")
        b.halt()

    program = b.build()
    fill_words(program, pos_base, _fp_values(91, particles, 0.0, 120.0))
    fill_words(program, vel_base, _fp_values(93, particles, -1.0, 1.0))
    fill_words(program, field_base, _fp_values(95, cells, -0.5, 0.5))
    fill_words(program, charge_base, [0] * cells)
    return program


@register("fpppp", "fp", "two-electron integrals (giant basic blocks)")
def build_fpppp(scale: float = 1.0) -> Program:
    outer = max(1, int(26 * scale))
    data_base = 2000
    out_base = 4000
    b = IRBuilder()

    with b.function("main"):
        b.fli("f15", 0.999)

        def integral(bb: IRBuilder) -> None:
            # Gather a handful of operands.
            bb.muli("r8", "r1", 16)
            bb.andi("r8", "r8", 511)
            bb.addi("r9", "r8", data_base)
            bb.load("f4", "r9", 0)
            bb.load("f5", "r9", 1)
            bb.load("f6", "r9", 2)
            bb.load("f7", "r9", 3)
            bb.fmov("f9", "f4")
            bb.fmov("f10", "f5")
            bb.fmov("f11", "f6")
            bb.fmov("f12", "f7")
            # The fpppp signature: one enormous straight-line block of
            # fp arithmetic (~240 operations) carrying four independent
            # dependence chains (real fpppp has high in-block ILP).
            for k in range(60):
                acc = ("f9", "f10", "f11", "f12")[k % 4]
                op = ("f5", "f6", "f7", "f4")[(k + 1) % 4]
                bb.fmul(acc, acc, "f15")
                bb.fadd(acc, acc, op)
                bb.fmul(acc, acc, "f15")
                bb.fsub(acc, acc, "f4")
            bb.fadd("f9", "f9", "f10")
            bb.fadd("f11", "f11", "f12")
            bb.fadd("f12", "f9", "f11")
            bb.addi("r10", "r8", out_base)
            bb.store("f12", "r10", 0)
            # A tiny inner loop: the unrolling candidate the paper
            # notes fpppp responds to.
            bb.fli("f13", 0.0)

            def accumulate(ab: IRBuilder) -> None:
                ab.add("r11", "r8", "r3")
                ab.addi("r11", "r11", data_base)
                ab.load("f8", "r11", 0)
                ab.fadd("f13", "f13", "f8")

            counted_loop_imm(bb, "r3", 0, 6, accumulate, stem="acc",
                             bound_reg="r24")
            bb.store("f13", "r10", 64)

        counted_loop_imm(b, "r1", 0, outer, integral, stem="fpx")
        b.halt()

    program = b.build()
    fill_words(program, data_base, _fp_values(101, 520, 0.5, 1.5))
    fill_words(program, out_base, [0.0] * 200)
    return program
