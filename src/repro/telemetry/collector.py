"""Task-lifecycle trace collection for one machine run.

A :class:`TraceCollector` is attached to a machine the same way the
reliability monitor is — as a duck-typed constructor argument
(``MultiscalarMachine(..., tracer=collector)``): the simulator never
imports this package, every hook site is guarded by a single ``is not
None`` test, and a machine without a tracer pays nothing.

The collector records two streams:

* ``events`` — the **canonical** stream: every hook call appended in
  order as a plain tuple.  Hooks fire on tick cycles only, and the
  fast engine ticks exactly the cycles on which the reference engine
  makes progress, so both engines produce byte-identical canonical
  streams on the same cell.  ``tests/test_telemetry.py`` sweeps a
  grid to enforce this — the event stream is a finer-grained
  correctness probe than the aggregate ``SimResult``.
* ``engine_events`` — engine-local diagnostics (the fast engine's
  bulk cycle skips).  These legitimately differ between engines and
  are therefore kept out of the canonical stream; the exporter shows
  them on their own track.

Event tuples (first element is the kind):

========================  =====================================================
``("assign", seq, pu, cycle)``            task assigned to a PU
``("wrong_assign", pu, cycle)``           wrong-path work occupies a PU
``("task_mispredict", seq, cycle)``       successor of ``seq`` mispredicted
``("branch_mispredict", seq, idx, pu, cycle)``  gshare wrong-path fetch stall
``("arb_violation", seq, cycle, injected)``     memory dependence violation
``("squash", seq, pu, cycle, penalty, cause, first_issue)``  victim squashed
``("wrong_squash", pu, cycle, penalty)``  wrong-path occupancy reclaimed
``("commit", seq, pu, cycle)``            head task began committing
``("retire", seq, pu, cycle, first_issue, done)``  task retired
========================  =====================================================

``first_issue`` is the cycle the task's first instruction issued
(-1 if it never issued); ``cause`` is ``"memory"`` or ``"control"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class TraceCollector:
    """Duck-typed machine tracer accumulating lifecycle events."""

    def __init__(self) -> None:
        #: canonical event stream (engine-independent, order matters)
        self.events: List[Tuple] = []
        #: engine-local diagnostics (fast-engine cycle skips)
        self.engine_events: List[Tuple] = []
        self.label: Optional[str] = None
        self.engine: str = "?"
        self.n_pus: int = 0
        self.final_cycle: int = 0
        self.result = None

    # ------------------------------------------------------------- plumbing

    def attach(self, machine) -> None:
        """Bind to ``machine`` (called from the machine constructor)."""
        self.label = machine.label
        self.engine = machine.config.engine
        self.n_pus = machine.config.n_pus

    # ----------------------------------------------------------- lifecycle

    def on_assign(self, seq: int, pu: int, cycle: int) -> None:
        self.events.append(("assign", seq, pu, cycle))

    def on_wrong_assign(self, pu: int, cycle: int) -> None:
        self.events.append(("wrong_assign", pu, cycle))

    def on_task_mispredict(self, seq: int, cycle: int) -> None:
        self.events.append(("task_mispredict", seq, cycle))

    def on_branch_mispredict(
        self, seq: int, idx: int, cycle: int, pu: int
    ) -> None:
        self.events.append(("branch_mispredict", seq, idx, pu, cycle))

    def on_arb_violation(self, seq: int, cycle: int,
                         injected: bool = False) -> None:
        self.events.append(("arb_violation", seq, cycle, injected))

    def on_squash(self, seq: int, pu: int, cycle: int, penalty: int,
                  memory: bool, first_issue: int) -> None:
        cause = "memory" if memory else "control"
        self.events.append(
            ("squash", seq, pu, cycle, penalty, cause, first_issue)
        )

    def on_wrong_squash(self, pu: int, cycle: int, penalty: int) -> None:
        self.events.append(("wrong_squash", pu, cycle, penalty))

    def on_commit_start(self, seq: int, pu: int, cycle: int) -> None:
        self.events.append(("commit", seq, pu, cycle))

    def on_retire(self, seq: int, pu: int, cycle: int,
                  first_issue: int, done: int) -> None:
        self.events.append(("retire", seq, pu, cycle, first_issue, done))

    # -------------------------------------------------------- engine-local

    def on_cycle_skip(self, from_cycle: int, to_cycle: int) -> None:
        """Fast engine jumped from ``from_cycle`` + 1 to ``to_cycle``."""
        self.engine_events.append(("skip", from_cycle, to_cycle))

    # -------------------------------------------------------------- finish

    def on_finish(self, machine, result) -> None:
        self.final_cycle = result.cycles
        self.result = result

    # ------------------------------------------------------------ analysis

    def counts(self) -> Dict[str, int]:
        """Canonical events tallied by kind."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event[0]] = out.get(event[0], 0) + 1
        return out
