"""Low-overhead metrics: named counters and fixed-bucket histograms.

A :class:`MetricsRegistry` is a bag of :class:`Counter` and
:class:`Histogram` instances whose :meth:`~MetricsRegistry.summary`
is a plain JSON-ready dict.  :func:`run_metrics` builds the standard
per-run registry from a finished simulation — event counters plus the
task-size and squash-depth distributions — entirely *after* the run,
so the cycle loop never pays for it.  The task-size histogram is
memoized on the :class:`~repro.sim.taskstream.TaskStream`, so the
machine sweeps that share one compilation also share one pass over
the task list.

Histograms use fixed upper bounds: ``counts[i]`` holds observations
``v <= bounds[i]`` (first matching bound), and one overflow slot
collects everything beyond the last bound.  Fixed buckets keep the
summary mergeable and byte-stable across runs — the properties the
ledger and the report differ need.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: powers of two covering dynamic task sizes (instructions per task)
TASK_SIZE_BOUNDS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: in-flight tasks thrown away per squash event
SQUASH_DEPTH_BOUNDS: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, in-flight shards, ...).

    Unlike a :class:`Counter` it moves both ways; the campaign
    service's ``/metrics`` endpoint samples gauges on every request.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def set(self, value) -> None:
        self.value = value

    def add(self, amount=1) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with an overflow slot.

    ``bounds`` are inclusive upper edges in increasing order; an
    observation lands in the first bucket whose bound it does not
    exceed, or in the final overflow slot.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} needs increasing bounds")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Iterable) -> None:
        bounds = self.bounds
        counts = self.counts
        total = 0
        acc = 0.0
        peak = self.max
        for value in values:
            counts[bisect_left(bounds, value)] += 1
            total += 1
            acc += value
            if value > peak:
                peak = value
        self.total += total
        self.sum += acc
        self.max = peak

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def summary(self) -> Dict:
        """JSON-ready snapshot (bounds, per-bucket counts, moments)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters + histograms with a serializable summary."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created at zero on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created at zero on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram called ``name`` (created on first use).

        ``bounds`` is required on first use and must match (or be
        omitted) on later lookups — silently re-bucketing would make
        summaries incomparable.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            if bounds is None:
                raise KeyError(f"histogram {name!r} not registered yet")
            histogram = self._histograms[name] = Histogram(name, bounds)
        elif bounds is not None and tuple(bounds) != histogram.bounds:
            raise ValueError(f"histogram {name!r} re-registered with "
                             f"different bounds")
        return histogram

    def summary(self) -> Dict:
        """The whole registry as JSON-ready primitives.

        ``gauges`` is emitted only when one was registered, so run
        records and ledgers from before gauges existed byte-compare
        equal to ones serialized now.
        """
        out = {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }
        if self._gauges:
            out["gauges"] = {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            }
        return out


def merge_summaries(a: Dict, b: Dict) -> Dict:
    """Combine two registry summaries into one (JSON-ready) summary.

    Counters and histogram contents add; histogram ``max`` takes the
    larger; gauges are point-in-time, so the *later* summary (``b``)
    wins where both sampled one.  Used to aggregate service metrics
    across a drain + restart — the chaos report's counters span both
    server generations even though each process kept its own
    registry.  Histograms with mismatched bounds refuse to merge.
    """
    out: Dict = {"counters": {}, "histograms": {}}
    for summary in (a, b):
        for name, value in summary.get("counters", {}).items():
            out["counters"][name] = out["counters"].get(name, 0) + value
        for name, hist in summary.get("histograms", {}).items():
            merged = out["histograms"].get(name)
            if merged is None:
                out["histograms"][name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "max": hist["max"],
                }
                continue
            if merged["bounds"] != list(hist["bounds"]):
                raise ValueError(
                    f"histogram {name!r} has mismatched bounds"
                )
            merged["counts"] = [
                x + y for x, y in zip(merged["counts"], hist["counts"])
            ]
            merged["count"] += hist["count"]
            merged["sum"] += hist["sum"]
            merged["max"] = max(merged["max"], hist["max"])
    for hist in out["histograms"].values():
        hist["mean"] = hist["sum"] / hist["count"] if hist["count"] else 0.0
    gauges: Dict = {}
    for summary in (a, b):
        gauges.update(summary.get("gauges", {}))
    if gauges:
        out["gauges"] = gauges
    out["counters"] = dict(sorted(out["counters"].items()))
    out["histograms"] = dict(sorted(out["histograms"].items()))
    return out


def task_size_counts(stream) -> List[int]:
    """Per-bucket dynamic task sizes, memoized on the stream.

    All machine configurations replaying one compilation share the
    same task list, so the pass over it runs once per compilation,
    not once per run.
    """
    cached = getattr(stream, "_task_size_counts", None)
    if cached is None:
        histogram = Histogram("task_size", TASK_SIZE_BOUNDS)
        histogram.observe_many(task.length for task in stream.tasks)
        cached = (list(histogram.counts), histogram.sum, histogram.max)
        stream._task_size_counts = cached
    return cached


def run_metrics(result, stream) -> Dict:
    """The standard per-run metrics summary (a JSON-ready dict).

    ``result`` is a :class:`~repro.sim.machine.SimResult`; ``stream``
    the :class:`~repro.sim.taskstream.TaskStream` it replayed.  The
    summary rides inside the :class:`~repro.experiments.runner
    .RunRecord`, the artifact cache, and every harness ledger entry.
    """
    registry = MetricsRegistry()
    for name, value in (
        ("cycles", result.cycles),
        ("instructions", result.committed_instructions),
        ("dynamic_tasks", result.dynamic_tasks),
        ("task_predictions", result.task_predictions),
        ("task_mispredictions", result.task_mispredictions),
        ("control_squashes", result.control_squashes),
        ("memory_squashes", result.memory_squashes),
        ("branches", result.branch_count),
    ):
        registry.counter(name).inc(value)

    sizes = registry.histogram("task_size", TASK_SIZE_BOUNDS)
    counts, total_sum, peak = task_size_counts(stream)
    sizes.counts = list(counts)
    sizes.total = sum(counts)
    sizes.sum = total_sum
    sizes.max = peak

    depths = registry.histogram("squash_depth", SQUASH_DEPTH_BOUNDS)
    depths.observe_many(result.squash_depths)
    summary = registry.summary()
    # Per-PU utilization telemetry (scaling-study starvation columns).
    # Engine-identical because the accounting folds at the machines'
    # shared retire path; guarded so pre-machines results (or mocks
    # without the fields) keep the historical summary shape.
    pu_useful = getattr(result, "pu_useful", None)
    if pu_useful:
        summary["pu"] = {
            "useful": list(pu_useful),
            "occupied": list(result.pu_occupied),
        }
    return summary
