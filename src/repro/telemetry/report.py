"""``repro report``: per-cell diff of two runs' results.

Each input is loaded into the same shape — a mapping from a cell
label (``benchmark/level@Npu-mode``, the harness's job label) to a
flat dict of numeric metrics — from any of:

* a ``--json`` record grid (``{"command": ..., "records": [...]}``),
* a harness ledger (``ledger.jsonl``; the latest successful entry per
  cell wins, metrics come from its embedded registry summary),
* a ``repro bench`` record / baseline (``BENCH_sim.json``; grid-level
  cells labelled ``grid@engine``),
* the built-in name ``paper-table1`` — the source paper's Table 1
  rows excerpted in ``EXPERIMENTS.md`` (8-PU out-of-order cells;
  task-shape metrics only, no cycle counts).

The report table covers every cell present in both inputs.  The
simulator is deterministic, so differing simulated cycle counts on
the same cell mean the simulation's *behaviour* changed — those rows
are flagged ``DRIFT`` and the CLI exits non-zero (``--tolerance``
loosens the gate to a relative fraction).  When both inputs carry a
Figure-2 breakdown, drifted rows also show which cycle categories
moved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.harness.spec import cell_label
from repro.sim.breakdown import CycleBreakdown

#: metrics shown as extra columns when both sides have them
_SECONDARY = ("ipc", "mean_task_size", "task_misprediction_percent",
              "fuzz_divergences", "pu_util_min", "pu_util_mean",
              "pu_util_max")


def _pu_metrics(summary: Optional[Dict], metrics: Dict) -> None:
    """Fold a registry summary's per-PU telemetry into report columns.

    Heterogeneous-machine cells carry ``metrics["pu"]`` (useful /
    occupied counts per PU); the report reduces them to the
    lo/mean/hi utilization spread so starvation shifts show up as
    secondary columns without widening the table per PU.
    """
    pu = (summary or {}).get("pu")
    if not isinstance(pu, dict) or not pu.get("occupied"):
        return
    utils = [
        useful / occupied if occupied else 0.0
        for useful, occupied in zip(pu.get("useful", ()), pu["occupied"])
    ]
    if not utils:
        return
    metrics["pu_util_min"] = min(utils)
    metrics["pu_util_mean"] = sum(utils) / len(utils)
    metrics["pu_util_max"] = max(utils)

#: the paper's Table 1 rows this repo documents (EXPERIMENTS.md §Table 1),
#: usable as a comparison target: ``repro report run.json paper-table1``
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    cell_label("go", "basic_block", 8, True): {
        "mean_task_size": 6.4, "task_misprediction_percent": 14.0},
    cell_label("go", "control_flow", 8, True): {
        "mean_task_size": 18.2, "task_misprediction_percent": 15.0},
    cell_label("go", "data_dependence", 8, True): {
        "mean_task_size": 12.7, "task_misprediction_percent": 15.0},
    cell_label("m88ksim", "basic_block", 8, True): {
        "mean_task_size": 4.3, "task_misprediction_percent": 3.1},
    cell_label("m88ksim", "control_flow", 8, True): {
        "mean_task_size": 14.8, "task_misprediction_percent": 4.0},
    cell_label("m88ksim", "data_dependence", 8, True): {
        "mean_task_size": 10.3, "task_misprediction_percent": 4.9},
}


class CellSource(NamedTuple):
    """One loaded input: where it came from and its per-cell metrics."""

    kind: str  # "records" | "ledger" | "bench" | "paper"
    label: str
    cells: Dict[str, Dict]


class ReportRow(NamedTuple):
    """One compared cell."""

    cell: str
    metrics_a: Dict
    metrics_b: Dict
    drifted: bool


def _record_cell(record: Dict) -> Tuple[str, Dict]:
    label = cell_label(
        record.get("benchmark", "?"), record.get("level", "?"),
        int(record.get("n_pus", 0)), bool(record.get("out_of_order", True)),
    )
    metrics = {
        name: record[name]
        for name in (
            "cycles", "instructions", "ipc", "dynamic_tasks",
            "mean_task_size", "task_misprediction_percent",
        )
        if name in record
    }
    if isinstance(record.get("breakdown"), dict):
        metrics["breakdown"] = record["breakdown"]
    summary = record.get("metrics")
    _pu_metrics(summary if isinstance(summary, dict) else None, metrics)
    return label, metrics


def _ledger_cells(path: Path) -> Dict[str, Dict]:
    from repro.harness.ledger import read_ledger

    cells: Dict[str, Dict] = {}
    for entry in read_ledger(path):
        if "event" in entry or entry.get("outcome") != "ok":
            continue
        if not entry.get("benchmark"):
            continue
        label = cell_label(
            entry["benchmark"], entry.get("level", "?"),
            int(entry.get("n_pus", 0)), bool(entry.get("out_of_order", True)),
        )
        metrics: Dict = {}
        summary = entry.get("metrics") or {}
        counters = summary.get("counters") or {}
        for name in ("cycles", "instructions", "dynamic_tasks"):
            if name in counters:
                metrics[name] = counters[name]
        if metrics.get("cycles"):
            metrics["ipc"] = metrics.get("instructions", 0) / metrics["cycles"]
        fuzz = summary.get("fuzz")
        if isinstance(fuzz, dict):
            # Fuzz-campaign ledgers run every cell on both engines;
            # disambiguate so the two runs don't collapse into one
            # cell, and surface the per-cell oracle verdict.
            if fuzz.get("engine"):
                label = f"{label}#{fuzz['engine']}"
            # Strategy-sweep cells reuse the level of the reference
            # cell they shadow; the suffix keeps them distinct.
            if fuzz.get("strategy"):
                label = f"{label}+{fuzz['strategy']}"
            # Machine-sweep cells likewise shadow a reference level.
            if fuzz.get("machine"):
                label = f"{label}/{fuzz['machine']}"
            metrics["fuzz_divergences"] = len(fuzz.get("divergences") or ())
        _pu_metrics(summary, metrics)
        # latest successful entry for a cell wins (reruns supersede)
        cells[label] = metrics
    return cells


def load_cells(source: str) -> CellSource:
    """Load one report input (path or built-in name) into cells.

    Raises ``ValueError`` when the input exists but has no
    recognisable shape, and ``OSError`` when it cannot be read.
    """
    if source == "paper-table1":
        return CellSource("paper", source,
                          {k: dict(v) for k, v in PAPER_TABLE1.items()})
    path = Path(source)
    text = path.read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and isinstance(payload.get("records"), list):
        cells = dict(
            _record_cell(rec) for rec in payload["records"]
            if isinstance(rec, dict)
        )
        return CellSource("records", source, cells)
    if isinstance(payload, dict) and isinstance(payload.get("grids"), dict):
        cells = {}
        for key, entry in payload["grids"].items():
            metrics = {"cycles": entry.get("sim_cycles")}
            if entry.get("wall_s") is not None:
                metrics["wall_s"] = entry["wall_s"]
            cells[key] = metrics
        return CellSource("bench", source, cells)
    # Not a single JSON document with a known shape: try JSONL ledger.
    cells = _ledger_cells(path)
    if cells:
        return CellSource("ledger", source, cells)
    raise ValueError(
        f"{source}: not a record grid, bench record, or ledger with "
        f"per-cell metrics (is it from an older schema without the "
        f"metrics summary?)"
    )


def diff_cells(a: CellSource, b: CellSource,
               tolerance: float = 0.0) -> List[ReportRow]:
    """Rows for every cell present in both inputs, sorted by label.

    A row is *drifted* when both sides report simulated cycles and
    they differ by more than ``tolerance`` (a relative fraction;
    0 demands exact equality — the engines are deterministic).
    """
    rows: List[ReportRow] = []
    for cell in sorted(set(a.cells) & set(b.cells)):
        ma, mb = a.cells[cell], b.cells[cell]
        drifted = False
        ca, cb = ma.get("cycles"), mb.get("cycles")
        if ca is not None and cb is not None:
            if tolerance <= 0:
                drifted = ca != cb
            else:
                base = max(abs(ca), 1)
                drifted = abs(ca - cb) / base > tolerance
        rows.append(ReportRow(cell, ma, mb, drifted))
    return rows


def _breakdown_drift(ma: Dict, mb: Dict) -> Optional[str]:
    """Per-category cycle deltas when both sides carry a breakdown."""
    if not (isinstance(ma.get("breakdown"), dict)
            and isinstance(mb.get("breakdown"), dict)):
        return None
    delta = CycleBreakdown.from_dict(ma["breakdown"]).diff(
        CycleBreakdown.from_dict(mb["breakdown"])
    )
    if not delta:
        return None
    moved = ", ".join(f"{name} {value:+d}" for name, value in delta.items())
    return f"    breakdown: {moved}"


def format_report(a: CellSource, b: CellSource,
                  rows: List[ReportRow]) -> str:
    """Human-readable regression table for ``repro report``."""
    lines = [
        f"A: {a.label} ({a.kind}, {len(a.cells)} cell(s))",
        f"B: {b.label} ({b.kind}, {len(b.cells)} cell(s))",
    ]
    only_a = sorted(set(a.cells) - set(b.cells))
    only_b = sorted(set(b.cells) - set(a.cells))
    if only_a:
        lines.append(f"only in A: {len(only_a)} cell(s)")
    if only_b:
        lines.append(f"only in B: {len(only_b)} cell(s)")
    if not rows:
        lines.append("no cells in common — nothing to compare")
        return "\n".join(lines)
    lines.append(
        f"{'cell':<44} {'cycles A':>12} {'cycles B':>12} "
        f"{'Δcycles':>10}  status"
    )
    drifted = 0
    for row in rows:
        ca, cb = row.metrics_a.get("cycles"), row.metrics_b.get("cycles")
        if ca is None or cb is None:
            cycles_a = "-" if ca is None else f"{ca:,}"
            cycles_b = "-" if cb is None else f"{cb:,}"
            delta, status = "-", "n/a"
        else:
            cycles_a, cycles_b = f"{ca:,}", f"{cb:,}"
            delta = f"{cb - ca:+,}"
            status = "DRIFT" if row.drifted else "ok"
        if row.drifted:
            drifted += 1
        lines.append(
            f"{row.cell:<44} {cycles_a:>12} {cycles_b:>12} "
            f"{delta:>10}  {status}"
        )
        extras = []
        for name in _SECONDARY:
            va = row.metrics_a.get(name)
            vb = row.metrics_b.get(name)
            if va is not None and vb is not None and va != vb:
                extras.append(f"{name} {va:.3g}→{vb:.3g}")
        if extras and (row.drifted or status == "n/a"):
            lines.append("    " + "; ".join(extras))
        if row.drifted:
            detail = _breakdown_drift(row.metrics_a, row.metrics_b)
            if detail:
                lines.append(detail)
    lines.append(
        f"{len(rows)} cell(s) compared: {len(rows) - drifted} ok, "
        f"{drifted} drifted"
    )
    return "\n".join(lines)
