"""Observability for the simulator: tracing, metrics, run reports.

The paper's artefacts (Figure 5, Table 1, the Figure 2 breakdown) are
aggregate views; this package explains *individual runs*:

* :mod:`~repro.telemetry.collector` — :class:`TraceCollector`, a
  duck-typed machine hook (the same pattern as the reliability
  ``InvariantMonitor``: ``sim`` never imports telemetry, and an
  unattached machine pays nothing) that records every task's
  assign → first-issue → squash/retire lifecycle per PU, plus instant
  events for task/branch mispredictions and ARB violations.  Both
  engines emit identical canonical event streams on the same cell —
  the bit-identity guarantee extends to telemetry.
* :mod:`~repro.telemetry.export` — Chrome trace-event JSON (loadable
  in Perfetto / ``chrome://tracing``): PUs map to tracks, simulated
  cycles to microsecond timestamps (``repro trace``).
* :mod:`~repro.telemetry.metrics` — :class:`MetricsRegistry` of
  counters and fixed-bucket histograms; every run's summary is
  serialized into its :class:`~repro.experiments.runner.RunRecord`,
  the harness ledger, and the artifact cache.
* :mod:`~repro.telemetry.report` — ``repro report``: diff two result
  sets / ledgers / bench baselines cell by cell and flag simulated
  cycle drift.
"""

from repro.telemetry.collector import TraceCollector
from repro.telemetry.export import (
    chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    run_metrics,
)
from repro.telemetry.report import (
    ReportRow,
    diff_cells,
    format_report,
    load_cells,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ReportRow",
    "TraceCollector",
    "chrome_trace",
    "diff_cells",
    "format_report",
    "load_cells",
    "run_metrics",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
]
