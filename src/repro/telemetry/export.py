"""Chrome trace-event export (Perfetto / ``chrome://tracing``).

Maps one :class:`~repro.telemetry.collector.TraceCollector` onto the
JSON-object flavour of the trace-event format:

* one process (``pid`` 0) named after the run label;
* one thread (track) per PU, plus a ``sequencer`` track for
  machine-level instants and an ``engine`` track for fast-engine
  cycle skips;
* one simulated cycle = one microsecond of trace time (``ts``/``dur``
  are trace-event microseconds), so Perfetto's time axis reads
  directly in cycles;
* every task execution attempt is a complete (``"X"``) slice from
  assignment to retire/squash, with nested ``execute`` and ``commit``
  sub-slices where the attempt got that far; task mispredictions,
  branch mispredictions and ARB violations are instant (``"i"``)
  events.

:func:`validate_chrome_trace` is the schema gate the tests and the CI
smoke job share: it checks the structural invariants Perfetto needs
(``traceEvents`` list; ``ph``/``ts``/``pid`` on every event; ``dur``
on complete events) and returns problems instead of raising, so the
caller decides severity.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.telemetry.collector import TraceCollector

#: trace-event phases that carry no timestamp requirement
_METADATA_PHASES = {"M"}


def _metadata(pid: int, tid: Optional[int], name: str, value: str) -> Dict:
    event = {"name": name, "ph": "M", "pid": pid, "ts": 0,
             "args": {"name": value}}
    if tid is not None:
        event["tid"] = tid
    return event


def chrome_trace(collector: TraceCollector,
                 include_engine_events: bool = True) -> Dict:
    """One collector's streams as a Chrome trace-event JSON object."""
    n_pus = collector.n_pus
    seq_tid = n_pus  # sequencer track
    eng_tid = n_pus + 1  # engine diagnostics track
    label = collector.label or "run"
    events: List[Dict] = [
        _metadata(0, None, "process_name", f"{label} [{collector.engine}]")
    ]
    for pu in range(n_pus):
        events.append(_metadata(0, pu, "thread_name", f"PU {pu}"))
    events.append(_metadata(0, seq_tid, "thread_name", "sequencer"))
    if include_engine_events and collector.engine_events:
        events.append(_metadata(0, eng_tid, "thread_name", "engine"))

    #: open task attempts: seq -> (pu, assign_cycle, attempt#)
    open_tasks: Dict[int, Tuple[int, int, int]] = {}
    #: open commit slices: seq -> (pu, commit_start)
    open_commits: Dict[int, Tuple[int, int]] = {}
    #: open wrong-path occupancy: pu -> start cycle
    open_wrong: Dict[int, int] = {}
    attempts: Dict[int, int] = {}

    def complete(name: str, tid: int, start: int, end: int,
                 cat: str, args: Dict) -> None:
        events.append({
            "name": name, "ph": "X", "cat": cat, "pid": 0, "tid": tid,
            "ts": start, "dur": max(0, end - start), "args": args,
        })

    def instant(name: str, tid: int, cycle: int, args: Dict) -> None:
        events.append({
            "name": name, "ph": "i", "s": "t", "pid": 0, "tid": tid,
            "ts": cycle, "args": args,
        })

    def close_task(seq: int, cycle: int, outcome: str, first_issue: int,
                   extra: Dict) -> None:
        pu, start, attempt = open_tasks.pop(seq)
        args = {"seq": seq, "attempt": attempt, "outcome": outcome,
                "assign": start}
        args.update(extra)
        complete(f"task {seq}", pu, start, cycle, "task", args)
        if first_issue >= 0:
            complete("execute", pu, first_issue, cycle, "phase",
                     {"seq": seq, "attempt": attempt})

    for event in collector.events:
        kind = event[0]
        if kind == "assign":
            _, seq, pu, cycle = event
            attempts[seq] = attempts.get(seq, 0) + 1
            open_tasks[seq] = (pu, cycle, attempts[seq])
        elif kind == "wrong_assign":
            _, pu, cycle = event
            open_wrong[pu] = cycle
        elif kind == "task_mispredict":
            _, seq, cycle = event
            instant("task mispredict", seq_tid, cycle, {"seq": seq})
        elif kind == "branch_mispredict":
            _, seq, idx, pu, cycle = event
            instant("branch mispredict", pu, cycle,
                    {"seq": seq, "inst": idx})
        elif kind == "arb_violation":
            _, seq, cycle, injected = event
            tid = open_tasks[seq][0] if seq in open_tasks else seq_tid
            instant("ARB violation", tid, cycle,
                    {"victim": seq, "injected": injected})
        elif kind == "squash":
            _, seq, pu, cycle, penalty, cause, first_issue = event
            open_commits.pop(seq, None)
            if seq in open_tasks:
                close_task(seq, cycle, f"squash_{cause}", first_issue,
                           {"penalty": penalty, "cause": cause})
        elif kind == "wrong_squash":
            _, pu, cycle, penalty = event
            start = open_wrong.pop(pu, cycle)
            complete("wrong path", pu, start, cycle, "wrong",
                     {"penalty": penalty})
        elif kind == "commit":
            _, seq, pu, cycle = event
            open_commits[seq] = (pu, cycle)
        elif kind == "retire":
            _, seq, pu, cycle, first_issue, done = event
            commit = open_commits.pop(seq, None)
            if seq in open_tasks:
                close_task(seq, cycle, "retire", first_issue,
                           {"done": done})
            if commit is not None:
                complete("commit", pu, commit[1], cycle,
                         "phase", {"seq": seq})

    final = collector.final_cycle
    for seq, (pu, start, attempt) in sorted(open_tasks.items()):
        complete(f"task {seq}", pu, start, final, "task",
                 {"seq": seq, "attempt": attempt, "outcome": "unfinished"})
    for pu, start in sorted(open_wrong.items()):
        complete("wrong path", pu, start, final, "wrong", {})

    if include_engine_events:
        for kind, frm, to in collector.engine_events:
            complete("skip", eng_tid, frm + 1, to, "engine",
                     {"cycles": to - frm - 1})

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "engine": collector.engine,
            "n_pus": n_pus,
            "final_cycle": final,
            "canonical_events": len(collector.events),
        },
    }


def write_chrome_trace(path, collector: TraceCollector,
                       include_engine_events: bool = True) -> Dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the payload."""
    payload = chrome_trace(collector, include_engine_events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


def validate_chrome_trace(payload: Dict) -> List[str]:
    """Structural problems in a trace-event payload (empty = valid).

    Checks what a trace viewer needs: a ``traceEvents`` list whose
    every entry carries a ``ph`` phase, an integer ``ts`` >= 0, and a
    ``pid``; complete events additionally a non-negative ``dur``.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{i} is not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"event #{i} has no ph phase")
            continue
        if "pid" not in event:
            problems.append(f"event #{i} ({ph}) has no pid")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            if ph not in _METADATA_PHASES or ts is not None:
                problems.append(f"event #{i} ({ph}) has bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event #{i} (X) has bad dur {dur!r}")
    return problems


def validate_chrome_trace_file(path) -> None:
    """Load ``path`` and raise ``ValueError`` on any schema problem.

    The CI smoke job calls this directly after ``repro trace``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(
            f"{path}: {len(problems)} trace schema problem(s): "
            + "; ".join(problems[:10])
        )
