"""Differential oracle: sequential execution vs. machine commit order.

Two independent executions of the same program must agree on
architectural state:

1. the **sequential reference** — the IR interpreter running the
   program front to back (no tasks, no speculation); and
2. the **commit replay** — the same program's instructions re-executed
   with full interpreter semantics, but in the order the multiscalar
   machine *committed* them (the concatenated spans of retired
   dynamic tasks, taken from the invariant monitor's commit log).

Because the replay recomputes every register value, effective address
and branch outcome from scratch, any machine bug that commits work in
the wrong order, twice, or not at all shows up as a concrete
divergence: an address mismatch, a branch that resolves differently,
or a final register/memory word that differs.  Squashed and
wrong-path work legitimately differ between runs — they never commit,
so the oracle never sees them (see DESIGN.md §8 for the equivalence
definition).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.ir.instructions import Opcode
from repro.ir.interp import Interpreter, Trace
from repro.ir.program import Program

#: cap on reported divergences so a badly broken run stays readable
MAX_DIVERGENCES = 20


@dataclass
class ArchState:
    """Final architectural state of one execution."""

    int_regs: Dict[str, int] = field(default_factory=dict)
    fp_regs: Dict[str, float] = field(default_factory=dict)
    memory: Dict[int, float] = field(default_factory=dict)
    retired_instructions: int = 0

    @classmethod
    def from_interpreter(cls, interp: Interpreter, retired: int) -> "ArchState":
        return cls(
            int_regs={r: v for r, v in interp.int_regs.items() if r != "r0"},
            fp_regs=dict(interp.fp_regs),
            memory=dict(interp.memory),
            retired_instructions=retired,
        )


def sequential_reference(program: Program,
                         max_instructions: int = 2_000_000
                         ) -> Tuple[Trace, ArchState]:
    """Run ``program`` sequentially; return its trace and final state."""
    interp = Interpreter(program, max_instructions=max_instructions)
    trace = interp.run()
    return trace, ArchState.from_interpreter(interp, len(trace))


def replay_commits(
    program: Program,
    trace: Trace,
    commit_log: Sequence[Tuple[int, int, int]],
) -> Tuple[ArchState, List[str]]:
    """Re-execute ``trace`` in committed order with fresh semantics.

    ``commit_log`` is the monitor's retirement record: ``(seq, start,
    end)`` spans of trace indices.  Every instruction is recomputed
    from the replayed register file — the recorded trace is consulted
    only to *cross-check* effective addresses and branch outcomes.
    Returns the final state and any divergences found along the way.
    """
    interp = Interpreter(program)  # fresh registers + initial memory image
    divergences: List[str] = []

    def diverge(message: str) -> None:
        if len(divergences) < MAX_DIVERGENCES:
            divergences.append(message)

    replayed = 0
    for seq, start, end in commit_log:
        for i in range(start, end):
            dyn = trace.insts[i]
            ins = program.block(dyn.block).instructions[dyn.iidx]
            op = ins.opcode
            if op is Opcode.LOAD:
                base = interp.read_reg(ins.srcs[0])
                addr = int(base) + int(ins.imm or 0)
                if addr != dyn.addr:
                    diverge(
                        f"#{i} (task {seq}) load address {addr} != traced "
                        f"{dyn.addr}"
                    )
                interp.write_reg(ins.dst, interp.memory.get(addr, 0))
            elif op is Opcode.STORE:
                value = interp.read_reg(ins.srcs[0])
                base = interp.read_reg(ins.srcs[1])
                addr = int(base) + int(ins.imm or 0)
                if addr != dyn.addr:
                    diverge(
                        f"#{i} (task {seq}) store address {addr} != traced "
                        f"{dyn.addr}"
                    )
                interp.memory[addr] = value
            elif op in (Opcode.BEQZ, Opcode.BNEZ):
                value = interp.read_reg(ins.srcs[0])
                taken = (value == 0) if op is Opcode.BEQZ else (value != 0)
                if taken != dyn.taken:
                    diverge(
                        f"#{i} (task {seq}) branch resolves "
                        f"{'taken' if taken else 'not-taken'}, trace says "
                        f"{'taken' if dyn.taken else 'not-taken'}"
                    )
            elif op in (Opcode.JUMP, Opcode.CALL, Opcode.RET, Opcode.HALT):
                pass  # control only; order is given by the commit log
            else:
                interp._execute_alu(ins)
            replayed += 1
    return ArchState.from_interpreter(interp, replayed), divergences


def check_commit_log(
    commit_log: Sequence[Tuple[int, int, int]], trace_length: int
) -> List[str]:
    """Structural checks: in-order seqs, contiguous full coverage."""
    problems: List[str] = []
    expected_seq = 0
    cursor = 0
    for seq, start, end in commit_log:
        if seq != expected_seq:
            problems.append(
                f"commit order broken: saw task {seq}, expected "
                f"{expected_seq}"
            )
        if start != cursor:
            problems.append(
                f"task {seq} commits [{start}, {end}) but trace cursor is "
                f"at {cursor}"
            )
        cursor = end
        expected_seq = seq + 1
    if cursor != trace_length:
        problems.append(
            f"commit log covers {cursor}/{trace_length} trace instructions"
        )
    return problems[:MAX_DIVERGENCES]


def _same_value(a, b) -> bool:
    if a == b:
        return True
    # NaN never compares equal to itself, but two executions that both
    # end with NaN in a register agree architecturally (found by
    # fuzzing: FP-heavy generated programs tripped 44 spurious
    # divergences per run on identical states).
    return (isinstance(a, float) and isinstance(b, float)
            and math.isnan(a) and math.isnan(b))


def _diff_dict(kind: str, ref: Dict, got: Dict,
               out: List[str]) -> None:
    for key in sorted(set(ref) | set(got), key=str):
        a, b = ref.get(key), got.get(key)
        if not _same_value(a, b):
            if len(out) >= MAX_DIVERGENCES:
                return
            out.append(f"{kind}[{key}]: reference {a!r} != replay {b!r}")


def compare_states(reference: ArchState, replay: ArchState) -> List[str]:
    """Human-readable divergences between two final states."""
    out: List[str] = []
    if reference.retired_instructions != replay.retired_instructions:
        out.append(
            f"retired instruction count: reference "
            f"{reference.retired_instructions} != replay "
            f"{replay.retired_instructions}"
        )
    _diff_dict("int_reg", reference.int_regs, replay.int_regs, out)
    _diff_dict("fp_reg", reference.fp_regs, replay.fp_regs, out)
    _diff_dict("mem", reference.memory, replay.memory, out)
    return out[:MAX_DIVERGENCES]
