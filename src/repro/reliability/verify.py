"""End-to-end verification: the ``repro verify`` entry point.

``verify_workload`` cross-checks one experiment cell three ways:

1. the **invariant monitor** rides along the machine run, asserting
   the squash/retire/commit invariants every cycle;
2. the **differential oracle** compares the sequential reference
   execution against a full-semantics replay of the machine's commit
   log; and
3. an optional seeded :class:`~repro.reliability.faults.FaultPlan`
   injects forced mispredictions and spurious memory violations to
   prove the recovery paths themselves preserve 1 and 2.

``verify_grid`` sweeps workloads x heuristic levels and aggregates
reports; the CLI and the CI ``verify`` job are thin wrappers over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.compiler import HeuristicLevel, SelectionConfig
from repro.experiments.runner import compile_benchmark, run_benchmark
from repro.reliability.faults import FaultPlan
from repro.reliability.monitors import InvariantMonitor, InvariantViolation
from repro.reliability.oracle import (
    check_commit_log,
    compare_states,
    replay_commits,
    sequential_reference,
)
from repro.sim import SimConfig
from repro.workloads import all_benchmarks

ALL_LEVELS = tuple(HeuristicLevel)


@dataclass
class VerifyReport:
    """Outcome of verifying one (benchmark, level, machine) cell."""

    benchmark: str
    level: HeuristicLevel
    n_pus: int
    out_of_order: bool
    instructions: int = 0
    cycles: int = 0
    dynamic_tasks: int = 0
    control_squashes: int = 0
    memory_squashes: int = 0
    injected_control: int = 0
    injected_memory: int = 0
    invariant_checks: int = 0
    divergences: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def faults_injected(self) -> int:
        return self.injected_control + self.injected_memory

    def describe(self) -> str:
        mode = "ooo" if self.out_of_order else "ino"
        return f"{self.benchmark}/{self.level.value}@{self.n_pus}pu-{mode}"

    def summary(self) -> str:
        head = (
            f"{self.describe()}: "
            f"{'OK' if self.ok else 'DIVERGED'} "
            f"({self.instructions} insts, {self.dynamic_tasks} tasks, "
            f"{self.control_squashes}c/{self.memory_squashes}m squashes, "
            f"{self.faults_injected} faults injected, "
            f"{self.invariant_checks} invariant checks)"
        )
        if self.ok:
            return head
        return "\n".join([head] + [f"  ! {d}" for d in self.divergences])


def verify_workload(
    benchmark: str,
    level: HeuristicLevel,
    n_pus: int = 4,
    out_of_order: bool = True,
    scale: float = 1.0,
    selection: Optional[SelectionConfig] = None,
    sim: Optional[SimConfig] = None,
    input_set: str = "ref",
    faults: int = 0,
    seed: int = 0,
) -> VerifyReport:
    """Verify one cell; returns a report (never raises on divergence).

    Invariant violations (which abort the simulation mid-run) are
    converted into report divergences so grid sweeps keep going.
    """
    report = VerifyReport(
        benchmark=benchmark, level=level, n_pus=n_pus,
        out_of_order=out_of_order,
    )
    compiled = compile_benchmark(
        benchmark, level, scale=scale, selection=selection,
        input_set=input_set,
    )
    program = compiled.partition.program
    ref_trace, ref_state = sequential_reference(program)
    report.dynamic_tasks = len(compiled.stream.tasks)
    if len(ref_trace) != len(compiled.trace):
        report.divergences.append(
            f"sequential re-execution produced {len(ref_trace)} "
            f"instructions, compiled trace has {len(compiled.trace)} "
            f"(non-deterministic workload?)"
        )
        return report

    monitor = InvariantMonitor()
    plan = FaultPlan(seed=seed, faults=faults) if faults > 0 else None
    try:
        record = run_benchmark(
            benchmark, level, n_pus=n_pus, out_of_order=out_of_order,
            scale=scale, selection=selection, sim=sim, input_set=input_set,
            monitor=monitor, fault_plan=plan,
        )
    except InvariantViolation as exc:
        report.invariant_checks = monitor.checks
        report.divergences.append(f"invariant violation: {exc}")
        return report
    report.instructions = record.instructions
    report.cycles = record.cycles
    report.control_squashes = record.control_squashes
    report.memory_squashes = record.memory_squashes
    report.invariant_checks = monitor.checks
    if plan is not None:
        report.injected_control = plan.control_injected
        report.injected_memory = plan.memory_injected

    report.divergences.extend(
        check_commit_log(monitor.commit_log, len(compiled.trace))
    )
    replay_state, replay_divergences = replay_commits(
        program, compiled.trace, monitor.commit_log
    )
    report.divergences.extend(replay_divergences)
    report.divergences.extend(compare_states(ref_state, replay_state))
    if record.instructions != ref_state.retired_instructions:
        report.divergences.append(
            f"machine committed {record.instructions} instructions, "
            f"sequential reference retired {ref_state.retired_instructions}"
        )
    return report


def verify_grid(
    benchmarks: Sequence[str] = (),
    levels: Sequence[HeuristicLevel] = ALL_LEVELS,
    n_pus: int = 4,
    out_of_order: bool = True,
    scale: float = 1.0,
    faults: int = 0,
    seed: int = 0,
    engine: str = "fast",
) -> List[VerifyReport]:
    """Verify every (benchmark, level) cell; returns all reports.

    With ``faults``, each cell gets its own deterministic plan seeded
    by ``seed`` and the cell's position, so different cells inject
    different (but reproducible) schedules.  ``engine`` selects the
    simulation core under test ("fast" by default, so the oracle and
    the invariant monitors exercise the event-driven engine).
    """
    sim = None if engine == "fast" else SimConfig(engine=engine)
    names = list(benchmarks) or [bm.name for bm in all_benchmarks()]
    reports: List[VerifyReport] = []
    for b_index, name in enumerate(names):
        for l_index, level in enumerate(levels):
            cell_seed = seed + 1009 * b_index + 9176 * l_index
            reports.append(verify_workload(
                name, level, n_pus=n_pus, out_of_order=out_of_order,
                scale=scale, sim=sim, faults=faults, seed=cell_seed,
            ))
    return reports
