"""Always-on invariant monitors for the Multiscalar machine.

The timing model's correctness story is squash-and-recover: control
mispredictions and ARB memory-dependence violations throw away
in-flight work and re-execute it.  End-to-end IPC numbers exercise
those paths only incidentally; this monitor checks them *directly*,
every cycle, via hooks the machine calls when a monitor is attached
(``MultiscalarMachine(..., monitor=InvariantMonitor())``).

Invariants enforced:

* **I1 — in-order retirement**: dynamic tasks retire strictly in
  program order (seq 0, 1, 2, ... with no gaps).
* **I2 — single commit**: every trace index is committed exactly once,
  and the full trace is covered when the run finishes.
* **I3 — squash completeness**: a squash at seq *i* frees every
  in-flight occupancy of seq >= *i* (machine bookkeeping, the
  monitor's own shadow bookkeeping, and the sequencer's ``next_seq``
  all agree), and never touches an already-retired task.
* **I4 — penalty reconciliation**: the misspeculation penalty charged
  for each victim equals the occupancy the monitor independently
  recorded at assignment, and the per-category totals reconcile with
  the breakdown's squash counters at the end of the run.
* **I5 — no stale load commits**: a committed load whose producing
  store lives in an earlier task observed that store's completed
  value (the store completed no later than the load).
* **I6 — event-counter agreement**: misprediction / violation events
  observed through the hooks match the machine's reported counters.

Violations raise :class:`InvariantViolation` immediately, pointing at
the cycle and sequence number where the machine went wrong — far
closer to the bug than a perturbed IPC figure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class InvariantViolation(RuntimeError):
    """The machine broke one of its architectural invariants."""


class InvariantMonitor:
    """Shadow bookkeeping + assertion hooks for one machine run.

    The monitor is duck-typed from the machine's side (``sim`` never
    imports ``reliability``); any object with these methods works.
    One monitor instance observes exactly one run.
    """

    def __init__(self) -> None:
        self.machine = None
        #: committed flags per trace index (I2)
        self.committed = bytearray()
        #: commit log: (seq, start, end) in retirement order
        self.commit_log: List[Tuple[int, int, int]] = []
        self.retired_tasks = 0
        #: shadow assignment cycles: seq -> cycle (I4)
        self._assign_cycle: Dict[int, int] = {}
        #: shadow wrong-path assignment cycles: pu index -> cycle
        self._wrong_cycle: Dict[int, int] = {}
        self.control_penalty = 0
        self.memory_penalty = 0
        self.mispredict_events = 0
        self.violation_events = 0
        self.injected_violations = 0
        self.checks = 0

    # ------------------------------------------------------------- plumbing

    def attach(self, machine) -> None:
        """Bind to ``machine`` (called from the machine constructor)."""
        self.machine = machine
        self.committed = bytearray(len(machine.stream.trace))

    def _fail(self, invariant: str, message: str) -> None:
        raise InvariantViolation(f"[{invariant}] {message}")

    # ---------------------------------------------------------- assignment

    def on_assign(self, seq: int, pu_index: int, cycle: int) -> None:
        self.checks += 1
        if seq in self._assign_cycle:
            self._fail("I3", f"task {seq} assigned while already in flight")
        if seq < self.machine.retire_seq:
            self._fail("I1", f"task {seq} assigned after retirement")
        self._assign_cycle[seq] = cycle

    def on_wrong_assign(self, pu_index: int, cycle: int) -> None:
        self._wrong_cycle[pu_index] = cycle

    # -------------------------------------------------------------- squash

    def on_control_mispredict(self, seq: int) -> None:
        self.mispredict_events += 1

    def on_memory_violation(self, seq: int, injected: bool = False) -> None:
        self.violation_events += 1
        if injected:
            self.injected_violations += 1

    def on_squash_victim(
        self, seq: int, pu_index: int, cycle: int, penalty: int, memory: bool
    ) -> None:
        """One in-flight task is being squashed and its penalty charged."""
        self.checks += 1
        if seq < self.machine.retire_seq:
            self._fail("I3", f"squash reached retired task {seq}")
        assigned = self._assign_cycle.pop(seq, None)
        if assigned is None:
            self._fail("I3", f"squashed task {seq} was never assigned")
        expected = max(0, cycle - assigned)
        if penalty != expected:
            self._fail(
                "I4",
                f"task {seq} squash penalty {penalty} != occupancy "
                f"{expected} (assigned cycle {assigned}, squashed {cycle})",
            )
        if memory:
            self.memory_penalty += penalty
        else:
            self.control_penalty += penalty

    def on_wrong_squash(self, pu_index: int, cycle: int, penalty: int) -> None:
        """Wrong-path occupancy on ``pu_index`` is being reclaimed."""
        self.checks += 1
        assigned = self._wrong_cycle.pop(pu_index, None)
        if assigned is None:
            self._fail(
                "I4", f"wrong-path squash on PU {pu_index} with no occupancy"
            )
        expected = max(0, cycle - assigned)
        if penalty != expected:
            self._fail(
                "I4",
                f"wrong-path penalty {penalty} on PU {pu_index} != "
                f"occupancy {expected}",
            )
        self.control_penalty += penalty

    def post_squash(self, first_seq: int, cycle: int) -> None:
        """Called after ``_squash_from`` finished; check I3 postconditions."""
        self.checks += 1
        machine = self.machine
        alive = sorted(s for s in machine.in_flight if s >= first_seq)
        if alive:
            self._fail(
                "I3",
                f"squash from seq {first_seq} at cycle {cycle} left "
                f"{alive} in flight",
            )
        shadow = sorted(s for s in self._assign_cycle if s >= first_seq)
        if shadow:
            self._fail(
                "I3",
                f"squash from seq {first_seq} left shadow occupancy {shadow}",
            )
        if machine.next_seq > first_seq:
            self._fail(
                "I3",
                f"sequencer not rewound: next_seq {machine.next_seq} > "
                f"squash point {first_seq}",
            )
        for pu in machine.pus:
            if pu.dyn_task is not None and pu.seq >= first_seq:
                self._fail(
                    "I3",
                    f"PU {pu.index} still holds squashed task {pu.seq}",
                )

    # -------------------------------------------------------------- retire

    def on_retire(self, seq: int, cycle: int) -> None:
        """Task ``seq`` finished committing at ``cycle``."""
        self.checks += 1
        machine = self.machine
        if seq != self.retired_tasks:
            self._fail(
                "I1",
                f"task {seq} retired out of order (expected "
                f"{self.retired_tasks})",
            )
        state = machine.state
        dyn = machine.stream.tasks[seq]
        for i in range(dyn.start, dyn.end):
            if state.complete[i] < 0:
                self._fail(
                    "I2",
                    f"task {seq} committed with instruction #{i} never "
                    f"executed",
                )
            if self.committed[i]:
                self._fail("I2", f"instruction #{i} committed twice")
            self.committed[i] = 1
            if state.is_load[i]:
                p = state.mem_producer[i]
                if p >= 0 and state.task_seq[p] != seq:
                    if state.complete[p] < 0:
                        self._fail(
                            "I5",
                            f"committed load #{i} (task {seq}) reads store "
                            f"#{p} that never executed",
                        )
                    if state.complete[p] > state.complete[i]:
                        self._fail(
                            "I5",
                            f"committed load #{i} (task {seq}, complete "
                            f"{state.complete[i]}) read store #{p} before it "
                            f"completed at {state.complete[p]} (stale value)",
                        )
        self.commit_log.append((seq, dyn.start, dyn.end))
        self._assign_cycle.pop(seq, None)
        self.retired_tasks += 1

    # -------------------------------------------------------------- finish

    def on_finish(self, machine, result) -> None:
        """End-of-run reconciliation (I2, I4, I6)."""
        self.checks += 1
        n_tasks = len(machine.stream.tasks)
        n_insts = len(machine.stream.trace)
        if self.retired_tasks != n_tasks:
            self._fail(
                "I1",
                f"run finished with {self.retired_tasks}/{n_tasks} tasks "
                f"retired",
            )
        missing = sum(1 for flag in self.committed if not flag)
        if missing:
            self._fail(
                "I2", f"{missing}/{n_insts} trace instructions never committed"
            )
        if result.committed_instructions != n_insts:
            self._fail(
                "I2",
                f"reported committed_instructions "
                f"{result.committed_instructions} != trace length {n_insts}",
            )
        breakdown = result.breakdown
        if self.control_penalty != breakdown.control_misspeculation:
            self._fail(
                "I4",
                f"control squash charges {breakdown.control_misspeculation} "
                f"!= monitored occupancy {self.control_penalty}",
            )
        if self.memory_penalty != breakdown.memory_misspeculation:
            self._fail(
                "I4",
                f"memory squash charges {breakdown.memory_misspeculation} "
                f"!= monitored occupancy {self.memory_penalty}",
            )
        if self.mispredict_events != machine.task_mispredictions:
            self._fail(
                "I6",
                f"observed {self.mispredict_events} mispredict events, "
                f"machine counted {machine.task_mispredictions}",
            )
        if machine.control_squashes != self.mispredict_events:
            self._fail(
                "I6",
                f"control_squashes {machine.control_squashes} != mispredict "
                f"events {self.mispredict_events}",
            )
        if self.violation_events != machine.memory_squashes:
            self._fail(
                "I6",
                f"observed {self.violation_events} violation events, "
                f"machine counted {machine.memory_squashes}",
            )
