"""Reliability subsystem: prove the machine and harness recover.

Three pillars (see DESIGN.md §8):

* :mod:`~repro.reliability.oracle` — differential oracle comparing
  sequential execution against a replay of the machine's commit log;
* :mod:`~repro.reliability.monitors` — always-on invariant assertions
  inside the cycle loop (in-order retire, complete squashes, penalty
  reconciliation, no stale committed loads);
* :mod:`~repro.reliability.faults` — seeded injection of forced
  mispredictions and spurious memory violations, proving the
  squash-and-recover paths preserve architectural state.

Entry points: :func:`verify_workload` / :func:`verify_grid`
(``repro verify`` on the command line).
"""

from repro.reliability.faults import FaultPlan, InjectedFault
from repro.reliability.monitors import InvariantMonitor, InvariantViolation
from repro.reliability.oracle import (
    ArchState,
    check_commit_log,
    compare_states,
    replay_commits,
    sequential_reference,
)
from repro.reliability.verify import VerifyReport, verify_grid, verify_workload

__all__ = [
    "ArchState",
    "FaultPlan",
    "InjectedFault",
    "InvariantMonitor",
    "InvariantViolation",
    "VerifyReport",
    "check_commit_log",
    "compare_states",
    "replay_commits",
    "sequential_reference",
    "verify_grid",
    "verify_workload",
]
