"""Seeded fault injection for the Multiscalar machine.

A :class:`FaultPlan` perturbs a simulation with the two recovery
events the machine must survive:

* **forced control mispredictions** — a correctly predicted task
  successor is treated as mispredicted, so the sequencer fills PUs
  with wrong-path work and redirects when the victim task completes;
* **spurious memory violations** — an in-flight speculative task is
  squashed as if the ARB had flagged a dependence violation, forcing
  the squash-and-re-execute path with no actual stale load.

Both perturbations are *semantically neutral*: they may only cost
cycles.  Architectural state — the committed instruction stream and
its register/memory effects — must be bit-identical to the fault-free
run, which is exactly what the differential oracle
(:mod:`repro.reliability.oracle`) checks.  The plan is fully
deterministic given ``(seed, faults)`` and the task stream, so a
failing sweep replays exactly.

The machine consults the plan through two duck-typed entry points
(``sim`` never imports ``reliability``): :meth:`take_control_fault`
during successor prediction and :meth:`memory_fault_victim` once per
cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set


@dataclass(frozen=True)
class InjectedFault:
    """One fault the plan actually injected."""

    kind: str  #: "control" | "memory"
    seq: int  #: victim dynamic task
    cycle: int  #: injection cycle (-1 for control faults: at prediction)


class FaultPlan:
    """Deterministic schedule of injected faults for one machine run.

    ``faults`` is the total budget, split roughly evenly between
    forced mispredictions and spurious violations.  Small workloads
    may not expose enough opportunities to spend the whole budget;
    :attr:`injected` records what actually happened.
    """

    #: injection cooldown bounds (cycles) between spurious violations,
    #: so a burst of squashes cannot livelock the head of the window
    MIN_GAP = 5
    MAX_GAP = 60

    def __init__(self, seed: int = 0, faults: int = 0) -> None:
        self.seed = seed
        self.budget = max(0, faults)
        self.rng = random.Random(seed)
        self.injected: List[InjectedFault] = []
        self._control_targets: Set[int] = set()
        self._memory_budget = 0
        self._cooldown = 0
        self._bound = False

    # ------------------------------------------------------------- binding

    def bind(self, n_tasks: int) -> None:
        """Fix the schedule against a task stream of ``n_tasks`` tasks.

        Called by the machine constructor.  Control faults target
        specific dynamic tasks (sampled without replacement among the
        tasks that have a successor); the memory budget is spent
        opportunistically during the run.
        """
        if self._bound:
            return
        self._bound = True
        n_control = self.budget // 2 + (self.budget % 2 and self.rng.random() < 0.5)
        # Only tasks 0..n-2 predict a successor (the final task halts).
        candidates = max(0, n_tasks - 1)
        n_control = min(n_control, candidates)
        if n_control:
            self._control_targets = set(
                self.rng.sample(range(candidates), n_control)
            )
        self._memory_budget = self.budget - n_control
        self._cooldown = self.rng.randint(self.MIN_GAP, self.MAX_GAP)

    # ------------------------------------------------------------ machine API

    def take_control_fault(self, seq: int) -> bool:
        """True exactly once for each targeted task's prediction."""
        if seq in self._control_targets:
            self._control_targets.discard(seq)
            self.injected.append(InjectedFault("control", seq, -1))
            return True
        return False

    def memory_fault_victim(self, machine, cycle: int) -> Optional[int]:
        """Pick an in-flight speculative task to squash this cycle.

        Returns ``None`` when the budget is spent, the cooldown has
        not elapsed, or no strictly speculative task (seq beyond the
        committing head) is in flight.
        """
        if self._memory_budget <= 0:
            return None
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        candidates = sorted(
            s for s in machine.in_flight if s > machine.retire_seq
        )
        if not candidates:
            return None
        victim = self.rng.choice(candidates)
        self._memory_budget -= 1
        self._cooldown = self.rng.randint(self.MIN_GAP, self.MAX_GAP)
        self.injected.append(InjectedFault("memory", victim, cycle))
        return victim

    # ------------------------------------------------------------ reporting

    @property
    def control_injected(self) -> int:
        return sum(1 for f in self.injected if f.kind == "control")

    @property
    def memory_injected(self) -> int:
        return sum(1 for f in self.injected if f.kind == "memory")
