"""Seeded search drivers: genetic algorithm + random-search baseline.

Both drivers evaluate genomes as :class:`~repro.harness.spec.RunSpec`
batches through :func:`~repro.harness.scheduler.run_specs`, so a
generation shards across the worker pool and the content-addressed
artifact cache makes every repeated genome (within or across
campaigns) free.  Fitness is the summed simulated cycles over all
targets — lower is better — with the genome hash as a deterministic
tie-break.

Determinism contract: the only randomness is a ``random.Random(seed)``
whose draw sequence depends solely on (seed, algo, budget, pop_size)
and on fitness values, which are themselves deterministic.  Replaying
a campaign therefore regenerates the identical genome sequence, which
is what makes ledger-based resume (skip evaluations already on disk)
sound.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler import HeuristicLevel
from repro.harness.scheduler import run_specs
from repro.harness.spec import RunSpec
from repro.tune.genome import (
    GENE_SPACE,
    Genome,
    PAPER_GENOME,
    crossover,
    machine_sim,
    mutate,
    random_genome,
)
from repro.tune.ledger import TuneLedger

#: tournament size for GA parent selection
TOURNAMENT_K = 3
#: per-gene mutation probability
MUTATION_RATE = 0.25


@dataclass
class TuneResult:
    """Outcome of one tuning campaign."""

    algo: str
    seed: int
    budget: int
    pop_size: int
    generations: int
    targets: List[str]
    #: paper reference (heuristic_3 / TASK_SIZE) the campaign races
    baseline_fitness: int = 0
    baseline_cycles: Dict[str, int] = field(default_factory=dict)
    best_genome: Optional[Genome] = None
    best_hash: str = ""
    best_fitness: int = 0
    best_cycles: Dict[str, int] = field(default_factory=dict)
    #: distinct genomes evaluated (ledger memo hits included)
    evaluations: int = 0
    #: per-generation ``(index, best_hash, best_fitness)``
    history: List[Tuple[int, str, int]] = field(default_factory=list)
    #: per-target RunRecords of the best genome / the baseline, for
    #: report writing (not part of the serialized summary)
    best_records: Dict[str, object] = field(default_factory=dict)
    baseline_records: Dict[str, object] = field(default_factory=dict)

    @property
    def improved(self) -> bool:
        """Did the search beat the paper's heuristic_3 cycles?"""
        return self.best_fitness < self.baseline_fitness

    def improved_targets(self) -> List[str]:
        """Targets where the best genome beats the baseline outright."""
        return [
            t for t in self.targets
            if self.best_cycles.get(t, 0) < self.baseline_cycles.get(t, 0)
        ]


class _Evaluator:
    """Batched, memoized genome evaluation over a fixed target list."""

    def __init__(self, targets: Sequence[str], *, n_pus: int,
                 out_of_order: bool, scale: float, jobs: Optional[int],
                 cache, ledger: Optional[TuneLedger]) -> None:
        self.targets = list(targets)
        self.n_pus = n_pus
        self.out_of_order = out_of_order
        self.scale = scale
        self.jobs = jobs
        self.cache = cache
        self.ledger = ledger
        #: genome_hash -> (fitness, {target: cycles})
        self.memo: Dict[str, Tuple[int, Dict[str, int]]] = {}
        if ledger is not None:
            for ghash, entry in ledger.memo.items():
                self.memo[ghash] = (
                    int(entry["fitness"]), dict(entry["cycles"])
                )

    def specs_for(self, genome: Genome) -> List[RunSpec]:
        return [
            genome.to_spec(target, n_pus=self.n_pus,
                           out_of_order=self.out_of_order, scale=self.scale)
            for target in self.targets
        ]

    def evaluate(self, population: Sequence[Genome],
                 generation: int) -> None:
        """Ensure every genome in ``population`` is in the memo.

        Unevaluated genomes are batched into one ``run_specs`` call
        (genome-major spec order); results and ledger lines are then
        committed in population order — never pool completion order —
        so the ledger byte stream is schedule-independent.
        """
        pending: List[Genome] = []
        seen = set()
        for genome in population:
            ghash = genome.genome_hash()
            if ghash in self.memo or ghash in seen:
                continue
            seen.add(ghash)
            pending.append(genome)
        if pending:
            specs = [
                spec for genome in pending for spec in self.specs_for(genome)
            ]
            records = run_specs(specs, jobs=self.jobs, cache=self.cache)
            per_target = len(self.targets)
            for i, genome in enumerate(pending):
                chunk = records[i * per_target:(i + 1) * per_target]
                cycles = {
                    target: rec.cycles
                    for target, rec in zip(self.targets, chunk)
                }
                self.memo[genome.genome_hash()] = (
                    sum(cycles.values()), cycles
                )
        if self.ledger is not None:
            for genome in population:
                ghash = genome.genome_hash()
                fitness, cycles = self.memo[ghash]
                self.ledger.eval(
                    genome_hash=ghash, genome=genome.as_dict(),
                    generation=generation, fitness=fitness, cycles=cycles,
                )

    def fitness(self, genome: Genome) -> Tuple[int, str]:
        """Total-order fitness key: (cycles, genome hash)."""
        ghash = genome.genome_hash()
        return (self.memo[ghash][0], ghash)


def _baseline_specs(evaluator: _Evaluator, sim) -> List[RunSpec]:
    """The paper heuristic_3 reference cells on machine ``sim``."""
    return [
        RunSpec(benchmark=target, level=HeuristicLevel.TASK_SIZE,
                n_pus=evaluator.n_pus, out_of_order=evaluator.out_of_order,
                scale=evaluator.scale, sim=sim)
        for target in evaluator.targets
    ]


def _pinner(machine: Optional[str],
            predictor: Optional[str]) -> Callable[[Genome], Genome]:
    """Gene pinning for the machine axis (``None`` = search the gene).

    Applied *after* every operator (seed, random draw, crossover +
    mutation), never inside one, so the rng draw sequence — one draw
    per gene in ``GENE_SPACE`` order — is untouched and campaigns
    with different pins replay identically gene-for-gene elsewhere.
    """
    updates = {}
    for name, value in (("machine", machine), ("predictor", predictor)):
        if value is None:
            continue
        if value not in GENE_SPACE[name]:
            raise ValueError(
                f"tune {name} must be one of "
                f"{', '.join(map(str, GENE_SPACE[name]))}; got {value!r}"
            )
        updates[name] = value
    if not updates:
        return lambda genome: genome
    return lambda genome: replace(genome, **updates)


def _evaluate_baseline(evaluator: _Evaluator,
                       sim=None) -> Tuple[int, Dict[str, int]]:
    """The paper's heuristic_3 (TASK_SIZE reference strategy) cycles."""
    specs = _baseline_specs(evaluator, sim)
    records = run_specs(specs, jobs=evaluator.jobs, cache=evaluator.cache)
    cycles = {
        target: rec.cycles
        for target, rec in zip(evaluator.targets, records)
    }
    return sum(cycles.values()), cycles


def _tournament(scored: List[Tuple[Tuple[int, str], Genome]],
                rng: random.Random) -> Genome:
    """Pick the fittest of ``TOURNAMENT_K`` uniform draws."""
    picks = [scored[rng.randrange(len(scored))] for _ in range(TOURNAMENT_K)]
    return min(picks, key=lambda item: item[0])[1]


def tune(
    targets: Sequence[str],
    budget: int = 32,
    seed: int = 1,
    algo: str = "ga",
    jobs: Optional[int] = None,
    pop_size: int = 8,
    ledger: Optional[TuneLedger] = None,
    cache=None,
    n_pus: int = 4,
    out_of_order: bool = True,
    scale: float = 1.0,
    machine: Optional[str] = "paper-4x2",
    predictor: Optional[str] = "path",
) -> TuneResult:
    """Search the selection-genome space for minimal summed cycles.

    ``budget`` counts nominal genome evaluations: the GA runs
    ``ceil(budget / pop_size)`` generations of ``pop_size`` genomes
    (duplicates and memo hits make the *simulated* count lower);
    random search draws ``budget`` genomes.  ``ledger`` enables
    resume — pass a :class:`TuneLedger` over an existing file and
    completed evaluations are replayed from disk.

    ``machine`` / ``predictor`` pin those genes (defaults: the paper
    machine, so historical campaigns replay unchanged); pass ``None``
    to let the search explore the corresponding axis.  The baseline
    races on the pinned machine (or the paper machine while the gene
    floats) — tuning *for* a machine compares against the paper
    heuristic *on* that machine.
    """
    if not targets:
        raise ValueError("tune needs at least one target benchmark")
    if algo not in ("ga", "random"):
        raise ValueError(f"unknown tune algorithm {algo!r}")
    if budget < 1:
        raise ValueError("budget must be >= 1")
    if pop_size < 2:
        raise ValueError("pop_size must be >= 2")
    pin = _pinner(machine, predictor)
    baseline_sim = machine_sim(machine or "paper-4x2", predictor or "path")

    if ledger is not None:
        ledger.header(
            seed=seed, algo=algo, budget=budget, pop_size=pop_size,
            targets=list(targets), n_pus=n_pus,
            out_of_order=out_of_order, scale=scale,
            machine=machine, predictor=predictor,
        )

    evaluator = _Evaluator(
        targets, n_pus=n_pus, out_of_order=out_of_order, scale=scale,
        jobs=jobs, cache=cache, ledger=ledger,
    )
    baseline_fitness, baseline_cycles = _evaluate_baseline(
        evaluator, baseline_sim
    )
    if ledger is not None:
        ledger.baseline(
            genome=PAPER_GENOME.as_dict(), fitness=baseline_fitness,
            cycles=baseline_cycles,
        )

    rng = random.Random(seed)
    generations = max(1, math.ceil(budget / pop_size))
    result = TuneResult(
        algo=algo, seed=seed, budget=budget, pop_size=pop_size,
        generations=generations, targets=list(targets),
        baseline_fitness=baseline_fitness, baseline_cycles=baseline_cycles,
    )

    #: every genome considered, in first-seen order (dedup by hash)
    seen: Dict[str, Genome] = {}

    def note(population: Sequence[Genome]) -> None:
        for genome in population:
            seen.setdefault(genome.genome_hash(), genome)

    if algo == "random":
        draws = [pin(PAPER_GENOME)] + [
            pin(random_genome(rng)) for _ in range(budget - 1)
        ]
        for gen in range(generations):
            chunk = draws[gen * pop_size:(gen + 1) * pop_size]
            if not chunk:
                break
            evaluator.evaluate(chunk, gen)
            note(chunk)
            gen_best = min(chunk, key=evaluator.fitness)
            key = evaluator.fitness(gen_best)
            result.history.append((gen, key[1], key[0]))
            if ledger is not None:
                ledger.generation(
                    index=gen, best_hash=key[1], best_fitness=key[0]
                )
    else:
        population: List[Genome] = [pin(PAPER_GENOME)] + [
            pin(random_genome(rng)) for _ in range(pop_size - 1)
        ]
        for gen in range(generations):
            evaluator.evaluate(population, gen)
            note(population)
            scored = sorted(
                ((evaluator.fitness(g), g) for g in population),
                key=lambda item: item[0],
            )
            best_key, best_genome = scored[0]
            result.history.append((gen, best_key[1], best_key[0]))
            if ledger is not None:
                ledger.generation(
                    index=gen, best_hash=best_key[1],
                    best_fitness=best_key[0],
                )
            if gen == generations - 1:
                break
            # elitism: the generation's best survives unchanged
            offspring: List[Genome] = [best_genome]
            while len(offspring) < pop_size:
                parent_a = _tournament(scored, rng)
                parent_b = _tournament(scored, rng)
                child = crossover(parent_a, parent_b, rng)
                child = mutate(child, rng, rate=MUTATION_RATE)
                offspring.append(pin(child))
            population = offspring

    best_hash, best_genome = min(
        seen.items(), key=lambda item: (evaluator.memo[item[0]][0], item[0])
    )
    result.best_genome = best_genome
    result.best_hash = best_hash
    result.best_fitness = evaluator.memo[best_hash][0]
    result.best_cycles = dict(evaluator.memo[best_hash][1])
    result.evaluations = len(seen)
    if ledger is not None:
        ledger.best(
            genome_hash=best_hash, genome=best_genome.as_dict(),
            fitness=result.best_fitness, baseline_fitness=baseline_fitness,
        )

    # Full RunRecords for report writing (pure cache hits by now).
    best_specs = evaluator.specs_for(best_genome)
    base_specs = _baseline_specs(evaluator, baseline_sim)
    best_recs = run_specs(best_specs, jobs=1, cache=cache)
    base_recs = run_specs(base_specs, jobs=1, cache=cache)
    result.best_records = dict(zip(targets, best_recs))
    result.baseline_records = dict(zip(targets, base_recs))
    return result
