"""Genome encoding of the task-selection search space.

A genome is one point in the cross product of discrete gene spaces —
every gene value is drawn from a finite tuple, so crossover and
mutation are index operations, the space is enumerable, and a genome
hashes to a stable identity.  Decoding a genome yields the
:class:`~repro.compiler.heuristics.SelectionConfig` a
:class:`~repro.harness.spec.RunSpec` carries through the harness, so
evaluation reuses the entire caching/sharding machinery unchanged.

The paper's TASK_SIZE configuration is itself a genome
(:data:`PAPER_GENOME`, encoded under the ``tunable`` strategy) and is
always seeded into the initial population — the search can therefore
never report a best genome worse than the paper baseline.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Tuple

from repro.compiler import HeuristicLevel, SelectionConfig
from repro.harness.spec import RunSpec
from repro.sim import SimConfig

#: gene name -> ordered value space (order matters: index-stable draws)
GENE_SPACE: Dict[str, Tuple] = {
    # which selector runs; both honour the full config (strategy docs)
    "strategy": ("tunable", "cost_model"),
    # heuristic machinery enabled (basic_block is the degenerate
    # baseline and never competitive — excluded from the space)
    "level": ("control_flow", "data_dependence", "task_size"),
    # N — successors the prediction hardware tracks
    "max_targets": (1, 2, 3, 4, 6, 8),
    # unroll threshold (static instructions per loop body)
    "loop_thresh": (10, 20, 30, 50, 80),
    # call absorption threshold (mean dynamic callee instructions)
    "call_thresh": (10, 20, 30, 50, 80),
    # unroll factor cap
    "max_unroll": (2, 4, 8, 16),
    # CFG exploration order during growth
    "traversal": ("bfs", "dfs"),
    # induction increment hoisting on/off
    "hoist_induction": (True, False),
    # intra-block communication scheduling on/off
    "schedule_communication": (True, False),
    # machine preset the genome is scored on (registry names; the
    # default aliases the legacy 4x2 configuration bit-for-bit, so
    # PAPER_GENOME's cached evaluations stay valid)
    "machine": ("paper-4x2", "paper-8x1", "big-little-8"),
    # inter-task predictor kind wired into the machine
    "predictor": ("path", "gshare", "hybrid"),
}


@dataclass(frozen=True)
class Genome:
    """One candidate task-selection configuration (all genes)."""

    strategy: str = "tunable"
    level: str = "task_size"
    max_targets: int = 4
    loop_thresh: int = 30
    call_thresh: int = 30
    max_unroll: int = 8
    traversal: str = "bfs"
    hoist_induction: bool = True
    schedule_communication: bool = True
    machine: str = "paper-4x2"
    predictor: str = "path"

    def __post_init__(self) -> None:
        for name, space in GENE_SPACE.items():
            if getattr(self, name) not in space:
                raise ValueError(
                    f"gene {name}={getattr(self, name)!r} outside its "
                    f"space {space}"
                )

    # --------------------------------------------------------- identity

    def as_dict(self) -> Dict:
        return asdict(self)

    def genome_hash(self) -> str:
        """Stable short content hash (ledger / memo / report key)."""
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_dict(cls, payload: Dict) -> "Genome":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})

    # --------------------------------------------------------- decoding

    def to_selection(self) -> SelectionConfig:
        """The selection config this genome decodes to.

        A ``cost_model`` genome scored on a non-paper machine carries
        the machine name as ``machine_hint`` so the growth policy
        reweights for that machine's ring reach and issue width
        (default-machine genomes keep ``""`` and alias the historical
        compile cache).
        """
        machine_hint = ""
        if self.strategy == "cost_model" and self.machine != "paper-4x2":
            machine_hint = self.machine
        return SelectionConfig(
            level=HeuristicLevel(self.level),
            max_targets=self.max_targets,
            call_thresh=self.call_thresh,
            loop_thresh=self.loop_thresh,
            max_unroll=self.max_unroll,
            hoist_induction=self.hoist_induction,
            schedule_communication=self.schedule_communication,
            strategy=self.strategy,
            traversal=self.traversal,
            machine_hint=machine_hint,
        )

    def to_spec(self, benchmark: str, n_pus: int = 4,
                out_of_order: bool = True, scale: float = 1.0,
                sim: Optional[SimConfig] = None) -> RunSpec:
        """The harness job evaluating this genome on ``benchmark``.

        An explicit ``sim`` wins; otherwise the genome's machine /
        predictor genes decode to one (``None`` for the default pair,
        so paper-machine genomes keep aliasing the legacy cached
        evaluations).
        """
        selection = self.to_selection()
        if sim is None:
            sim = machine_sim(self.machine, self.predictor)
        return RunSpec(
            benchmark=benchmark,
            level=selection.level,
            n_pus=n_pus,
            out_of_order=out_of_order,
            scale=scale,
            selection=selection,
            sim=sim,
        )


def machine_sim(machine: str,
                predictor: str = "path") -> Optional[SimConfig]:
    """The SimConfig a (machine, predictor) gene pair decodes to.

    ``("paper-4x2", "path")`` — the legacy machine — decodes to
    ``None``: the historical spec shape, whose cached records and
    ledger lines stay byte-identical to pre-machine campaigns.
    """
    if machine == "paper-4x2" and predictor == "path":
        return None
    from repro.machines import get_machine, with_predictor

    return SimConfig(machine=with_predictor(get_machine(machine), predictor))


#: the paper's TASK_SIZE configuration, encoded as a genome
PAPER_GENOME = Genome()


# ------------------------------------------------------------ operators

def random_genome(rng: random.Random) -> Genome:
    """A uniform draw from the full gene space (one rng draw per gene,
    in ``GENE_SPACE`` order — the draw sequence is part of the
    determinism contract)."""
    values = {name: rng.choice(space) for name, space in GENE_SPACE.items()}
    return Genome(**values)


def mutate(genome: Genome, rng: random.Random,
           rate: float = 0.25) -> Genome:
    """Resample each gene independently with probability ``rate``.

    A mutated gene is redrawn from the *other* values of its space, so
    a mutation draw always changes the gene (no silent no-ops — keeps
    the effective rate honest).
    """
    values = genome.as_dict()
    for name, space in GENE_SPACE.items():
        if rng.random() < rate:
            others = tuple(v for v in space if v != values[name])
            values[name] = rng.choice(others)
    return Genome(**values)


def crossover(a: Genome, b: Genome, rng: random.Random) -> Genome:
    """Uniform crossover: each gene from parent ``a`` or ``b`` with
    equal probability (one draw per gene, ``GENE_SPACE`` order)."""
    da, db = a.as_dict(), b.as_dict()
    values = {
        name: (da[name] if rng.random() < 0.5 else db[name])
        for name in GENE_SPACE
    }
    return Genome(**values)
