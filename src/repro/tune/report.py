"""Tune campaign reports: ``--json`` summary + diffable record grids.

:func:`write_tune_reports` emits two record-grid JSON files —
``baseline.json`` (the paper's heuristic_3 cells) and ``tuned.json``
(the best genome's cells) — in the exact shape ``repro report``
loads, so the tuning win is inspected with the same tool that gates
every other regression::

    repro report out/baseline.json out/tuned.json

``repro report`` keys cells on ``benchmark/level@Npu-mode`` and the
best genome's level gene may differ from ``task_size``; both files
therefore write the literal level string ``"tuned"`` into their
records so each benchmark's pair of cells aligns.  The true levels,
the genome, and the fitness totals live in the top-level ``tune``
object (ignored by the cell loader, preserved for humans and tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple

from repro.harness.serialize import record_to_dict
from repro.tune.ga import TuneResult


def tune_summary(result: TuneResult) -> Dict:
    """JSON-ready campaign summary (the CLI's ``--json`` payload)."""
    assert result.best_genome is not None
    return {
        "command": "tune",
        "algo": result.algo,
        "seed": result.seed,
        "budget": result.budget,
        "pop_size": result.pop_size,
        "generations": result.generations,
        "targets": list(result.targets),
        "evaluations": result.evaluations,
        "baseline_fitness": result.baseline_fitness,
        "baseline_cycles": dict(result.baseline_cycles),
        "best_hash": result.best_hash,
        "best_fitness": result.best_fitness,
        "best_cycles": dict(result.best_cycles),
        "best_genome": result.best_genome.as_dict(),
        "improved": result.improved,
        "improved_targets": result.improved_targets(),
        "history": [
            {"generation": gen, "best_hash": ghash, "best_fitness": fit}
            for gen, ghash, fit in result.history
        ],
    }


def _grid(result: TuneResult, records: Dict[str, object],
          label: str) -> Dict:
    recs = []
    true_levels = {}
    for target in result.targets:
        rec = record_to_dict(records[target])
        true_levels[target] = rec["level"]
        rec["level"] = "tuned"
        recs.append(rec)
    return {
        "command": f"tune-{label}",
        "scale": 1.0,
        "tune": {
            "label": label,
            "algo": result.algo,
            "seed": result.seed,
            "best_hash": result.best_hash,
            "genome": (result.best_genome.as_dict()
                       if label == "tuned" else None),
            "true_levels": true_levels,
        },
        "records": recs,
    }


def write_tune_reports(result: TuneResult, out_dir) -> Tuple[Path, Path]:
    """Write ``baseline.json`` + ``tuned.json`` under ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    baseline = out / "baseline.json"
    tuned = out / "tuned.json"
    baseline.write_text(
        json.dumps(_grid(result, result.baseline_records, "baseline"),
                   indent=2) + "\n",
        encoding="utf-8",
    )
    tuned.write_text(
        json.dumps(_grid(result, result.best_records, "tuned"),
                   indent=2) + "\n",
        encoding="utf-8",
    )
    return baseline, tuned
