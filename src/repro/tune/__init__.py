"""``repro.tune`` — search-based autotuning of task selection.

The paper fixes its thresholds (N=4, LOOP_THRESH=30, CALL_THRESH=30)
by inspection; this subsystem searches the space instead.  A
:class:`~repro.tune.genome.Genome` names one point in the space of
:class:`~repro.compiler.heuristics.SelectionConfig` parameters (plus
the selection strategy itself); :func:`~repro.tune.ga.tune` runs a
seeded genetic algorithm (or random-search baseline) whose fitness is
simulated cycles through the existing harness — the content-addressed
artifact cache makes repeated genomes free and pool sharding
parallelises a generation.  Every campaign streams to a
schema-versioned :class:`~repro.tune.ledger.TuneLedger` so
``repro tune --resume`` replays completed evaluations instead of
re-simulating them.

Determinism rules (same as the rest of the repo): no wall-clock, no
module-level ``random`` — every draw comes from a ``random.Random``
seeded from the campaign seed, so the same seed/budget yields a
byte-identical ledger and best genome.
"""

from repro.tune.ga import TuneResult, tune
from repro.tune.genome import (
    GENE_SPACE,
    Genome,
    PAPER_GENOME,
    crossover,
    machine_sim,
    mutate,
    random_genome,
)
from repro.tune.ledger import TUNE_SCHEMA_VERSION, TuneLedger
from repro.tune.report import tune_summary, write_tune_reports

__all__ = [
    "GENE_SPACE",
    "Genome",
    "PAPER_GENOME",
    "TUNE_SCHEMA_VERSION",
    "TuneLedger",
    "TuneResult",
    "crossover",
    "machine_sim",
    "mutate",
    "random_genome",
    "tune",
    "tune_summary",
    "write_tune_reports",
]
