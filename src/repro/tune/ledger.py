"""The tune ledger: a resumable, byte-deterministic campaign journal.

One JSONL file per campaign, schema-versioned like the run and
campaign ledgers.  Line kinds:

* ``header`` — campaign parameters (seed, algo, budget, pop size,
  targets, gene-space hash); written once, validated on resume — a
  ledger is bound to exactly one campaign.
* ``baseline`` — the paper reference (``heuristic_3``) cycles the
  campaign is measured against.
* ``eval`` — one genome's fitness (summed cycles) and per-target
  cycles; at most one line per genome hash, ever.
* ``generation`` — a completed generation's best genome.
* ``best`` — the campaign verdict (terminal line).

Nothing here carries a timestamp or wall-clock duration, and eval
lines are appended in deterministic population order *after* a batch
completes — so the ledger of an interrupted-and-resumed campaign is
byte-identical to one that ran straight through: the resume replays
the (deterministic) search from the top, skips every evaluation the
ledger already holds, and appends only the missing suffix.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.harness.ledger import append_jsonl_line, read_ledger
from repro.tune.genome import GENE_SPACE

TUNE_SCHEMA_VERSION = 1


def gene_space_hash() -> str:
    """Identity of the searchable space; a changed space invalidates
    resume (old evals may cover values outside the new space)."""
    payload = json.dumps(
        {k: list(v) for k, v in GENE_SPACE.items()}, sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class TuneLedger:
    """Append-only campaign journal with idempotent writes.

    Every write method is a no-op when an equivalent line already
    exists in the file — replaying a deterministic search over a
    partial ledger therefore reproduces the exact straight-through
    byte stream.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._header: Optional[Dict] = None
        self._eval_hashes: Set[str] = set()
        self._generations: Set[int] = set()
        self._has_baseline = False
        self._has_best = False
        #: genome_hash -> {"fitness": int, "cycles": {target: int}, ...}
        self.memo: Dict[str, Dict] = {}
        for entry in read_ledger(self.path):
            kind = entry.get("kind")
            if kind == "header":
                self._header = entry
            elif kind == "baseline":
                self._has_baseline = True
            elif kind == "eval":
                ghash = entry.get("genome_hash", "")
                self._eval_hashes.add(ghash)
                self.memo[ghash] = entry
            elif kind == "generation":
                self._generations.add(int(entry.get("index", -1)))
            elif kind == "best":
                self._has_best = True

    # ----------------------------------------------------------- writes

    def _append(self, payload: Dict) -> None:
        append_jsonl_line(self.path, payload)

    def header(self, *, seed: int, algo: str, budget: int, pop_size: int,
               targets: List[str], n_pus: int, out_of_order: bool,
               scale: float, machine: Optional[str] = "paper-4x2",
               predictor: Optional[str] = "path") -> None:
        payload = {
            "kind": "header",
            "schema_version": TUNE_SCHEMA_VERSION,
            "seed": seed,
            "algo": algo,
            "budget": budget,
            "pop_size": pop_size,
            "targets": list(targets),
            "n_pus": n_pus,
            "out_of_order": out_of_order,
            "scale": scale,
            # machine-axis pins (None = the campaign searched the gene)
            "machine": machine,
            "predictor": predictor,
            "gene_space": gene_space_hash(),
        }
        if self._header is not None:
            mismatched = [
                key for key in payload
                if key != "kind" and self._header.get(key) != payload[key]
            ]
            if mismatched:
                raise ValueError(
                    f"{self.path}: existing tune ledger was written by a "
                    f"different campaign (mismatched: "
                    f"{', '.join(sorted(mismatched))}); use a fresh "
                    f"ledger path or matching parameters"
                )
            return
        self._append(payload)
        self._header = payload

    def baseline(self, *, genome: Dict, fitness: int,
                 cycles: Dict[str, int]) -> None:
        if self._has_baseline:
            return
        self._append({
            "kind": "baseline",
            "genome": genome,
            "fitness": fitness,
            "cycles": cycles,
        })
        self._has_baseline = True

    def eval(self, *, genome_hash: str, genome: Dict, generation: int,
             fitness: int, cycles: Dict[str, int]) -> None:
        if genome_hash in self._eval_hashes:
            return
        payload = {
            "kind": "eval",
            "genome_hash": genome_hash,
            "generation": generation,
            "fitness": fitness,
            "cycles": cycles,
            "genome": genome,
        }
        self._append(payload)
        self._eval_hashes.add(genome_hash)
        self.memo[genome_hash] = payload

    def generation(self, *, index: int, best_hash: str,
                   best_fitness: int) -> None:
        if index in self._generations:
            return
        self._append({
            "kind": "generation",
            "index": index,
            "best_hash": best_hash,
            "best_fitness": best_fitness,
        })
        self._generations.add(index)

    def best(self, *, genome_hash: str, genome: Dict, fitness: int,
             baseline_fitness: int) -> None:
        if self._has_best:
            return
        self._append({
            "kind": "best",
            "genome_hash": genome_hash,
            "genome": genome,
            "fitness": fitness,
            "baseline_fitness": baseline_fitness,
        })
        self._has_best = True
