"""The window span metric (Section 4.3.4).

For a superscalar processor the dynamic window size measures
exploitable parallelism; a Multiscalar processor holds several
disjoint task windows at once, so the paper defines the *window span*
— the total dynamic instructions in all tasks in flight:

    window_span = sum_{i=0}^{N-1} TaskSize * Pred^i

where ``TaskSize`` is the average dynamic task size, ``Pred`` the
average inter-task prediction accuracy, and ``N`` the number of PUs:
each additional PU contributes a window discounted by the probability
that the speculation chain reaching it is entirely correct.
"""

from __future__ import annotations


def window_span(task_size: float, prediction_accuracy: float, n_pus: int) -> float:
    """Evaluate the paper's window span equation.

    ``prediction_accuracy`` is a fraction in [0, 1]; ``task_size`` is
    the mean dynamic instructions per task.
    """
    if n_pus < 1:
        raise ValueError("n_pus must be >= 1")
    if not 0.0 <= prediction_accuracy <= 1.0:
        raise ValueError("prediction accuracy must be within [0, 1]")
    if task_size < 0:
        raise ValueError("task size must be non-negative")
    total = 0.0
    weight = 1.0
    for _ in range(n_pus):
        total += task_size * weight
        weight *= prediction_accuracy
    return total
