"""Small statistics helpers used by the experiment reports."""

from __future__ import annotations

import math
from typing import Iterable, List


def improvement_percent(new: float, base: float) -> float:
    """Percentage improvement of ``new`` over ``base`` (Figure 5 axis)."""
    if base <= 0:
        raise ValueError("baseline must be positive")
    return (new / base - 1.0) * 100.0


def normalized_branch_misprediction(
    task_misprediction: float, branches_per_task: float
) -> float:
    """Per-branch misprediction equivalent of a task misprediction rate.

    The paper's "br pred" column (Section 4.3.3): a task containing B
    dynamic branches that is predicted correctly with probability
    ``1 - m_task`` corresponds to an effective per-branch misprediction
    ``m_br`` with ``(1 - m_br)^B = 1 - m_task``.

    Note: for ``branches_per_task >= 1`` the normalised rate is at most
    the task rate; below one branch per task the equivalent per-branch
    rate is legitimately *higher* (one mispredict spans several tasks'
    worth of branches).
    """
    if not 0.0 <= task_misprediction <= 1.0:
        raise ValueError("misprediction rate must be within [0, 1]")
    if branches_per_task <= 0:
        return task_misprediction
    return 1.0 - (1.0 - task_misprediction) ** (1.0 / branches_per_task)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (used to summarise per-suite IPC ratios)."""
    items: List[float] = list(values)
    if not items:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))
