"""Measurement helpers for the paper's reported quantities."""

from repro.metrics.stats import (
    geometric_mean,
    improvement_percent,
    normalized_branch_misprediction,
)
from repro.metrics.window import window_span

__all__ = [
    "geometric_mean",
    "improvement_percent",
    "normalized_branch_misprediction",
    "window_span",
]
