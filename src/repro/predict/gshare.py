"""gshare intra-task branch predictor.

Configuration from Section 4.2: 16-bit global history XOR-folded with
the branch PC, indexing a 64K-entry table of 2-bit counters.  Used by
the PU model to charge intra-task fetch bubbles on conditional branch
mispredictions.
"""

from __future__ import annotations

from typing import List


class GsharePredictor:
    """gshare: PC ⊕ global-history indexed table of 2-bit counters."""

    def __init__(self, history_bits: int = 16, table_bits: int = 16) -> None:
        self.history_bits = history_bits
        self.table_bits = table_bits
        self.history_mask = (1 << history_bits) - 1
        self.index_mask = (1 << table_bits) - 1
        self.history = 0
        # Flat int array of 2-bit counters (initialised weakly not-taken
        # at 1 to avoid a long cold-start of strong wrong predictions).
        self.table: List[int] = [1] * (1 << table_bits)
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc ^ (self.history & self.history_mask)) & self.index_mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train, shift history; return True on mispredict."""
        idx = self._index(pc)
        counter = self.table[idx]
        predicted = counter >= 2
        if taken:
            if counter < 3:
                self.table[idx] = counter + 1
        elif counter > 0:
            self.table[idx] = counter - 1
        self.history = ((self.history << 1) | int(taken)) & self.history_mask
        self.predictions += 1
        mispredicted = predicted != taken
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions so far (1.0 when unused)."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        """Zero the accounting, keep the learned state."""
        self.predictions = 0
        self.mispredictions = 0
