"""Control flow prediction hardware models (Section 4.2).

* :class:`~repro.predict.gshare.GsharePredictor` — intra-task branch
  prediction: gshare with 16-bit global history and a 64K-entry table
  of 2-bit counters.
* :class:`~repro.predict.path_predictor.PathPredictor` — inter-task
  prediction: a path-based scheme (Jacobson et al. [9]) with 16-bit
  path history and a 64K-entry table of {2-bit counter, 2-bit target
  number} pairs, plus a return address stack for tasks that end in
  returns.
"""

from repro.predict.counters import SaturatingCounter
from repro.predict.gshare import GsharePredictor
from repro.predict.path_predictor import PathPredictor, ReturnAddressStack
from repro.predict.taskpred import (
    TASK_PREDICTOR_KINDS,
    GshareTaskPredictor,
    HybridTaskPredictor,
    make_task_predictor,
)

__all__ = [
    "GsharePredictor",
    "GshareTaskPredictor",
    "HybridTaskPredictor",
    "PathPredictor",
    "ReturnAddressStack",
    "SaturatingCounter",
    "TASK_PREDICTOR_KINDS",
    "make_task_predictor",
]
