"""Saturating counters — the building block of both predictors."""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit up/down saturating counter.

    The counter predicts "strong/weak not-taken" in its lower half and
    "weak/strong taken" in its upper half; 2-bit counters (the paper's
    tables) saturate at 0 and 3 and flip prediction at the midpoint.
    """

    __slots__ = ("value", "maximum", "threshold")

    def __init__(self, bits: int = 2, initial: int = 0) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.maximum = (1 << bits) - 1
        self.threshold = (self.maximum + 1) // 2
        if not 0 <= initial <= self.maximum:
            raise ValueError(f"initial value {initial} out of range")
        self.value = initial

    @property
    def taken(self) -> bool:
        """Current prediction."""
        return self.value >= self.threshold

    @property
    def is_saturated(self) -> bool:
        """True at either extreme."""
        return self.value in (0, self.maximum)

    def update(self, taken: bool) -> None:
        """Train toward the actual outcome."""
        if taken:
            if self.value < self.maximum:
                self.value += 1
        elif self.value > 0:
            self.value -= 1

    def __repr__(self) -> str:
        return f"SaturatingCounter(value={self.value}, max={self.maximum})"
