"""Path-based inter-task target predictor.

Section 4.2: "The inter-task prediction uses a path-based scheme [9]
with 16-bit history, 64K-entry table of 2-bit counters and 2-bit
target numbers."

A table entry holds a predicted *target number* (index into the task's
ordered successor list, at most ``2**target_bits`` targets) guarded by
a 2-bit confidence counter: a hit strengthens, a miss weakens, a miss
at confidence zero replaces the stored target.  The path history is a
hash of recent task start PCs; tasks whose dynamic successor is a
return are resolved through a return address stack, as for superscalar
return prediction.

Tasks with more successors than the target-number width can never have
their overflow targets predicted — the paper's motivation for keeping
tasks at N = 4 successors.
"""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """A bounded return address stack for RETURN-target resolution."""

    def __init__(self, depth: int = 64) -> None:
        self.depth = depth
        self._stack: List[object] = []
        self.overflows = 0

    def push(self, item: object) -> None:
        """Push a return continuation; oldest entry drops on overflow."""
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(item)

    def pop(self) -> Optional[object]:
        """Pop the predicted return continuation (None if empty)."""
        if self._stack:
            return self._stack.pop()
        return None

    def peek(self) -> Optional[object]:
        """Top of stack without popping."""
        if self._stack:
            return self._stack[-1]
        return None

    def __len__(self) -> int:
        return len(self._stack)


class PathPredictor:
    """Path-history-indexed table of (2-bit counter, target number)."""

    def __init__(
        self,
        history_bits: int = 16,
        table_bits: int = 16,
        target_bits: int = 2,
    ) -> None:
        self.history_bits = history_bits
        self.table_bits = table_bits
        self.target_bits = target_bits
        self.max_targets = 1 << target_bits
        self.history_mask = (1 << history_bits) - 1
        self.index_mask = (1 << table_bits) - 1
        self.history = 0
        size = 1 << table_bits
        self.counters: List[int] = [0] * size
        self.targets: List[int] = [0] * size
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.index_mask

    def predict(self, pc: int) -> int:
        """Predicted target number for the task starting at ``pc``."""
        return self.targets[self._index(pc)]

    def update(self, pc: int, actual_index: int) -> bool:
        """Train on the resolved target number; return True on mispredict.

        ``actual_index`` beyond the representable range trains the
        entry toward replacement but can never be predicted.
        """
        idx = self._index(pc)
        predicted = self.targets[idx]
        representable = actual_index < self.max_targets
        correct = representable and predicted == actual_index
        if correct:
            if self.counters[idx] < 3:
                self.counters[idx] += 1
        elif self.counters[idx] > 0:
            self.counters[idx] -= 1
        elif representable:
            self.targets[idx] = actual_index
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        return not correct

    def push_history(self, pc: int) -> None:
        """Fold the next task's start PC into the path history."""
        self.history = ((self.history << 3) ^ pc) & self.history_mask

    @property
    def accuracy(self) -> float:
        """Fraction of correct target predictions so far."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        """Zero the accounting, keep the learned state."""
        self.predictions = 0
        self.mispredictions = 0
