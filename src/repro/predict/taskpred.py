"""Inter-task predictor variants behind one factory.

The machine's sequencer speaks one protocol — ``predict(pc)``,
``update(pc, actual_index) -> mispredicted``, ``push_history(pc)``,
``accuracy`` — implemented by three predictors:

* ``path`` — the paper's path-based scheme
  (:class:`~repro.predict.path_predictor.PathPredictor`); the default,
  and the byte-identity anchor: ``make_task_predictor("path")`` returns
  exactly the predictor every pre-machines run used.
* ``gshare`` — :class:`GshareTaskPredictor`: the same counter/target
  table indexed by ``pc ^ outcome-history``, where the history folds
  the *resolved target numbers* (the task-level analogue of gshare's
  taken/not-taken history) instead of the task-start PC path.
* ``hybrid`` — :class:`HybridTaskPredictor`: both components
  predicting in parallel with a per-PC 2-bit tournament chooser, as in
  McFarling-style combining predictors.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.predict.path_predictor import PathPredictor

#: valid kinds for :func:`make_task_predictor`
TASK_PREDICTOR_KINDS: Tuple[str, ...] = ("path", "gshare", "hybrid")


class _TaskPredictorStats:
    """Shared accounting for the task-level predictor variants."""

    def __init__(self) -> None:
        self.predictions = 0
        self.mispredictions = 0

    @property
    def accuracy(self) -> float:
        """Fraction of correct target predictions so far."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        """Zero the accounting, keep the learned state."""
        self.predictions = 0
        self.mispredictions = 0


class GshareTaskPredictor(_TaskPredictorStats):
    """Outcome-history-indexed table of (2-bit counter, target number).

    The global history shifts in each resolved target number
    (``target_bits`` per task), so the index correlates with *which
    way* recent tasks exited rather than *where* they started — the
    task-level counterpart of gshare's global branch-outcome history.
    """

    def __init__(
        self,
        history_bits: int = 16,
        table_bits: int = 16,
        target_bits: int = 2,
    ) -> None:
        super().__init__()
        self.history_bits = history_bits
        self.table_bits = table_bits
        self.target_bits = target_bits
        self.max_targets = 1 << target_bits
        self.history_mask = (1 << history_bits) - 1
        self.index_mask = (1 << table_bits) - 1
        self.history = 0
        size = 1 << table_bits
        self.counters: List[int] = [0] * size
        self.targets: List[int] = [0] * size

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.index_mask

    def predict(self, pc: int) -> int:
        """Predicted target number for the task starting at ``pc``."""
        return self.targets[self._index(pc)]

    def update(self, pc: int, actual_index: int) -> bool:
        """Train on the resolved target; return True on mispredict."""
        idx = self._index(pc)
        predicted = self.targets[idx]
        representable = actual_index < self.max_targets
        correct = representable and predicted == actual_index
        if correct:
            if self.counters[idx] < 3:
                self.counters[idx] += 1
        elif self.counters[idx] > 0:
            self.counters[idx] -= 1
        elif representable:
            self.targets[idx] = actual_index
        # Fold the outcome (not the PC) into the global history.
        self.history = (
            (self.history << self.target_bits)
            | (actual_index & (self.max_targets - 1))
        ) & self.history_mask
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        return not correct

    def push_history(self, pc: int) -> None:
        """No-op: this variant's history is outcome-fed in ``update``."""


class HybridTaskPredictor(_TaskPredictorStats):
    """Tournament of the path and gshare variants.

    A per-PC table of 2-bit choosers arbitrates (0–1 → path, 2–3 →
    gshare); the chooser trains toward whichever component was right
    when they disagree, and both components always train.
    """

    def __init__(self, table_bits: int = 16) -> None:
        super().__init__()
        self.path = PathPredictor()
        self.gshare = GshareTaskPredictor()
        self.index_mask = (1 << table_bits) - 1
        self.choosers: List[int] = [1] * (1 << table_bits)

    def _choose_gshare(self, pc: int) -> bool:
        return self.choosers[pc & self.index_mask] >= 2

    def predict(self, pc: int) -> int:
        """Predicted target number (from the chosen component)."""
        if self._choose_gshare(pc):
            return self.gshare.predict(pc)
        return self.path.predict(pc)

    def update(self, pc: int, actual_index: int) -> bool:
        """Train both components + the chooser; True on mispredict."""
        path_pred = self.path.predict(pc)
        gshare_pred = self.gshare.predict(pc)
        use_gshare = self._choose_gshare(pc)
        chosen = gshare_pred if use_gshare else path_pred
        representable = actual_index < self.path.max_targets
        correct = representable and chosen == actual_index
        path_right = representable and path_pred == actual_index
        gshare_right = representable and gshare_pred == actual_index
        if path_right != gshare_right:
            idx = pc & self.index_mask
            if gshare_right:
                if self.choosers[idx] < 3:
                    self.choosers[idx] += 1
            elif self.choosers[idx] > 0:
                self.choosers[idx] -= 1
        self.path.update(pc, actual_index)
        self.gshare.update(pc, actual_index)
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        return not correct

    def push_history(self, pc: int) -> None:
        """Advance the path component's history (gshare's is outcome-fed)."""
        self.path.push_history(pc)


def make_task_predictor(kind: str = "path"):
    """Instantiate the inter-task predictor for ``kind``.

    ``"path"`` returns a plain :class:`PathPredictor` — the exact
    object every pre-machines run constructed, which is what keeps
    homogeneous machine specs bit-identical to legacy configs.
    """
    if kind == "path":
        return PathPredictor()
    if kind == "gshare":
        return GshareTaskPredictor()
    if kind == "hybrid":
        return HybridTaskPredictor()
    known = ", ".join(TASK_PREDICTOR_KINDS)
    raise ValueError(f"unknown task predictor {kind!r}; known: {known}")
