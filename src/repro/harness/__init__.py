"""Parallel experiment execution engine (the paper-artefact harness).

The experiment layer describes *what* to measure (grids of
benchmark × heuristic × machine cells); this package decides *how*:

* :mod:`~repro.harness.spec` — :class:`RunSpec`, the declarative job
  model with deterministic content hashes;
* :mod:`~repro.harness.scheduler` — :func:`run_specs`, grouping specs
  by compile key and fanning them out over a process pool with
  timeout, bounded retry, and a serial ``jobs=1`` fallback;
* :mod:`~repro.harness.cache` — :class:`ArtifactCache`, the
  persistent content-addressed store for compilation products and
  finished records, salted by a digest of the package sources;
* :mod:`~repro.harness.ledger` — :class:`RunLedger`, the append-only
  JSONL audit trail plus live progress;
* :mod:`~repro.harness.serialize` — JSON views for ``--json``.
"""

from repro.harness.cache import ArtifactCache, code_version, default_cache_root
from repro.harness.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    RunLedger,
    append_jsonl_line,
    completed_spec_hashes,
    read_ledger,
)
from repro.harness.scheduler import (
    HarnessError,
    backoff_delay,
    execute_spec,
    run_specs,
    shard_specs,
)
from repro.harness.serialize import (
    grid_records,
    record_to_dict,
    records_to_json,
    write_records_json,
)
from repro.harness.spec import RunSpec, canonical, digest

__all__ = [
    "ArtifactCache",
    "HarnessError",
    "LEDGER_SCHEMA_VERSION",
    "LedgerEntry",
    "RunLedger",
    "RunSpec",
    "append_jsonl_line",
    "backoff_delay",
    "canonical",
    "code_version",
    "completed_spec_hashes",
    "default_cache_root",
    "digest",
    "execute_spec",
    "grid_records",
    "read_ledger",
    "record_to_dict",
    "records_to_json",
    "run_specs",
    "shard_specs",
    "write_records_json",
]
