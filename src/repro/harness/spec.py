"""Declarative job model for the execution harness.

A :class:`RunSpec` names one experiment cell — everything
:func:`repro.experiments.runner.run_benchmark` needs to produce a
:class:`~repro.experiments.runner.RunRecord` — as plain data, so the
scheduler can hash it, group it with cells that share compilation
work, ship it to a worker process, and cache its products.

Two hashes matter:

* the **compile signature** covers only the fields that determine the
  compilation products (benchmark, scale, selection config, input
  sets) — cells sharing it reuse one ``Compiled``;
* the **spec hash** additionally covers the machine configuration —
  it keys finished ``RunRecord``s in the artifact cache.

Both are content hashes over a canonical encoding of the dataclass
tree (no ``hash()``, no ``pickle``), so they are stable across
processes and interpreter invocations.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.compiler import HeuristicLevel, SelectionConfig
from repro.sim import SimConfig


def cell_label(benchmark: str, level, n_pus: int,
               out_of_order: bool) -> str:
    """The canonical short label for one experiment cell.

    ``repro report`` keys its comparison table on this string, so the
    harness (:meth:`RunSpec.describe`) and every loader that
    reconstructs labels from serialized records must agree on it.
    """
    level_name = getattr(level, "value", level)
    mode = "ooo" if out_of_order else "ino"
    return f"{benchmark}/{level_name}@{n_pus}pu-{mode}"


def canonical(value):
    """Deterministic, hash-stable encoding of a config value tree.

    Dataclasses become ``(classname, (field, value)...)`` tuples,
    enums ``(classname, value)``; floats go through ``repr`` so the
    encoding is exact.  Anything outside the closed set of config
    types is a hard error — silent fallbacks would alias cache keys.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, canonical(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.value)
    if isinstance(value, dict):
        return ("dict",) + tuple(
            sorted((canonical(k), canonical(v)) for k, v in value.items())
        )
    if isinstance(value, (list, tuple)):
        return ("seq",) + tuple(canonical(v) for v in value)
    if isinstance(value, float):
        return ("float", repr(value))
    if value is None or isinstance(value, (str, int, bool, bytes)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__!r} for hashing")


def digest(value, salt: str = "") -> str:
    """SHA-256 hex digest of ``canonical(value)`` plus a salt."""
    payload = repr(canonical(value)) + "\x00" + salt
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """One experiment cell, fully determined by its fields."""

    benchmark: str
    level: HeuristicLevel
    n_pus: int = 4
    out_of_order: bool = True
    scale: float = 1.0
    selection: Optional[SelectionConfig] = None
    sim: Optional[SimConfig] = None
    input_set: str = "ref"
    profile_input: Optional[str] = None
    #: content hash of the workload's IR text, for benchmarks whose
    #: program is generated rather than registered (``synth:*``).  It
    #: salts the compile signature so generated programs can never
    #: alias cached artifacts of a same-named workload produced by a
    #: different generator version — and fuzz records (which embed
    #: oracle results) never alias plain run records.
    source_hash: Optional[str] = None

    def resolved_selection(self) -> SelectionConfig:
        """The selection config the runner will actually use."""
        selection = self.selection or SelectionConfig(level=self.level)
        if selection.level is not self.level:
            selection = replace(selection, level=self.level)
        return selection

    def resolved_profile_input(self) -> str:
        return self.profile_input or self.input_set

    def compile_signature(self) -> Tuple:
        """Canonical identity of the compilation products."""
        signature = (
            "compile",
            self.benchmark,
            ("float", repr(self.scale)),
            self.input_set,
            self.resolved_profile_input(),
            self.resolved_selection(),
        )
        if self.source_hash is not None:
            signature += (("source", self.source_hash),)
        return canonical(signature)

    def compile_hash(self, salt: str = "") -> str:
        return digest(self.compile_signature(), salt)

    def spec_hash(self, salt: str = "") -> str:
        """Content hash of the whole cell (compile + machine)."""
        return digest(
            (
                "run",
                self.compile_signature(),
                self.n_pus,
                self.out_of_order,
                self.sim or SimConfig(),
            ),
            salt,
        )

    def describe(self) -> str:
        """Short human label for progress lines and errors.

        Cells running a non-default selection strategy get a
        ``+strategy`` suffix so tuner/fuzz progress lines distinguish
        them from the paper reference cell of the same level; default
        cells keep the exact historical label.
        """
        label = cell_label(
            self.benchmark, self.level, self.n_pus, self.out_of_order
        )
        if self.selection is not None and self.selection.strategy:
            label = f"{label}+{self.selection.strategy}"
        return label
