"""Append-only run ledger plus a live progress line.

Every job the scheduler finishes — cache hit or fresh execution,
success or failure — appends one JSON object to a ``ledger.jsonl``
file::

    {"ts": 1699.2, "schema_version": 3, "seq": 17,
     "spec_hash": "ab12..",
     "job": "compress/...", "benchmark": "compress",
     "level": "control_flow", "n_pus": 4, "out_of_order": true,
     "cache": "hit"|"miss"|"resume", "retries": 0,
     "outcome": "ok"|"error"|"timeout", "wall_seconds": 0.42,
     "error": null, "metrics": {"counters": ..., "histograms": ...}}

``seq`` (schema 3) is a monotonic per-file record number: it starts
one past the highest ``seq`` already in the file, so interleaved and
resumed runs stay totally ordered even when wall-clock timestamps
collide.  ``metrics`` (schema 3) carries the run's telemetry registry
summary (see :func:`repro.telemetry.metrics.run_metrics`); ``repro
report`` diffs ledgers through it.

Harness lifecycle *events* (e.g. a worker pool dying) are interleaved
as ``{"ts": ..., "schema_version": 3, "seq": ..., "event":
"pool_broken", ...}`` lines.  Readers are tolerant by contract:
unknown fields and unknown line shapes are preserved
(``read_ledger``) or ignored (``LedgerEntry.from_dict``), so
``--resume`` survives future ledger format growth in either
direction — and schema-2 ledgers (no ``seq``, no ``metrics``) still
parse.

Appends are **single-write**: each line is encoded once and written
with one ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
writers (the campaign service's shard workers share one per-job
ledger file) never interleave partial JSON lines.  A reader racing a
writer can still observe a torn *tail* (the final line mid-write);
``read_ledger`` skips unparseable lines, so torn tails degrade to
"not yet visible" instead of crashing ``--resume``.

The ledger is the audit trail for sweeps: it answers "what actually
ran, how long did it take, and what came from the cache" without
re-running anything; the tests use it to prove warm-cache runs never
re-enter the interpreter, and ``--resume`` replays it to skip
completed cells after an interrupted grid.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import IO, List, Optional

from repro.harness.spec import RunSpec

#: current on-disk schema; bump when the entry shape changes
LEDGER_SCHEMA_VERSION = 3


def append_jsonl_line(path, payload: dict) -> None:
    """Append one JSON line to ``path`` with a single ``write``.

    ``O_APPEND`` + one ``os.write`` of the whole encoded line keeps
    concurrent appenders from interleaving partial lines: POSIX makes
    each append-mode write land at the (atomically advanced) end of
    file, so lines from different writers may be *reordered* but
    never spliced into each other.  Both the run ledger and the
    campaign-service journal append through here.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = (json.dumps(payload) + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


@dataclass
class LedgerEntry:
    """One finished job (see module docstring for the JSONL schema)."""

    spec_hash: str
    job: str
    benchmark: str
    level: str
    n_pus: int
    out_of_order: bool
    cache: str  # "hit" | "miss"
    retries: int
    outcome: str  # "ok" | "error" | "timeout"
    wall_seconds: float
    error: Optional[str] = None
    metrics: Optional[dict] = None

    @classmethod
    def for_spec(cls, spec: RunSpec, spec_hash: str, *, cache: str,
                 retries: int, outcome: str, wall_seconds: float,
                 error: Optional[str] = None,
                 metrics: Optional[dict] = None) -> "LedgerEntry":
        return cls(
            spec_hash=spec_hash,
            job=spec.describe(),
            benchmark=spec.benchmark,
            level=spec.level.value,
            n_pus=spec.n_pus,
            out_of_order=spec.out_of_order,
            cache=cache,
            retries=retries,
            outcome=outcome,
            wall_seconds=round(wall_seconds, 6),
            error=error,
            metrics=metrics,
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "LedgerEntry":
        """Rebuild an entry from a ledger line, tolerating format drift.

        Unknown fields (including future ``schema_version`` growth)
        are ignored; missing fields fall back to neutral defaults, so
        old readers keep working against newer ledgers and vice
        versa.
        """
        known = {f.name for f in fields(cls)}
        defaults = {
            "spec_hash": "", "job": "", "benchmark": "", "level": "",
            "n_pus": 0, "out_of_order": True, "cache": "miss",
            "retries": 0, "outcome": "ok", "wall_seconds": 0.0,
        }
        kwargs = {k: payload.get(k, defaults.get(k))
                  for k in known if k in payload or k in defaults}
        kwargs.setdefault("error", payload.get("error"))
        return cls(**kwargs)


class RunLedger:
    """Appends entries to a JSONL file and narrates progress.

    ``progress`` is any writable text stream (the CLI passes
    ``sys.stderr``); ``None`` keeps the ledger silent, which is what
    tests and library callers want.
    """

    def __init__(self, path, progress: Optional[IO[str]] = None) -> None:
        self.path = Path(path)
        self.progress = progress
        self._total = 0
        self._done = 0
        #: next record number; None until the first append scans the
        #: existing file so resumed runs continue the sequence
        self._next_seq: Optional[int] = None

    def open_run(self, total: int) -> None:
        """Reset the progress counter for a new submission of ``total`` jobs."""
        self._total = total
        self._done = 0

    def record(self, entry: LedgerEntry) -> None:
        """Append one entry (flushed immediately) and update progress."""
        payload = {
            "ts": round(time.time(), 3),
            "schema_version": LEDGER_SCHEMA_VERSION,
        }
        payload.update(asdict(entry))
        self._append(payload)
        self._done += 1
        self._narrate(entry)

    def event(self, kind: str, **detail) -> None:
        """Append a harness lifecycle event (not tied to one spec)."""
        payload = {
            "ts": round(time.time(), 3),
            "schema_version": LEDGER_SCHEMA_VERSION,
            "event": kind,
        }
        payload.update(detail)
        self._append(payload)

    def _take_seq(self) -> int:
        """Next monotonic record number (total order within the file)."""
        if self._next_seq is None:
            highest = -1
            for entry in read_ledger(self.path):
                seq = entry.get("seq")
                if isinstance(seq, int) and seq > highest:
                    highest = seq
            self._next_seq = highest + 1
        seq = self._next_seq
        self._next_seq = seq + 1
        return seq

    def _append(self, payload: dict) -> None:
        payload["seq"] = self._take_seq()
        append_jsonl_line(self.path, payload)

    def _narrate(self, entry: LedgerEntry) -> None:
        if self.progress is None:
            return
        line = (
            f"\r[{self._done}/{self._total}] {entry.job} "
            f"{entry.cache} {entry.outcome} {entry.wall_seconds:.2f}s"
        )
        end = "\n" if self._done >= self._total else ""
        try:
            self.progress.write(line.ljust(72) + end)
            self.progress.flush()
        except (OSError, ValueError):  # closed stream: progress is best-effort
            self.progress = None


def read_ledger(path) -> List[dict]:
    """Parse a ledger file back into dicts (skipping torn lines)."""
    entries: List[dict] = []
    path = Path(path)
    if not path.exists():
        return entries
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return entries


def ledger_events(path, kind: Optional[str] = None) -> List[dict]:
    """Lifecycle event lines from a ledger (``pool_broken``,
    ``spec_quarantined``, ...), optionally filtered by ``kind``.

    Spec entries (lines without an ``event`` field) are skipped; the
    campaign service and the chaos report both read shard ledgers
    through here to count what the harness survived.
    """
    out = []
    for entry in read_ledger(path):
        event = entry.get("event")
        if not event:
            continue
        if kind is not None and event != kind:
            continue
        out.append(entry)
    return out


def completed_spec_hashes(path) -> set:
    """Spec hashes the ledger records as successfully finished.

    This is what ``--resume`` replays: cells whose hash appears here
    were committed (cache hit or fresh execution) by a previous run
    and can be skipped.  Event lines and malformed entries are
    ignored.
    """
    done = set()
    for entry in read_ledger(path):
        spec_hash = entry.get("spec_hash")
        if spec_hash and entry.get("outcome") == "ok":
            done.add(spec_hash)
    return done


def default_progress() -> Optional[IO[str]]:
    """stderr when it is a live console, else silent."""
    stream = sys.stderr
    try:
        if stream.isatty():
            return stream
    except (AttributeError, ValueError):
        pass
    return None
