"""JSON views of run records (the ``--json`` CLI output).

A :class:`~repro.experiments.runner.RunRecord` is a plain dataclass
except for the heuristic-level enum and the nested cycle breakdown;
:func:`record_to_dict` flattens both and adds the derived Table 1
metrics so downstream tooling never needs to re-implement them.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.experiments.runner import RunRecord


def record_to_dict(record: RunRecord) -> Dict:
    """One record as JSON-ready primitives."""
    return {
        "benchmark": record.benchmark,
        "suite": record.suite,
        "level": record.level.value,
        "n_pus": record.n_pus,
        "out_of_order": record.out_of_order,
        "cycles": record.cycles,
        "instructions": record.instructions,
        "ipc": record.ipc,
        "dynamic_tasks": record.dynamic_tasks,
        "mean_task_size": record.mean_task_size,
        "mean_control_transfers": record.mean_control_transfers,
        "mean_branches": record.mean_branches,
        "task_prediction_accuracy": record.task_prediction_accuracy,
        "branch_prediction_accuracy": record.branch_prediction_accuracy,
        "control_squashes": record.control_squashes,
        "memory_squashes": record.memory_squashes,
        "mean_window_span_measured": record.mean_window_span_measured,
        "task_misprediction_percent": record.task_misprediction_percent,
        "branch_normalized_misprediction_percent": (
            record.branch_normalized_misprediction_percent
        ),
        "window_span_formula": record.window_span_formula,
        "breakdown": record.breakdown.as_dict(),
        "metrics": getattr(record, "metrics", None),
    }


def records_to_json(command: str, records: Iterable[RunRecord],
                    scale: float = 1.0) -> str:
    """A whole grid as a stable, pretty-printed JSON document."""
    payload = {
        "command": command,
        "scale": scale,
        "records": [record_to_dict(record) for record in records],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def write_records_json(path, command: str, records: Iterable[RunRecord],
                       scale: float = 1.0) -> None:
    """Serialize a grid to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(records_to_json(command, records, scale))


def grid_records(records_dict: Dict) -> List[RunRecord]:
    """A result object's keyed grid in deterministic key order."""
    return [records_dict[key] for key in sorted(records_dict, key=str)]
