"""Shared-memory transport for packed traces.

Packing a trace (:class:`~repro.sim.packed.PackedTrace`) walks every
dynamic instruction in Python — for a full-scale benchmark that is
millions of loop iterations per compile group, repeated in every
worker process that compiles the group from scratch.  When the parent
already holds the compilation (a warm in-memory cache: a repeated
grid, a resubmitted service job, an interactive session), it can
instead *export* the packed arrays once into a
``multiprocessing.shared_memory`` segment and hand workers a small
token; a worker attaches, copies the arrays out, and skips the
packing pass entirely.  The trace interpretation and task selection
still run in the worker — the donated arrays are adopted by
``build_task_stream(..., packed=...)`` at the moment the stream they
describe is rebuilt.

Correctness rests on the same contract the artifact cache already
relies on: compilation is a deterministic function of the compile
key, so arrays packed by the parent are bit-identical to what the
worker would have packed (the adoption site still cross-checks the
instruction count).  Everything here degrades gracefully: platforms
without POSIX shared memory, segments that vanished, or tokens that
fail to decode simply fall back to local packing.

Lifecycle: the exporting side owns the segment and must
``close()`` + ``unlink()`` it when the worker pool is done (the
scheduler does this in its pool-shutdown path).  Attaching sides
``close()`` immediately after copying — and unregister the segment
from the ``resource_tracker`` first, because on Python < 3.13 every
attach is auto-registered and a worker exit would otherwise unlink a
segment it does not own (bpo-39959).
"""

from __future__ import annotations

import json
import os
import struct
from array import array
from typing import Dict, Optional, Tuple

try:  # pragma: no cover - exercised indirectly via the fallback tests
    from multiprocessing import shared_memory
except ImportError:  # platform without _posixshmem
    shared_memory = None  # type: ignore[assignment]

from repro.sim.packed import PackedTrace

#: bump when the encoding changes; attach rejects other versions
ENCODING_VERSION = 1

#: single-byte per-instruction flag/field arrays
_BYTE_FIELDS: Tuple[str, ...] = (
    "opcls", "is_load", "is_store", "is_mem", "is_cond_branch",
    "block_start", "has_write", "has_remote_consumer",
    "gshare_mispred", "cross_consumer", "issue_simple",
)

#: wide fields stored as ``array('q')`` on the trace
_Q_ARRAY_FIELDS: Tuple[str, ...] = ("pc", "addr")

#: hot-path fields stored as plain ``list`` of ints on the trace
_Q_LIST_FIELDS: Tuple[str, ...] = ("latency", "mem_producer", "task_seq")


def encode_packed(packed: PackedTrace) -> bytes:
    """Serialize the packed arrays into one flat binary blob.

    Layout: an 8-byte little-endian header length, a JSON header
    mapping field name to ``[offset, length]`` within the payload,
    then the concatenated payload.  Ragged structures (the producer
    tuples, the cross-task consumer map) are flattened to data +
    offset arrays — no pickling, so the blob is interpreter-stable.
    """
    segments: Dict[str, bytes] = {}
    for name in _BYTE_FIELDS:
        segments[name] = bytes(getattr(packed, name))
    for name in _Q_ARRAY_FIELDS:
        segments[name] = getattr(packed, name).tobytes()
    for name in _Q_LIST_FIELDS:
        segments[name] = array("q", getattr(packed, name)).tobytes()

    producers = packed.producers
    prod_offsets = array("q", bytes(8 * (len(producers) + 1)))
    prod_data = array("q")
    total = 0
    for i, prods in enumerate(producers):
        if prods:
            prod_data.extend(prods)
            total += len(prods)
        prod_offsets[i + 1] = total
    segments["producers_data"] = prod_data.tobytes()
    segments["producers_offsets"] = prod_offsets.tobytes()

    consumer_keys = array("q", sorted(packed.consumer_seqs))
    consumer_offsets = array("q", bytes(8 * (len(consumer_keys) + 1)))
    consumer_data = array("q")
    total = 0
    for i, key in enumerate(consumer_keys):
        seqs = packed.consumer_seqs[key]
        consumer_data.extend(seqs)
        total += len(seqs)
        consumer_offsets[i + 1] = total
    segments["consumer_keys"] = consumer_keys.tobytes()
    segments["consumer_data"] = consumer_data.tobytes()
    segments["consumer_offsets"] = consumer_offsets.tobytes()

    fields: Dict[str, Tuple[int, int]] = {}
    offset = 0
    payloads = []
    for name, payload in segments.items():
        fields[name] = (offset, len(payload))
        payloads.append(payload)
        offset += len(payload)
    header = json.dumps({
        "version": ENCODING_VERSION,
        "n": packed.n,
        "gshare_predictions": packed.gshare_predictions,
        "gshare_accuracy": packed.gshare_accuracy,
        "fields": fields,
    }).encode("utf-8")
    return struct.pack("<q", len(header)) + header + b"".join(payloads)


def decode_packed(blob: bytes) -> PackedTrace:
    """Rebuild a :class:`PackedTrace` from :func:`encode_packed` output.

    The result is *unadopted*: its ``_stream`` is unset until
    ``build_task_stream`` binds it to the stream it describes (see
    :meth:`PackedTrace.adopt`).
    """
    (header_len,) = struct.unpack_from("<q", blob, 0)
    header = json.loads(blob[8:8 + header_len].decode("utf-8"))
    if header.get("version") != ENCODING_VERSION:
        raise ValueError(
            f"packed-trace encoding version {header.get('version')!r}, "
            f"expected {ENCODING_VERSION}"
        )
    base = 8 + header_len
    fields = header["fields"]

    def segment(name: str) -> bytes:
        offset, length = fields[name]
        return blob[base + offset: base + offset + length]

    def q_array(name: str) -> array:
        out = array("q")
        out.frombytes(segment(name))
        return out

    n = header["n"]
    packed = PackedTrace.__new__(PackedTrace)
    packed.n = n
    for name in _BYTE_FIELDS:
        setattr(packed, name, bytearray(segment(name)))
    for name in _Q_ARRAY_FIELDS:
        setattr(packed, name, q_array(name))
    for name in _Q_LIST_FIELDS:
        setattr(packed, name, q_array(name).tolist())

    prod_offsets = q_array("producers_offsets")
    prod_data = q_array("producers_data")
    producers = [()] * n
    for i in range(n):
        lo, hi = prod_offsets[i], prod_offsets[i + 1]
        if hi > lo:
            producers[i] = tuple(prod_data[lo:hi])
    packed.producers = producers

    consumer_keys = q_array("consumer_keys")
    consumer_offsets = q_array("consumer_offsets")
    consumer_data = q_array("consumer_data")
    packed.consumer_seqs = {
        key: tuple(consumer_data[consumer_offsets[i]:consumer_offsets[i + 1]])
        for i, key in enumerate(consumer_keys)
    }

    packed.gshare_predictions = header["gshare_predictions"]
    packed.gshare_accuracy = header["gshare_accuracy"]
    packed._stream = None
    packed._release_cache = {}
    return packed


def export_packed(packed: PackedTrace):
    """Write ``packed`` into a fresh shared-memory segment.

    Returns ``(segment, token)``; the caller owns the segment and
    must ``close()`` + ``unlink()`` it after every consumer finished.
    Returns ``(None, None)`` when shared memory is unavailable or the
    allocation fails — callers fall back to local packing.
    """
    if shared_memory is None:
        return None, None
    blob = encode_packed(packed)
    try:
        segment = shared_memory.SharedMemory(create=True, size=len(blob))
    except (OSError, ValueError):
        return None, None
    segment.buf[: len(blob)] = blob
    token = {"name": segment.name, "size": len(blob), "pid": os.getpid()}
    return segment, token


def attach_packed(token: Optional[dict]) -> Optional[PackedTrace]:
    """Copy a packed trace out of the segment ``token`` names.

    Returns ``None`` on any failure (missing segment, stale token,
    encoding mismatch) — the worker then packs locally.  The segment
    is closed before returning; it is never unlinked here.
    """
    if shared_memory is None or not token:
        return None
    try:
        segment = shared_memory.SharedMemory(name=token["name"])
    except (OSError, ValueError, KeyError, TypeError):
        return None
    try:
        # Attaching auto-registers the segment with this process's
        # resource tracker (until 3.13's track=False); unregister so a
        # worker exiting does not unlink a segment the parent owns.
        # The exporting process itself skips this — its tracker holds
        # one entry for the segment that unlink will consume.
        if token.get("pid") != os.getpid():
            try:  # pragma: no cover - resource_tracker internals
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # noqa: BLE001 - tracking is best-effort
                pass
        return decode_packed(bytes(segment.buf[: token["size"]]))
    except (ValueError, KeyError, struct.error):
        return None
    finally:
        segment.close()


def release_segment(segment) -> None:
    """Close and unlink one exported segment, tolerating races.

    Re-registers the segment with the resource tracker first:
    fork-based pool workers share the parent's tracker, so their
    attach-side unregister (the bpo-39959 guard, needed for spawned
    workers with private trackers) may have removed the parent's
    entry — unlinking without it makes the tracker log a spurious
    KeyError at exit.  Registration is a set, so this is idempotent
    when the entry survived.
    """
    if segment is None:
        return
    try:  # pragma: no cover - resource_tracker internals
        from multiprocessing import resource_tracker

        resource_tracker.register(segment._name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracking is best-effort
        pass
    try:
        segment.close()
        segment.unlink()
    except (OSError, ValueError):  # already unlinked / never mapped
        pass
