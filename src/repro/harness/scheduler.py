"""Job-graph scheduler: group by compile key, fan out, retry, recover.

The dependence structure of every paper artefact is known statically:
cells sharing a ``(benchmark, scale, selection, input)`` tuple share
one compilation (partition / trace / task stream), and everything
else is independent.  :func:`run_specs` exploits exactly that shape:

1. resolve **record cache hits** up front (no work scheduled) —
   with ``resume=True`` the run ledger is replayed first, so an
   interrupted grid restarts by executing only its missing cells;
2. group the misses by compile signature;
3. run each group as one job — compile once (warm-started from the
   persistent compiled-artifact cache when possible), then simulate
   every machine configuration in the group;
4. fan groups out over a ``ProcessPoolExecutor`` (``jobs`` workers,
   default ``os.cpu_count()``), with a per-job timeout and a bounded
   retry (exponential backoff with full jitter between attempts);
   ``jobs=1`` degrades to a plain in-process loop with no pool,
   byte-identical to the historical serial path.

The scheduler is self-healing: a dying worker pool
(``BrokenProcessPool`` — e.g. a worker OOM-killed) no longer fails
every remaining group.  The event is logged to the ledger and the
rest of the grid finishes serially in-process.

Results come back aligned with the input specs, so callers rebuild
their keyed grids with ``zip``.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
)
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    RunRecord,
    compile_cache_key,
    peek_compiled,
    run_benchmark,
    seed_compiled,
)
from repro.harness.cache import ArtifactCache
from repro.harness.ledger import (
    LedgerEntry,
    RunLedger,
    completed_spec_hashes,
)
from repro.harness.spec import RunSpec

#: a worker maps one spec to one record (injectable for tests)
Worker = Callable[[RunSpec], RunRecord]

#: minimum cells sharing a compile group before the scheduler routes
#: the group through the array-batched cohort kernel instead of
#: cell-by-cell execution (a cohort of one only adds overhead)
BATCH_MIN_CELLS = 2

#: re-raised per group after retries are exhausted
class HarnessError(RuntimeError):
    """One or more jobs failed after all retries."""

    def __init__(self, failures: Sequence[Tuple[RunSpec, str]]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} job(s) failed:"]
        lines += [f"  {spec.describe()}: {reason}"
                  for spec, reason in self.failures]
        super().__init__("\n".join(lines))


def execute_spec(spec: RunSpec) -> RunRecord:
    """The default worker: the canonical pipeline for one cell."""
    return run_benchmark(
        spec.benchmark,
        spec.level,
        n_pus=spec.n_pus,
        out_of_order=spec.out_of_order,
        scale=spec.scale,
        selection=spec.selection,
        sim=spec.sim,
        input_set=spec.input_set,
        profile_input=spec.profile_input,
    )


def shard_specs(
    specs: Sequence[RunSpec],
    shards: int,
    salt: str = "",
) -> List[List[RunSpec]]:
    """Partition specs into at most ``shards`` batches by content hash.

    The shard of a spec is a pure function of its ``spec_hash``, so
    any number of dispatchers (the campaign service's workers, or a
    future multi-host fleet) agree on the placement without
    coordination, and a resubmitted grid lands on the same shards —
    which keeps per-shard ledgers and caches warm.  Empty shards are
    dropped; order within a shard follows the input order.
    """
    if shards <= 0:
        raise ValueError("shard_specs needs shards >= 1")
    buckets: List[List[RunSpec]] = [[] for _ in range(shards)]
    for spec in specs:
        buckets[int(spec.spec_hash(salt), 16) % shards].append(spec)
    return [bucket for bucket in buckets if bucket]


def shard_deadline(n_specs: int, base: float = 30.0,
                   per_spec: float = 10.0) -> float:
    """Watchdog deadline (seconds) for a shard of ``n_specs`` cells.

    Scales with the work the shard was handed: a shard that blows
    past ``base + per_spec * n`` is treated as hung (worker deadlock,
    OOM thrash, a runaway simulation) and retried on a fresh pool by
    the campaign service's watchdog.  The linear model is deliberate —
    cells are independent, so honest wall time grows at most linearly
    in the shard size.
    """
    if n_specs < 0:
        raise ValueError("shard_deadline needs n_specs >= 0")
    return base + per_spec * n_specs


def backoff_delay(attempt: int, base: float, cap: float = 30.0,
                  rng: Optional[random.Random] = None) -> float:
    """Full-jitter exponential backoff: uniform in [0, base * 2^attempt].

    ``attempt`` counts completed failures (0 for the first retry).
    Jitter decorrelates retries across concurrent grids so a shared
    bottleneck (disk, memory pressure) is not re-hit in lockstep.
    """
    if base <= 0:
        return 0.0
    span = min(cap, base * (2 ** attempt))
    return (rng or random).uniform(0.0, span)


def _sleep_backoff(attempt: int, base: float, cap: float) -> None:
    delay = backoff_delay(attempt, base, cap)
    if delay > 0:
        time.sleep(delay)


def _batchable(specs: Sequence[RunSpec], worker: Worker) -> bool:
    """Should this compile group run as one batched cohort?

    Only the canonical worker is batchable (injected test workers see
    each spec individually), only when at least ``BATCH_MIN_CELLS``
    cells share the compilation, and only when *every* cell explicitly
    asks for the batched engine — mixed groups keep the cell-by-cell
    path so a record's engine is always exactly what its spec named.
    """
    return (
        worker is execute_spec
        and len(specs) >= BATCH_MIN_CELLS
        and all(
            spec.sim is not None and spec.sim.engine == "batched"
            for spec in specs
        )
    )


def _group_compile_key(specs: Sequence[RunSpec]):
    """The in-memory compile-cache key shared by one group's cells."""
    first = specs[0]
    return compile_cache_key(
        first.benchmark,
        first.level,
        first.scale,
        first.selection,
        first.input_set,
        first.profile_input,
    )


def _run_group(
    specs: Sequence[RunSpec],
    worker: Worker,
    cache: Optional[ArtifactCache],
    packed_token: Optional[dict] = None,
) -> List[Tuple[RunRecord, float]]:
    """Execute one compile group; runs inside a worker process.

    With the default worker, the group's compilation is warm-started
    from the persistent cache and, when freshly built, written back —
    so sibling groups in later sweeps (and crashed runs) reuse it.
    ``packed_token`` optionally names a shared-memory segment holding
    the group's packed trace arrays, exported by a parent whose
    in-memory cache was warm; adopting them skips this worker's
    packing pass (best-effort: any failure falls back to packing
    locally).
    """
    use_artifacts = cache is not None and worker is execute_spec
    key = _group_compile_key(specs) if worker is execute_spec else None
    seeded = False
    if use_artifacts:
        compiled = cache.get_compiled(specs[0])
        if compiled is not None:
            seed_compiled(key, compiled)
            seeded = True
    if packed_token is not None and key is not None and not seeded:
        from repro.experiments.runner import offer_packed
        from repro.harness.shm import attach_packed

        packed = attach_packed(packed_token)
        if packed is not None:
            offer_packed(key, packed)
    out: List[Tuple[RunRecord, float]] = []
    if _batchable(specs, worker):
        # Whole-group cohort: compile once, advance every machine
        # configuration in lockstep through the batched kernel.
        # Records are byte-identical to the cell-by-cell path (the
        # batched engine is bit-validated against the reference
        # engine); wall time is split evenly across the cells for
        # the ledger since the cohort interleaves them.
        from repro.experiments.runner import run_benchmark_batch

        start = time.perf_counter()
        records = run_benchmark_batch(specs)
        per_cell = (time.perf_counter() - start) / len(specs)
        out = [(record, per_cell) for record in records]
    else:
        for spec in specs:
            start = time.perf_counter()
            record = worker(spec)
            out.append((record, time.perf_counter() - start))
    if use_artifacts and not seeded:
        compiled = peek_compiled(key)
        if compiled is not None:
            cache.put_compiled(specs[0], compiled)
    return out


def _group_by_compile(
    indexed: Sequence[Tuple[int, RunSpec]],
) -> List[List[Tuple[int, RunSpec]]]:
    """Partition (index, spec) pairs by compile signature, stably."""
    groups: Dict[Tuple, List[Tuple[int, RunSpec]]] = {}
    order: List[Tuple] = []
    for index, spec in indexed:
        signature = spec.compile_signature()
        if signature not in groups:
            groups[signature] = []
            order.append(signature)
        groups[signature].append((index, spec))
    return [groups[signature] for signature in order]


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    worker: Optional[Worker] = None,
    use_threads: bool = False,
    resume: bool = False,
    backoff: float = 0.0,
    backoff_cap: float = 30.0,
) -> List[RunRecord]:
    """Run every spec, returning records aligned with ``specs``.

    ``jobs`` defaults to ``os.cpu_count()``; ``jobs=1`` runs serially
    in-process (no pool, no pickling — the graceful fallback).
    ``timeout`` bounds each group job's wall time (pool mode only; a
    timed-out job counts as a transient failure).  ``retries`` is the
    number of *re*-submissions allowed per job; ``backoff`` > 0 sleeps
    a full-jitter exponential delay (capped at ``backoff_cap``
    seconds) before each one.  ``resume`` replays the ledger and skips
    cells it records as complete (their records come from the cache;
    ledger label ``"resume"``).  ``use_threads`` swaps the process
    pool for threads — meant for tests injecting unpicklable fake
    workers, not for throughput.

    A worker pool that dies mid-grid (``BrokenProcessPool``) is logged
    to the ledger and the unfinished groups complete serially
    in-process; only per-job failures that exhaust their retries raise
    :class:`HarnessError`, after the whole grid has been attempted.
    """
    specs = list(specs)
    worker = worker or execute_spec
    jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
    results: List[Optional[RunRecord]] = [None] * len(specs)
    hashes = [
        spec.spec_hash(cache.salt if cache is not None else "")
        for spec in specs
    ]
    resumed_hashes = set()
    if resume and ledger is not None:
        resumed_hashes = completed_spec_hashes(ledger.path)
    if ledger is not None:
        ledger.open_run(len(specs))

    pending: List[Tuple[int, RunSpec]] = []
    for i, spec in enumerate(specs):
        record = cache.get_record(spec) if cache is not None else None
        if record is not None:
            results[i] = record
            if ledger is not None:
                status = "resume" if hashes[i] in resumed_hashes else "hit"
                ledger.record(LedgerEntry.for_spec(
                    spec, hashes[i], cache=status, retries=0,
                    outcome="ok", wall_seconds=0.0,
                    metrics=getattr(record, "metrics", None),
                ))
        else:
            pending.append((i, spec))

    groups = _group_by_compile(pending)
    failures: List[Tuple[RunSpec, str]] = []

    def _commit(group: List[Tuple[int, RunSpec]],
                pairs: List[Tuple[RunRecord, float]], attempts: int) -> None:
        for (i, spec), (record, wall) in zip(group, pairs):
            results[i] = record
            if cache is not None:
                cache.put_record(spec, record)
            if ledger is not None:
                ledger.record(LedgerEntry.for_spec(
                    spec, hashes[i], cache="miss", retries=attempts,
                    outcome="ok", wall_seconds=wall,
                    metrics=getattr(record, "metrics", None),
                ))

    def _fail(group: List[Tuple[int, RunSpec]], attempts: int,
              outcome: str, reason: str) -> None:
        for i, spec in group:
            failures.append((spec, reason))
            if ledger is not None:
                ledger.record(LedgerEntry.for_spec(
                    spec, hashes[i], cache="miss", retries=attempts,
                    outcome=outcome, wall_seconds=0.0, error=reason,
                ))

    def _serial_group(group: List[Tuple[int, RunSpec]]) -> None:
        """In-process execution of one group with retry + backoff."""
        group_specs = [spec for _, spec in group]
        attempts = 0
        while True:
            try:
                pairs = _run_group(group_specs, worker, cache)
            except Exception as exc:  # noqa: BLE001 — retried below
                if attempts < retries:
                    _sleep_backoff(attempts, backoff, backoff_cap)
                    attempts += 1
                    continue
                _fail(group, attempts, "error", repr(exc))
                return
            _commit(group, pairs, attempts)
            return

    if jobs == 1:
        for group in groups:
            _serial_group(group)
    elif groups:
        degraded = _run_pool(
            groups, worker, cache, ledger, jobs, timeout, retries,
            use_threads, backoff, backoff_cap, _commit, _fail,
        )
        for group in degraded:
            _serial_group(group)

    if failures:
        raise HarnessError(failures)
    return results  # type: ignore[return-value]  # all slots filled above


def _run_pool(
    groups: List[List[Tuple[int, RunSpec]]],
    worker: Worker,
    cache: Optional[ArtifactCache],
    ledger: Optional[RunLedger],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    use_threads: bool,
    backoff: float,
    backoff_cap: float,
    _commit,
    _fail,
) -> List[List[Tuple[int, RunSpec]]]:
    """Pool execution; returns groups needing serial degradation.

    A broken pool (worker process killed) aborts pool mode: the event
    is logged and every not-yet-committed group is handed back to the
    caller to finish in-process.
    """
    pool_cls = ThreadPoolExecutor if use_threads else ProcessPoolExecutor
    pool: Executor = pool_cls(max_workers=jobs)
    degraded: List[List[Tuple[int, RunSpec]]] = []

    # Shared-memory warm start: groups whose compilation is already
    # warm in THIS process export their packed trace arrays once;
    # workers attach instead of re-packing.  Threads share the
    # in-memory compile cache directly, so only process pools export.
    segments: list = []
    tokens: Dict[int, dict] = {}
    if not use_threads and worker is execute_spec:
        from repro.harness.shm import export_packed

        for g, group in enumerate(groups):
            group_specs = [s for _, s in group]
            compiled = peek_compiled(_group_compile_key(group_specs))
            if compiled is None:
                continue
            segment, token = export_packed(compiled.stream.packed)
            if segment is not None:
                segments.append(segment)
                tokens[g] = token

    try:
        futures: Dict[int, Future] = {
            g: pool.submit(_run_group, [s for _, s in group], worker,
                           cache, tokens.get(g))
            for g, group in enumerate(groups)
        }
        attempts_left = {g: retries for g in futures}
        attempts_used = {g: 0 for g in futures}

        def _resubmit(g: int) -> bool:
            """Retry group ``g``; False when the pool itself is broken."""
            attempts_left[g] -= 1
            attempts_used[g] += 1
            _sleep_backoff(attempts_used[g] - 1, backoff, backoff_cap)
            try:
                futures[g] = pool.submit(
                    _run_group, [s for _, s in groups[g]], worker, cache,
                    tokens.get(g),
                )
            except (BrokenExecutor, RuntimeError):
                return False
            return True

        broken: Optional[BaseException] = None
        while futures and broken is None:
            done_keys = []
            for g, future in list(futures.items()):
                group = groups[g]
                try:
                    pairs = future.result(timeout=timeout)
                except FutureTimeout:
                    future.cancel()
                    if attempts_left[g] > 0:
                        if _resubmit(g):
                            continue
                        broken = RuntimeError("pool broke during resubmit")
                        break
                    _fail(group, attempts_used[g], "timeout",
                          f"timed out after {timeout}s")
                    done_keys.append(g)
                    continue
                except BrokenExecutor as exc:
                    broken = exc
                    break
                except Exception as exc:  # noqa: BLE001 — retried below
                    if attempts_left[g] > 0:
                        if _resubmit(g):
                            continue
                        broken = RuntimeError("pool broke during resubmit")
                        break
                    _fail(group, attempts_used[g], "error", repr(exc))
                    done_keys.append(g)
                    continue
                _commit(group, pairs, attempts_used[g])
                done_keys.append(g)
            for g in done_keys:
                futures.pop(g, None)
        if broken is not None:
            degraded = [groups[g] for g in futures]
            if ledger is not None:
                ledger.event(
                    "pool_broken",
                    error=repr(broken),
                    degraded_groups=len(degraded),
                )
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
        # Unlink only removes the name: workers that already attached
        # keep their mapping, and a worker attaching after this point
        # fails the attach and packs locally — both graceful.
        if segments:
            from repro.harness.shm import release_segment

            for segment in segments:
                release_segment(segment)
    return degraded
