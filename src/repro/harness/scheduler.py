"""Job-graph scheduler: group by compile key, fan out, retry, cache.

The dependence structure of every paper artefact is known statically:
cells sharing a ``(benchmark, scale, selection, input)`` tuple share
one compilation (partition / trace / task stream), and everything
else is independent.  :func:`run_specs` exploits exactly that shape:

1. resolve **record cache hits** up front (no work scheduled);
2. group the misses by compile signature;
3. run each group as one job — compile once (warm-started from the
   persistent compiled-artifact cache when possible), then simulate
   every machine configuration in the group;
4. fan groups out over a ``ProcessPoolExecutor`` (``jobs`` workers,
   default ``os.cpu_count()``), with a per-job timeout and a bounded
   retry on failure; ``jobs=1`` degrades to a plain in-process loop
   with no pool, byte-identical to the historical serial path.

Results come back aligned with the input specs, so callers rebuild
their keyed grids with ``zip``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeout,
)
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    RunRecord,
    compile_cache_key,
    peek_compiled,
    run_benchmark,
    seed_compiled,
)
from repro.harness.cache import ArtifactCache
from repro.harness.ledger import LedgerEntry, RunLedger
from repro.harness.spec import RunSpec

#: a worker maps one spec to one record (injectable for tests)
Worker = Callable[[RunSpec], RunRecord]

#: re-raised per group after retries are exhausted
class HarnessError(RuntimeError):
    """One or more jobs failed after all retries."""

    def __init__(self, failures: Sequence[Tuple[RunSpec, str]]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} job(s) failed:"]
        lines += [f"  {spec.describe()}: {reason}"
                  for spec, reason in self.failures]
        super().__init__("\n".join(lines))


def execute_spec(spec: RunSpec) -> RunRecord:
    """The default worker: the canonical pipeline for one cell."""
    return run_benchmark(
        spec.benchmark,
        spec.level,
        n_pus=spec.n_pus,
        out_of_order=spec.out_of_order,
        scale=spec.scale,
        selection=spec.selection,
        sim=spec.sim,
        input_set=spec.input_set,
        profile_input=spec.profile_input,
    )


def _run_group(
    specs: Sequence[RunSpec],
    worker: Worker,
    cache: Optional[ArtifactCache],
) -> List[Tuple[RunRecord, float]]:
    """Execute one compile group; runs inside a worker process.

    With the default worker, the group's compilation is warm-started
    from the persistent cache and, when freshly built, written back —
    so sibling groups in later sweeps (and crashed runs) reuse it.
    """
    use_artifacts = cache is not None and worker is execute_spec
    key = None
    seeded = False
    if use_artifacts:
        first = specs[0]
        key = compile_cache_key(
            first.benchmark,
            first.level,
            first.scale,
            first.selection,
            first.input_set,
            first.profile_input,
        )
        compiled = cache.get_compiled(first)
        if compiled is not None:
            seed_compiled(key, compiled)
            seeded = True
    out: List[Tuple[RunRecord, float]] = []
    for spec in specs:
        start = time.perf_counter()
        record = worker(spec)
        out.append((record, time.perf_counter() - start))
    if use_artifacts and not seeded:
        compiled = peek_compiled(key)
        if compiled is not None:
            cache.put_compiled(specs[0], compiled)
    return out


def _group_by_compile(
    indexed: Sequence[Tuple[int, RunSpec]],
) -> List[List[Tuple[int, RunSpec]]]:
    """Partition (index, spec) pairs by compile signature, stably."""
    groups: Dict[Tuple, List[Tuple[int, RunSpec]]] = {}
    order: List[Tuple] = []
    for index, spec in indexed:
        signature = spec.compile_signature()
        if signature not in groups:
            groups[signature] = []
            order.append(signature)
        groups[signature].append((index, spec))
    return [groups[signature] for signature in order]


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache: Optional[ArtifactCache] = None,
    ledger: Optional[RunLedger] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    worker: Optional[Worker] = None,
    use_threads: bool = False,
) -> List[RunRecord]:
    """Run every spec, returning records aligned with ``specs``.

    ``jobs`` defaults to ``os.cpu_count()``; ``jobs=1`` runs serially
    in-process (no pool, no pickling — the graceful fallback).
    ``timeout`` bounds each group job's wall time (pool mode only; a
    timed-out job counts as a transient failure).  ``retries`` is the
    number of *re*-submissions allowed per job.  ``use_threads``
    swaps the process pool for threads — meant for tests injecting
    unpicklable fake workers, not for throughput.

    Raises :class:`HarnessError` after the whole grid has been
    attempted if any job still failed.
    """
    specs = list(specs)
    worker = worker or execute_spec
    jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
    results: List[Optional[RunRecord]] = [None] * len(specs)
    hashes = [
        spec.spec_hash(cache.salt if cache is not None else "")
        for spec in specs
    ]
    if ledger is not None:
        ledger.open_run(len(specs))

    pending: List[Tuple[int, RunSpec]] = []
    for i, spec in enumerate(specs):
        record = cache.get_record(spec) if cache is not None else None
        if record is not None:
            results[i] = record
            if ledger is not None:
                ledger.record(LedgerEntry.for_spec(
                    spec, hashes[i], cache="hit", retries=0,
                    outcome="ok", wall_seconds=0.0,
                ))
        else:
            pending.append((i, spec))

    groups = _group_by_compile(pending)
    failures: List[Tuple[RunSpec, str]] = []

    def _commit(group: List[Tuple[int, RunSpec]],
                pairs: List[Tuple[RunRecord, float]], attempts: int) -> None:
        for (i, spec), (record, wall) in zip(group, pairs):
            results[i] = record
            if cache is not None:
                cache.put_record(spec, record)
            if ledger is not None:
                ledger.record(LedgerEntry.for_spec(
                    spec, hashes[i], cache="miss", retries=attempts,
                    outcome="ok", wall_seconds=wall,
                ))

    def _fail(group: List[Tuple[int, RunSpec]], attempts: int,
              outcome: str, reason: str) -> None:
        for i, spec in group:
            failures.append((spec, reason))
            if ledger is not None:
                ledger.record(LedgerEntry.for_spec(
                    spec, hashes[i], cache="miss", retries=attempts,
                    outcome=outcome, wall_seconds=0.0, error=reason,
                ))

    if jobs == 1:
        for group in groups:
            group_specs = [spec for _, spec in group]
            attempts = 0
            while True:
                try:
                    pairs = _run_group(group_specs, worker, cache)
                except Exception as exc:  # noqa: BLE001 — retried below
                    if attempts < retries:
                        attempts += 1
                        continue
                    _fail(group, attempts, "error", repr(exc))
                    break
                _commit(group, pairs, attempts)
                break
    elif groups:
        pool_cls = ThreadPoolExecutor if use_threads else ProcessPoolExecutor
        pool: Executor = pool_cls(max_workers=jobs)
        try:
            futures: Dict[int, Future] = {
                g: pool.submit(_run_group, [s for _, s in group], worker, cache)
                for g, group in enumerate(groups)
            }
            attempts_left = {g: retries for g in futures}
            attempts_used = {g: 0 for g in futures}
            while futures:
                done_keys = []
                for g, future in list(futures.items()):
                    group = groups[g]
                    try:
                        pairs = future.result(timeout=timeout)
                    except FutureTimeout:
                        future.cancel()
                        if attempts_left[g] > 0:
                            attempts_left[g] -= 1
                            attempts_used[g] += 1
                            futures[g] = pool.submit(
                                _run_group, [s for _, s in group],
                                worker, cache,
                            )
                            continue
                        _fail(group, attempts_used[g], "timeout",
                              f"timed out after {timeout}s")
                        done_keys.append(g)
                        continue
                    except Exception as exc:  # noqa: BLE001 — retried below
                        if attempts_left[g] > 0:
                            attempts_left[g] -= 1
                            attempts_used[g] += 1
                            futures[g] = pool.submit(
                                _run_group, [s for _, s in group],
                                worker, cache,
                            )
                            continue
                        _fail(group, attempts_used[g], "error", repr(exc))
                        done_keys.append(g)
                        continue
                    _commit(group, pairs, attempts_used[g])
                    done_keys.append(g)
                for g in done_keys:
                    futures.pop(g, None)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    if failures:
        raise HarnessError(failures)
    return results  # type: ignore[return-value]  # all slots filled above
