"""Persistent content-addressed artifact cache with integrity checks.

Layout under the cache root (``$REPRO_CACHE_DIR`` or
``~/.cache/repro``)::

    records/<spec_hash>.pkl      finished RunRecords
    compiled/<compile_hash>.pkl  Compiled products (partition/trace/stream)
    quarantine/                  corrupted entries, moved aside for autopsy
    ledger.jsonl                 append-only run ledger (see ledger.py)

Every key is salted with a **code version** — a digest of the
``repro`` package sources — so editing the simulator or compiler
invalidates stale artifacts without any manual versioning.  Writes
are atomic (temp file in the same directory + ``os.replace``) so
concurrent workers and interrupted runs never leave torn pickles.

Entries are framed with a SHA-256 payload checksum (``RPC1`` magic +
32-byte digest + pickle payload).  A checksum mismatch or an
unreadable legacy entry is **never** silently swallowed: the file is
moved to ``quarantine/`` (one warning per cache instance), counted in
``repro cache stats``, and ``repro cache doctor`` audits the whole
store — verifying every entry, upgrading readable legacy entries to
the framed format, and quarantining the rest.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import uuid
import warnings
from pathlib import Path
from typing import Dict, Optional

from repro.harness.spec import RunSpec

_code_version_cache: Optional[str] = None

#: framed-entry magic; bump the suffix if the framing itself changes
_MAGIC = b"RPC1"
_DIGEST_BYTES = 32

#: exception set meaning "this payload does not unpickle in this
#: process" — stale class shapes as well as outright corruption
_UNPICKLE_ERRORS = (
    OSError, pickle.UnpicklingError, EOFError, AttributeError,
    ImportError, IndexError, ValueError, TypeError, KeyError,
)


def code_version() -> str:
    """Digest of every ``repro`` source file (the default cache salt)."""
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        sha = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            sha.update(str(path.relative_to(root)).encode("utf-8"))
            sha.update(b"\x00")
            sha.update(path.read_bytes())
        _code_version_cache = sha.hexdigest()
    return _code_version_cache


def _is_hex_hash(value: str) -> bool:
    """True for a plausible lowercase-hex content hash (8..64 chars)."""
    if not isinstance(value, str) or not 8 <= len(value) <= 64:
        return False
    return all(c in "0123456789abcdef" for c in value)


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ArtifactCache:
    """Pickle store keyed by content hash + code-version salt.

    The object is cheap and picklable (a path and a salt string), so
    the scheduler can hand it to worker processes, which write
    compiled artifacts directly from the worker side.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 salt: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.salt = code_version() if salt is None else salt
        self._corruption_warned = False

    # -- paths ---------------------------------------------------------

    @property
    def records_dir(self) -> Path:
        return self.root / "records"

    @property
    def compiled_dir(self) -> Path:
        return self.root / "compiled"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def ledger_path(self) -> Path:
        return self.root / "ledger.jsonl"

    # -- framing -------------------------------------------------------

    @staticmethod
    def _frame(obj) -> bytes:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return _MAGIC + hashlib.sha256(payload).digest() + payload

    @staticmethod
    def _checksum_ok(raw: bytes) -> bool:
        """True when ``raw`` is a framed entry with a valid digest."""
        head = len(_MAGIC) + _DIGEST_BYTES
        digest = raw[len(_MAGIC):head]
        return hashlib.sha256(raw[head:]).digest() == digest

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupted entry aside instead of deleting evidence."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / f"{path.name}.{uuid.uuid4().hex[:8]}"
        try:
            os.replace(path, target)
        except OSError:
            return  # a concurrent worker already moved or removed it
        if not self._corruption_warned:
            self._corruption_warned = True
            warnings.warn(
                f"quarantined corrupted cache entry {path.name} ({reason}); "
                f"inspect {self.quarantine_dir} or run 'repro cache doctor'",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- pickle I/O ----------------------------------------------------

    def _load(self, path: Path):
        try:
            raw = path.read_bytes()
        except (FileNotFoundError, OSError):
            return None
        if raw.startswith(_MAGIC):
            if not self._checksum_ok(raw):
                self._quarantine(path, "checksum mismatch")
                return None
            payload = raw[len(_MAGIC) + _DIGEST_BYTES:]
            try:
                obj = pickle.loads(payload)
            except _UNPICKLE_ERRORS:
                # Checksum fine but classes moved on: stale, not torn.
                return None
            self._touch(path)
            return obj
        # Legacy (pre-checksum) entry: readable -> miss-free load;
        # unreadable -> corruption, quarantined.
        try:
            obj = pickle.loads(raw)
        except _UNPICKLE_ERRORS:
            self._quarantine(path, "unreadable legacy entry")
            return None
        self._touch(path)
        return obj

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh mtime on a hit, so ``prune`` evicts by recency of
        *use* rather than recency of creation."""
        try:
            os.utime(path, None)
        except OSError:
            pass  # pruned or quarantined concurrently: still a hit

    def _store(self, path: Path, obj) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(self._frame(obj))
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    # -- records -------------------------------------------------------

    def get_record(self, spec: RunSpec):
        return self._load(self.records_dir / f"{spec.spec_hash(self.salt)}.pkl")

    def get_record_by_hash(self, spec_hash: str):
        """Load a finished record by its spec hash alone.

        This is the service's read path: ``GET /records/<spec_hash>``
        answers from the content-addressed store without rebuilding
        the spec.  The hash is validated as lowercase hex so request
        strings can never traverse outside ``records/``.
        """
        if not _is_hex_hash(spec_hash):
            return None
        return self._load(self.records_dir / f"{spec_hash}.pkl")

    def put_record(self, spec: RunSpec, record) -> None:
        self._store(
            self.records_dir / f"{spec.spec_hash(self.salt)}.pkl", record
        )

    # -- compiled products ---------------------------------------------

    def get_compiled(self, spec: RunSpec):
        return self._load(
            self.compiled_dir / f"{spec.compile_hash(self.salt)}.pkl"
        )

    def put_compiled(self, spec: RunSpec, compiled) -> None:
        self._store(
            self.compiled_dir / f"{spec.compile_hash(self.salt)}.pkl", compiled
        )

    # -- maintenance ---------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Entry counts and total size (for ``repro cache stats``)."""
        out = {"records": 0, "compiled": 0, "quarantined": 0, "bytes": 0,
               "records_bytes": 0, "compiled_bytes": 0}
        for kind, directory in (
            ("records", self.records_dir),
            ("compiled", self.compiled_dir),
        ):
            if not directory.is_dir():
                continue
            for path in directory.glob("*.pkl"):
                size = path.stat().st_size
                out[kind] += 1
                out[f"{kind}_bytes"] += size
                out["bytes"] += size
        if self.quarantine_dir.is_dir():
            out["quarantined"] = sum(
                1 for p in self.quarantine_dir.iterdir() if p.is_file()
            )
        out["ledger_lines"] = 0
        out["ledger_bytes"] = 0
        if self.ledger_path.is_file():
            with open(self.ledger_path, "rb") as handle:
                data = handle.read()
            out["ledger_lines"] = data.count(b"\n")
            out["ledger_bytes"] = len(data)
        return out

    def doctor(self) -> Dict[str, int]:
        """Audit every entry: verify, upgrade legacy, quarantine bad.

        Returns counts: ``checked`` entries scanned, ``ok`` verified
        framed entries, ``upgraded`` legacy entries rewritten with
        checksums, ``quarantined`` corrupted entries moved aside,
        ``stale`` checksum-valid entries that no longer unpickle
        (left in place; the code-version salt already keys them away).
        """
        out = {"checked": 0, "ok": 0, "upgraded": 0, "quarantined": 0,
               "stale": 0}
        for directory in (self.records_dir, self.compiled_dir):
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.pkl")):
                out["checked"] += 1
                try:
                    raw = path.read_bytes()
                except OSError:
                    continue
                if raw.startswith(_MAGIC):
                    if not self._checksum_ok(raw):
                        self._quarantine(path, "checksum mismatch")
                        out["quarantined"] += 1
                        continue
                    payload = raw[len(_MAGIC) + _DIGEST_BYTES:]
                    try:
                        pickle.loads(payload)
                    except _UNPICKLE_ERRORS:
                        out["stale"] += 1
                        continue
                    out["ok"] += 1
                    continue
                try:
                    obj = pickle.loads(raw)
                except _UNPICKLE_ERRORS:
                    self._quarantine(path, "unreadable legacy entry")
                    out["quarantined"] += 1
                    continue
                self._store(path, obj)
                out["upgraded"] += 1
        return out

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used artifacts until the store fits.

        A long-running campaign server accretes records without bound;
        ``prune`` caps the ``records/`` + ``compiled/`` payload at
        ``max_bytes``, evicting by ``st_mtime`` (oldest first — every
        cache *write* refreshes mtime via ``os.replace``, and hits on
        a served record touch it through :meth:`_load`'s caller, so
        mtime approximates recency of use).  Quarantined entries and
        the ledger are never candidates: quarantine is evidence, not
        cache, and the ledger is the audit trail.

        Returns ``{"removed", "freed_bytes", "kept", "kept_bytes"}``.
        """
        entries = []
        for directory in (self.records_dir, self.compiled_dir):
            if not directory.is_dir():
                continue
            for path in directory.glob("*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        out = {"removed": 0, "freed_bytes": 0, "kept": len(entries),
               "kept_bytes": total}
        if max_bytes < 0:
            raise ValueError("prune needs max_bytes >= 0")
        entries.sort(key=lambda e: (e[0], e[2].name))
        index = 0
        while total > max_bytes and index < len(entries):
            _, size, path = entries[index]
            index += 1
            try:
                path.unlink()
            except OSError:
                continue  # a concurrent worker got there first
            total -= size
            out["removed"] += 1
            out["freed_bytes"] += size
            out["kept"] -= 1
            out["kept_bytes"] -= size
        return out

    def clear(self) -> int:
        """Delete all cached artifacts and the ledger; return count."""
        removed = 0
        for directory in (self.records_dir, self.compiled_dir):
            if not directory.is_dir():
                continue
            for path in directory.glob("*.pkl"):
                path.unlink()
                removed += 1
        if self.quarantine_dir.is_dir():
            for path in self.quarantine_dir.iterdir():
                if path.is_file():
                    path.unlink()
                    removed += 1
        if self.ledger_path.exists():
            self.ledger_path.unlink()
        return removed
