"""Persistent content-addressed artifact cache.

Layout under the cache root (``$REPRO_CACHE_DIR`` or
``~/.cache/repro``)::

    records/<spec_hash>.pkl      finished RunRecords
    compiled/<compile_hash>.pkl  Compiled products (partition/trace/stream)
    ledger.jsonl                 append-only run ledger (see ledger.py)

Every key is salted with a **code version** — a digest of the
``repro`` package sources — so editing the simulator or compiler
invalidates stale artifacts without any manual versioning.  Writes
are atomic (temp file in the same directory + ``os.replace``) so
concurrent workers and interrupted runs never leave torn pickles.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import uuid
from pathlib import Path
from typing import Dict, Optional

from repro.harness.spec import RunSpec

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (the default cache salt)."""
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        sha = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            sha.update(str(path.relative_to(root)).encode("utf-8"))
            sha.update(b"\x00")
            sha.update(path.read_bytes())
        _code_version_cache = sha.hexdigest()
    return _code_version_cache


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


class ArtifactCache:
    """Pickle store keyed by content hash + code-version salt.

    The object is cheap and picklable (a path and a salt string), so
    the scheduler can hand it to worker processes, which write
    compiled artifacts directly from the worker side.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 salt: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.salt = code_version() if salt is None else salt

    # -- paths ---------------------------------------------------------

    @property
    def records_dir(self) -> Path:
        return self.root / "records"

    @property
    def compiled_dir(self) -> Path:
        return self.root / "compiled"

    @property
    def ledger_path(self) -> Path:
        return self.root / "ledger.jsonl"

    # -- pickle I/O ----------------------------------------------------

    @staticmethod
    def _load(path: Path):
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError, TypeError, KeyError):
            # A torn or stale artifact is a miss, never an error.
            return None

    @staticmethod
    def _store(path: Path, obj) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    # -- records -------------------------------------------------------

    def get_record(self, spec: RunSpec):
        return self._load(self.records_dir / f"{spec.spec_hash(self.salt)}.pkl")

    def put_record(self, spec: RunSpec, record) -> None:
        self._store(
            self.records_dir / f"{spec.spec_hash(self.salt)}.pkl", record
        )

    # -- compiled products ---------------------------------------------

    def get_compiled(self, spec: RunSpec):
        return self._load(
            self.compiled_dir / f"{spec.compile_hash(self.salt)}.pkl"
        )

    def put_compiled(self, spec: RunSpec, compiled) -> None:
        self._store(
            self.compiled_dir / f"{spec.compile_hash(self.salt)}.pkl", compiled
        )

    # -- maintenance ---------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Entry counts and total size (for ``repro cache stats``)."""
        out = {"records": 0, "compiled": 0, "bytes": 0}
        for kind, directory in (
            ("records", self.records_dir),
            ("compiled", self.compiled_dir),
        ):
            if not directory.is_dir():
                continue
            for path in directory.glob("*.pkl"):
                out[kind] += 1
                out["bytes"] += path.stat().st_size
        return out

    def clear(self) -> int:
        """Delete all cached artifacts and the ledger; return count."""
        removed = 0
        for directory in (self.records_dir, self.compiled_dir):
            if not directory.is_dir():
                continue
            for path in directory.glob("*.pkl"):
                path.unlink()
                removed += 1
        if self.ledger_path.exists():
            self.ledger_path.unlink()
        return removed
