"""Intermediate representation for Multiscalar task selection.

The IR is a small RISC-like instruction set organised into basic
blocks, functions, and programs.  It is the substrate that the paper's
compiler heuristics (``repro.compiler``) operate on, and that the
functional interpreter (``repro.ir.interp``) executes to produce
dynamic traces for the timing simulator.

Public surface:

* :class:`~repro.ir.instructions.Opcode`,
  :class:`~repro.ir.instructions.Instruction` and the ``Reg`` helpers —
  the instruction set.
* :class:`~repro.ir.block.BasicBlock`,
  :class:`~repro.ir.function.Function`,
  :class:`~repro.ir.program.Program` — the structural containers.
* :class:`~repro.ir.builder.IRBuilder` — fluent construction of
  programs (used heavily by ``repro.workloads``).
* :mod:`~repro.ir.cfg` — DFS numbering, dominators, natural loops.
* :mod:`~repro.ir.dataflow` — reaching definitions, def-use chains,
  liveness, codependent sets.
* :class:`~repro.ir.interp.Interpreter` — functional execution and
  trace capture.
"""

from repro.ir.asmtext import parse_program, program_to_text
from repro.ir.block import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    FP_REGISTER_COUNT,
    INT_REGISTER_COUNT,
    Instruction,
    Opcode,
    OpClass,
    fp_reg,
    int_reg,
    is_fp_reg,
    is_int_reg,
)
from repro.ir.interp import DynInst, ExecutionLimitExceeded, Interpreter, Trace
from repro.ir.program import Program
from repro.ir.validate import (
    WellFormednessError,
    assert_well_formed,
    partition_issues,
    well_formed,
)

__all__ = [
    "BasicBlock",
    "DynInst",
    "ExecutionLimitExceeded",
    "FP_REGISTER_COUNT",
    "Function",
    "INT_REGISTER_COUNT",
    "IRBuilder",
    "Instruction",
    "Interpreter",
    "OpClass",
    "Opcode",
    "Program",
    "Trace",
    "WellFormednessError",
    "assert_well_formed",
    "fp_reg",
    "int_reg",
    "is_fp_reg",
    "is_int_reg",
    "parse_program",
    "partition_issues",
    "program_to_text",
    "well_formed",
]
