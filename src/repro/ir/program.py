"""Whole programs of the reproduction IR.

A program bundles functions (with a designated ``main``), initial data
memory, and assigned instruction addresses ("PCs") used by the
predictors and caches.  Addresses are word-granular: every static
instruction gets a distinct PC; block start PCs are what the inter-task
predictor and the I-cache see.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.ir.block import BasicBlock, BlockId
from repro.ir.function import Function


class Program:
    """A complete IR program: functions + initial memory image."""

    def __init__(self, main: str = "main") -> None:
        self.main_name = main
        self._functions: Dict[str, Function] = {}
        self._order: List[str] = []
        #: initial data memory image, word address -> int/float value
        self.memory_image: Dict[int, float] = {}
        self._pcs: Optional[Dict[Tuple[str, str, int], int]] = None

    def add_function(self, func: Function) -> Function:
        """Add ``func`` to the program."""
        if func.name in self._functions:
            raise ValueError(f"duplicate function name {func.name!r}")
        self._functions[func.name] = func
        self._order.append(func.name)
        self._pcs = None
        return func

    def remove_function(self, name: str) -> None:
        """Remove the function named ``name`` (must not be ``main``).

        The caller is responsible for first removing every CALL that
        targets it (the delta-debugging reducer does; ``validate``
        would fail otherwise).
        """
        if name == self.main_name:
            raise ValueError(f"cannot remove entry function {name!r}")
        del self._functions[name]
        self._order.remove(name)
        self._pcs = None

    def function(self, name: str) -> Function:
        """Return the function named ``name``; ``KeyError`` if absent."""
        return self._functions[name]

    def has_function(self, name: str) -> bool:
        """True if a function named ``name`` exists."""
        return name in self._functions

    @property
    def main(self) -> Function:
        """The entry function."""
        return self._functions[self.main_name]

    def functions(self) -> Iterator[Function]:
        """Iterate functions in insertion order."""
        for name in self._order:
            yield self._functions[name]

    def block(self, block_id: BlockId) -> BasicBlock:
        """Resolve a program-wide :data:`BlockId` to its block."""
        func_name, label = block_id
        return self._functions[func_name].block(label)

    @property
    def size(self) -> int:
        """Total static instruction count."""
        return sum(f.size for f in self.functions())

    def invalidate_layout(self) -> None:
        """Drop cached PC assignments after an IR transform."""
        self._pcs = None

    def _assign_pcs(self) -> Dict[Tuple[str, str, int], int]:
        pcs: Dict[Tuple[str, str, int], int] = {}
        pc = 0
        for func in self.functions():
            for blk in func.blocks():
                for idx in range(len(blk.instructions)):
                    pcs[(func.name, blk.label, idx)] = pc
                    pc += 1
                if not blk.instructions:
                    # Empty blocks still occupy an address so that
                    # block_pc is well defined.
                    pcs[(func.name, blk.label, 0)] = pc
                    pc += 1
        return pcs

    def pc_of(self, func_name: str, label: str, index: int) -> int:
        """PC of the instruction at ``(func, block, index)``."""
        if self._pcs is None:
            self._pcs = self._assign_pcs()
        return self._pcs[(func_name, label, index)]

    def block_pc(self, block_id: BlockId) -> int:
        """PC of the first instruction of ``block_id``."""
        func_name, label = block_id
        return self.pc_of(func_name, label, 0)

    def validate(self) -> None:
        """Check program-level invariants; raise ``ValueError``.

        * ``main`` exists; every function validates;
        * every CALL target resolves to a function.
        """
        if self.main_name not in self._functions:
            raise ValueError(f"missing entry function {self.main_name!r}")
        for func in self.functions():
            func.validate()
            for callee in func.callees():
                if callee not in self._functions:
                    raise ValueError(
                        f"function {func.name!r} calls unknown "
                        f"function {callee!r}"
                    )

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions())
