"""Basic blocks of the reproduction IR.

A basic block is a straight-line sequence of instructions with a single
entry (its first instruction) and a single exit (its terminator).  The
terminator is either the last instruction (a branch / jump / call /
ret / halt) or an implicit fallthrough to ``fallthrough``.

Blocks are identified by a label unique within their function; the
``BlockId`` pair ``(function_name, label)`` is unique within a program
and is what CFG analyses and task selection key on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ir.instructions import Instruction, Opcode

BlockId = Tuple[str, str]
"""Program-wide block identity: ``(function_name, block_label)``."""


@dataclass
class BasicBlock:
    """A basic block: label, instruction list, and fallthrough edge."""

    label: str
    instructions: List[Instruction]
    fallthrough: Optional[str] = None

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final control instruction, or ``None`` for pure fallthrough."""
        if self.instructions and self.instructions[-1].opcode.is_control:
            return self.instructions[-1]
        return None

    @property
    def ends_in_call(self) -> bool:
        """True if the block's terminator is a CALL."""
        term = self.terminator
        return term is not None and term.opcode is Opcode.CALL

    @property
    def ends_in_return(self) -> bool:
        """True if the block's terminator is a RET."""
        term = self.terminator
        return term is not None and term.opcode is Opcode.RET

    @property
    def ends_in_halt(self) -> bool:
        """True if the block's terminator is HALT."""
        term = self.terminator
        return term is not None and term.opcode is Opcode.HALT

    def successor_labels(self) -> List[str]:
        """Labels of intra-function CFG successors, in priority order.

        For a conditional branch the order is (taken target,
        fallthrough); calls report the continuation (``fallthrough``)
        as their successor — the inter-procedural edge is not part of
        the intra-function CFG.  Returns and halts have no successors.
        """
        term = self.terminator
        succs: List[str] = []
        if term is None:
            if self.fallthrough is not None:
                succs.append(self.fallthrough)
        elif term.opcode.is_branch:
            assert term.target is not None
            succs.append(term.target)
            if self.fallthrough is not None and self.fallthrough != term.target:
                succs.append(self.fallthrough)
        elif term.opcode is Opcode.JUMP:
            assert term.target is not None
            succs.append(term.target)
        elif term.opcode is Opcode.CALL:
            if self.fallthrough is not None:
                succs.append(self.fallthrough)
        # RET / HALT: no intra-function successors.
        return succs

    @property
    def size(self) -> int:
        """Number of static instructions in the block."""
        return len(self.instructions)

    def count_control_transfers(self) -> int:
        """Number of control transfer instructions in the block."""
        return sum(1 for ins in self.instructions if ins.opcode.is_control)

    def validate(self) -> None:
        """Check basic-block structural invariants; raise ``ValueError``.

        * Control instructions may appear only in terminator position.
        * Branch blocks must have a fallthrough.
        * Fallthrough-only blocks must have a fallthrough or end the
          function (which is invalid — functions end in RET/HALT).
        """
        for ins in self.instructions[:-1]:
            if ins.opcode.is_control:
                raise ValueError(
                    f"block {self.label!r}: control instruction {ins} "
                    "before terminator position"
                )
        term = self.terminator
        if term is not None and term.opcode.is_branch and self.fallthrough is None:
            raise ValueError(
                f"block {self.label!r}: conditional branch without fallthrough"
            )
        if term is None and self.fallthrough is None:
            raise ValueError(
                f"block {self.label!r}: no terminator and no fallthrough"
            )

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"    {ins}" for ins in self.instructions)
        if self.terminator is None and self.fallthrough is not None:
            lines.append(f"    ; falls through to {self.fallthrough}")
        return "\n".join(lines)
